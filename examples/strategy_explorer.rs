//! Strategy explorer: a small CLI for playing with the moving parts —
//! partitioner, refinement, exchange schedule, processor count, batch size
//! and injection step — and seeing how each combination affects cluster
//! time, cut edges, and balance.
//!
//! ```text
//! cargo run --release --example strategy_explorer -- --n 800 --procs 8 --batch 40 --inject 4
//! ```

use aa_core::{AdditionStrategy, AnytimeEngine, EngineConfig, PartitionerKind, Refinement};
use aa_core::{Endpoint, VertexBatch};
use aa_graph::{generators, Graph, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

struct Opts {
    n: usize,
    procs: usize,
    batch: usize,
    inject: usize,
    seed: u64,
}

fn parse() -> Opts {
    let mut o = Opts {
        n: 800,
        procs: 8,
        batch: 40,
        inject: 0,
        seed: 33,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| -> usize {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
                .parse()
                .unwrap_or_else(|_| panic!("invalid {what}"))
        };
        match a.as_str() {
            "--n" => o.n = next("--n"),
            "--procs" => o.procs = next("--procs"),
            "--batch" => o.batch = next("--batch"),
            "--inject" => o.inject = next("--inject"),
            "--seed" => o.seed = next("--seed") as u64,
            other => panic!("unknown argument {other}"),
        }
    }
    o
}

fn make_batch(count: usize, existing: &Graph, seed: u64) -> VertexBatch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let existing_ids: Vec<VertexId> = existing.vertices().collect();
    let mut b = VertexBatch::new(count);
    for i in 1..count {
        b.connect(i, Endpoint::New(rng.gen_range(0..i)), 1);
    }
    for i in 0..count {
        b.connect(
            i,
            Endpoint::Existing(existing_ids[rng.gen_range(0..existing_ids.len())]),
            1,
        );
    }
    b
}

fn main() {
    let o = parse();
    println!(
        "n = {}, P = {}, batch = {} vertices injected at RC{}\n",
        o.n, o.procs, o.batch, o.inject
    );
    println!(
        "{:<14} {:<16} {:<14} {:>12} {:>10} {:>9} {:>8}",
        "partitioner", "refinement", "strategy", "cluster ms", "new cut", "balance", "steps"
    );

    for partitioner in [
        PartitionerKind::Multilevel,
        PartitionerKind::BfsGrow,
        PartitionerKind::RoundRobin,
    ] {
        for refinement in [Refinement::WorklistRelax, Refinement::PivotPass] {
            for strategy in [
                AdditionStrategy::RoundRobinPs,
                AdditionStrategy::CutEdgePs,
                AdditionStrategy::RepartitionS,
            ] {
                let graph = generators::barabasi_albert(o.n, 2, 1, o.seed);
                let mut engine = AnytimeEngine::new(
                    graph,
                    EngineConfig {
                        num_procs: o.procs,
                        partitioner,
                        refinement,
                        seed: o.seed,
                        ..Default::default()
                    },
                );
                engine.initialize();
                for _ in 0..o.inject {
                    engine.rc_step();
                }
                let batch = make_batch(o.batch, engine.graph(), o.seed ^ 77);
                let ids = engine.add_vertices(&batch, strategy);
                engine.run_to_convergence(16 * o.procs + 64);
                assert!(engine.is_converged(), "failed to converge");
                let new_cut =
                    aa_partition::quality::new_cut_edges(engine.graph(), engine.partition(), &ids);
                println!(
                    "{:<14} {:<16} {:<14} {:>12.1} {:>10} {:>9.3} {:>8}",
                    format!("{partitioner:?}"),
                    format!("{refinement:?}"),
                    strategy.to_string(),
                    engine.makespan_us() / 1000.0,
                    new_cut,
                    aa_partition::quality::balance(engine.partition()),
                    engine.rc_steps(),
                );
            }
        }
    }
}
