//! A continuously growing citation network ("adding new publications to a
//! citation network", per the papers' introduction): papers arrive in small
//! batches at every recombination step, each citing a handful of existing
//! papers by preferential attachment.
//!
//! The example runs the same arrival stream under all four incorporation
//! methods and compares cumulative cluster time and final partition quality —
//! a miniature of the papers' Figure 8 experiment.
//!
//! ```text
//! cargo run --release --example citation_growth
//! ```

use aa_core::{AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, VertexBatch};
use aa_graph::{generators, Graph, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// New papers cite 2-3 existing papers, biased toward highly cited ones.
fn paper_batch(count: usize, existing: &Graph, seed: u64) -> VertexBatch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pool: Vec<VertexId> = {
        let mut p = Vec::new();
        for v in existing.vertices() {
            for _ in 0..existing.degree(v).max(1) {
                p.push(v);
            }
        }
        p
    };
    let mut batch = VertexBatch::new(count);
    for i in 0..count {
        let cites = rng.gen_range(2..=3);
        let mut cited = Vec::new();
        while cited.len() < cites {
            let target = pool[rng.gen_range(0..pool.len())];
            if !cited.contains(&target) {
                cited.push(target);
                batch.connect(i, Endpoint::Existing(target), 1);
            }
        }
        // Occasionally cite another brand-new paper (same proceedings).
        if i > 0 && rng.gen_bool(0.3) {
            batch.connect(i, Endpoint::New(rng.gen_range(0..i)), 1);
        }
    }
    batch
}

fn main() {
    const ROUNDS: usize = 8;
    const PER_ROUND: usize = 8;

    println!("citation network growth: {PER_ROUND} new papers per RC step, {ROUNDS} steps\n");
    println!(
        "{:<18} {:>14} {:>12} {:>12} {:>10}",
        "method", "cluster ms", "RC steps", "cut edges", "balance"
    );

    for strategy in [
        AdditionStrategy::RoundRobinPs,
        AdditionStrategy::CutEdgePs,
        AdditionStrategy::RepartitionS,
        AdditionStrategy::BaselineRestart,
    ] {
        let graph = generators::barabasi_albert(300, 2, 1, 11);
        let mut engine = AnytimeEngine::new(
            graph,
            EngineConfig {
                num_procs: 8,
                ..Default::default()
            },
        );
        engine.initialize();
        for round in 0..ROUNDS {
            let batch = paper_batch(PER_ROUND, engine.graph(), 1000 + round as u64);
            engine.add_vertices(&batch, strategy);
            engine.rc_step(); // analysis continues while papers arrive
        }
        engine.run_to_convergence(96);
        assert!(engine.is_converged());
        println!(
            "{:<18} {:>14.1} {:>12} {:>12} {:>10.3}",
            strategy.to_string(),
            engine.makespan_us() / 1000.0,
            engine.rc_steps(),
            aa_partition::quality::edge_cut(engine.graph(), engine.partition()),
            aa_partition::quality::balance(engine.partition()),
        );
    }

    println!(
        "\nAll four methods converge to identical all-pairs distances; they \
         differ only in how much cluster time the growth costs."
    );
}
