//! Fault tolerance in the cloud — the papers' named future work, demonstrated:
//! processors crash mid-analysis and are replaced; the anytime recovery
//! protocol reuses every surviving partial result instead of restarting; a
//! periodic checkpoint bounds the damage of a whole-cluster loss; and lossy
//! links (dropped, duplicated, reordered transfers) are absorbed by ack-based
//! retransmission without giving up exactness.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use aa_core::{AnytimeEngine, EngineConfig};
use aa_graph::{algo, generators};

fn main() {
    let graph = generators::barabasi_albert(600, 2, 1, 99);
    let exact = algo::exact_closeness(&graph);
    let mut engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 8,
            ..Default::default()
        },
    );
    engine.initialize();
    engine.run_to_convergence(64);
    println!(
        "static analysis converged: {} vertices, cluster time {:.1} ms",
        engine.graph().vertex_count(),
        engine.makespan_us() / 1000.0
    );

    // Periodic checkpoint (whole-cluster insurance).
    let mut checkpoint = Vec::new();
    engine.save_checkpoint(&mut checkpoint).unwrap();
    println!("checkpoint taken: {} KiB", checkpoint.len() / 1024);

    // A node dies. Recovery reuses all surviving distance vectors.
    let before = engine.cluster().ledger().totals().bytes;
    let report = engine.fail_and_recover_processor(3).unwrap();
    let steps = engine.run_to_convergence(64);
    let recovery_bytes = engine.cluster().ledger().totals().bytes - before;
    println!(
        "processor 3 crashed: {} rows reseeded locally, {} boundary rows re-flooded, \
         exact again after {steps} RC steps ({} KiB moved)",
        report.reseeded_rows,
        report.resent_rows,
        recovery_bytes / 1024
    );

    // Verify exactness post-recovery.
    let snap = engine.snapshot();
    assert!(snap.mean_abs_error(&exact) < 1e-15);
    println!("post-recovery closeness matches the oracle exactly ✓");

    // Cascading failures while updates keep arriving.
    engine.add_edge(0, 500, 1);
    engine.fail_and_recover_processor(0).unwrap();
    engine.rc_step();
    engine.fail_and_recover_processor(7).unwrap();
    engine.run_to_convergence(96);
    let snap = engine.snapshot();
    let exact_now = algo::exact_closeness(engine.graph());
    assert!(snap.mean_abs_error(&exact_now) < 1e-15);
    println!("two more crashes interleaved with an edge addition: still exact ✓");

    // Whole-cluster loss: restore the checkpoint and replay what followed.
    let mut restored =
        AnytimeEngine::restore_checkpoint(&mut checkpoint.as_slice(), engine.config().clone())
            .unwrap();
    restored.add_edge(0, 500, 1); // replay the post-checkpoint update
    restored.run_to_convergence(96);
    assert_eq!(restored.distances_dense(), engine.distances_dense());
    println!("whole-cluster restore + replay reproduces the live state bit-for-bit ✓");

    // Lossy links: every third transfer dropped, one in ten duplicated, all
    // inboxes reordered — composed with yet another crash for good measure.
    engine.set_chaos(0.3, 0.1);
    engine.add_edge(1, 400, 2);
    engine.fail_and_recover_processor(5).unwrap();
    let steps = engine.run_to_convergence(4000);
    assert_eq!(engine.outstanding_rows(), 0);
    let totals = engine.cluster().ledger().totals();
    let exact_now = algo::exact_closeness(engine.graph());
    assert!(engine.snapshot().mean_abs_error(&exact_now) < 1e-15);
    println!(
        "lossy links (p_drop 0.3, p_dup 0.1) + one more crash: {} transfers dropped, \
         {} duplicated, reconverged exactly in {steps} RC steps ✓",
        totals.dropped_messages, totals.dup_messages
    );
    engine.set_chaos(0.0, 0.0);
    println!(
        "\ntotal cluster time {:.1} ms across {} RC steps, ledger:\n{}",
        engine.makespan_us() / 1000.0,
        engine.rc_steps(),
        engine.cluster().ledger().report()
    );
}
