//! A growing online community: community-structured batches of new members
//! join while the closeness analysis is running, exactly the scenario the
//! papers' introduction motivates ("new actors joining an online community").
//!
//! The example streams three waves of arrivals into a running analysis,
//! choosing the processor-assignment strategy per wave, and reports how the
//! central actors shift as the network grows — without ever restarting.
//!
//! ```text
//! cargo run --release --example dynamic_social_network
//! ```

use aa_core::{AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, VertexBatch};
use aa_graph::{generators, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Builds a wave of `count` new members: a few tight friend groups plus
/// follow edges into the existing network (preferential attachment).
fn arrival_wave(count: usize, existing: &aa_graph::Graph, seed: u64) -> VertexBatch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut batch = VertexBatch::new(count);
    let group = 5usize;
    for i in 0..count {
        // Clique within each friend group.
        let base = (i / group) * group;
        for j in base..i {
            batch.connect(i, Endpoint::New(j), 1);
        }
    }
    // Each member follows 1-2 popular existing accounts.
    let pool: Vec<VertexId> = {
        let mut p = Vec::new();
        for v in existing.vertices() {
            for _ in 0..existing.degree(v) {
                p.push(v);
            }
        }
        p
    };
    for i in 0..count {
        for _ in 0..rng.gen_range(1..=2) {
            batch.connect(i, Endpoint::Existing(pool[rng.gen_range(0..pool.len())]), 1);
        }
    }
    batch
}

fn print_top(engine: &mut AnytimeEngine, label: &str) {
    let snap = engine.snapshot();
    let top: Vec<String> = snap
        .top_k(5)
        .into_iter()
        .map(|(v, c)| format!("{v} ({c:.2e})"))
        .collect();
    println!(
        "{label:<28} |V| = {:<5} top-5: {}",
        engine.graph().vertex_count(),
        top.join(", ")
    );
}

fn main() {
    let graph = generators::barabasi_albert(400, 2, 1, 7);
    let mut engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 8,
            ..Default::default()
        },
    );
    engine.initialize();
    engine.run_to_convergence(64);
    print_top(&mut engine, "initial network");

    // Wave 1: a small influx — incorporate incrementally, round-robin.
    let wave = arrival_wave(15, engine.graph(), 100);
    engine.add_vertices(&wave, AdditionStrategy::RoundRobinPs);
    engine.run_to_convergence(64);
    print_top(&mut engine, "after wave 1 (RoundRobin-PS)");

    // Wave 2: tightly-knit groups — CutEdge-PS keeps each friend group on
    // one processor, minimizing new cut edges.
    let wave = arrival_wave(25, engine.graph(), 200);
    let ids = engine.add_vertices(&wave, AdditionStrategy::CutEdgePs);
    let new_cut = aa_partition::quality::new_cut_edges(engine.graph(), engine.partition(), &ids);
    engine.run_to_convergence(64);
    print_top(&mut engine, "after wave 2 (CutEdge-PS)");
    println!("{:>28}  new cut edges introduced by wave 2: {new_cut}", "");

    // Wave 3: a large merger with another community — repartition and reuse
    // all partial results instead of updating incrementally.
    let wave = arrival_wave(60, engine.graph(), 300);
    engine.add_vertices(&wave, AdditionStrategy::RepartitionS);
    engine.run_to_convergence(96);
    print_top(&mut engine, "after wave 3 (Repartition-S)");

    // One account is banned: vertex deletion (the papers' future work,
    // implemented here).
    let hub = engine
        .graph()
        .vertices()
        .max_by_key(|&v| engine.graph().degree(v))
        .expect("non-empty graph");
    println!("{:>28}  banning the biggest hub, vertex {hub}…", "");
    engine.delete_vertex(hub);
    engine.run_to_convergence(96);
    print_top(&mut engine, "after the ban");

    assert!(engine.is_converged());
    println!(
        "\ntotal cluster time {:.1} ms across {} recombination steps — no restarts.",
        engine.makespan_us() / 1000.0,
        engine.rc_steps()
    );
}
