//! The broader SNA toolbox on one graph: the papers present anytime-anywhere
//! as a general framework for social network analysis, naming degree,
//! closeness, betweenness and eigenvector centrality as the key measures and
//! citing a maximal-clique instantiation. This example runs the whole suite —
//! distributed measures on the simulated cluster, sequential oracles where a
//! distributed version is out of scope — and prints the top actors under each
//! measure side by side.
//!
//! ```text
//! cargo run --release --example sna_suite
//! ```

use aa_core::{AnytimeEngine, EngineConfig};
use aa_graph::{centrality, generators, VertexId};

fn top3(scores: &[f64]) -> Vec<VertexId> {
    let mut idx: Vec<usize> = (0..scores.len()).filter(|&v| scores[v] > 0.0).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    idx.truncate(3);
    idx.into_iter().map(|v| v as VertexId).collect()
}

fn main() {
    let graph = generators::barabasi_albert(400, 2, 1, 2024);
    println!(
        "scale-free graph: {} vertices, {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    // Sequential oracles for the measures without a distributed twin here.
    let betweenness = centrality::betweenness_unweighted(&graph);
    let core = centrality::k_core(&graph);
    let max_core = *core.iter().max().unwrap();

    let mut engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 8,
            ..Default::default()
        },
    );
    engine.initialize();
    engine.run_to_convergence(64);

    let closeness = engine.snapshot();
    let degree = engine.degree_centrality();
    let eigen = engine.eigenvector_centrality(300, 1e-10);
    let pagerank = engine.pagerank(0.85, 200, 1e-12);
    let cliques = engine.maximal_cliques();
    let biggest_clique = cliques.iter().max_by_key(|c| c.len()).unwrap();

    println!("{:<28} top-3 actors", "measure (computed where)");
    println!(
        "{:<28} {:?}",
        "closeness (distributed)",
        closeness
            .top_k(3)
            .iter()
            .map(|&(v, _)| v)
            .collect::<Vec<_>>()
    );
    println!(
        "{:<28} {:?}",
        "harmonic (distributed)",
        closeness
            .top_k_harmonic(3)
            .iter()
            .map(|&(v, _)| v)
            .collect::<Vec<_>>()
    );
    println!("{:<28} {:?}", "degree (distributed)", top3(&degree));
    println!("{:<28} {:?}", "eigenvector (distributed)", top3(&eigen));
    println!("{:<28} {:?}", "pagerank (distributed)", top3(&pagerank));
    println!("{:<28} {:?}", "betweenness (oracle)", top3(&betweenness));
    println!(
        "\nmaximal cliques (distributed): {} found, largest has {} members: {:?}",
        cliques.len(),
        biggest_clique.len(),
        biggest_clique
    );
    println!(
        "k-core decomposition (oracle): densest core is k = {max_core} with {} members",
        core.iter().filter(|&&k| k == max_core).count()
    );
    println!(
        "\ncluster time for the distributed measures: {:.1} ms",
        engine.makespan_us() / 1000.0
    );
}
