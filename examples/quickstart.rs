//! Quickstart: run the full anytime-anywhere pipeline on a small scale-free
//! graph, watch the anytime estimates converge, and cross-check the final
//! closeness ranking against the exact sequential oracle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aa_core::{AnytimeEngine, EngineConfig};
use aa_graph::{algo, generators};

fn main() {
    // A 500-vertex scale-free graph, like the papers' Pajek-generated inputs.
    let graph = generators::barabasi_albert(500, 2, 1, 42);
    println!(
        "graph: {} vertices, {} edges (Barabási–Albert, m = 2)",
        graph.vertex_count(),
        graph.edge_count()
    );

    let exact = algo::exact_closeness(&graph);

    // 4 simulated processors; defaults mirror the papers (serialized
    // personalized all-to-all over 1 GbE LogP parameters, multilevel DD).
    let mut engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 4,
            ..Default::default()
        },
    );

    // Phase 1 + 2: domain decomposition and initial approximation.
    engine.initialize();
    println!(
        "initialized: partition sizes {:?}, cut edges across parts: {}",
        engine.partition().part_sizes(),
        aa_partition::quality::edge_cut(engine.graph(), engine.partition()),
    );

    // Phase 3: recombination, one step at a time — the anytime property in
    // action. The mean absolute error against the oracle shrinks every step.
    loop {
        let done = engine.rc_step();
        let snapshot = engine.snapshot();
        println!(
            "after RC{}: mean |closeness error| = {:.3e}   (cluster time {:.1} ms)",
            engine.rc_steps(),
            snapshot.mean_abs_error(&exact),
            snapshot.makespan_us / 1000.0
        );
        if done {
            break;
        }
    }

    // Final ranking matches the oracle.
    let snapshot = engine.snapshot();
    println!("\ntop-5 closeness centrality (distributed / exact):");
    for (v, c) in snapshot.top_k(5) {
        println!("  vertex {v:>4}: {c:.6e}   exact {:.6e}", exact[v as usize]);
    }
    let err = snapshot.mean_abs_error(&exact);
    assert!(err < 1e-15, "converged result must equal the oracle: {err}");
    println!(
        "\nconverged in {} RC steps — exact APSP reached.",
        engine.rc_steps()
    );
    println!("\ncost ledger:\n{}", engine.cluster().ledger().report());
}
