//! Offline stand-in for the subset of the `rayon` API this workspace uses
//! (`par_iter().map(..).collect()`, `par_iter().flat_map_iter(..).collect()`).
//! Everything executes sequentially on the calling thread: the workspace
//! treats rayon purely as a drop-in data-parallelism accelerator, so a
//! sequential fallback is semantically identical (results are collected in
//! input order either way) and keeps the offline build self-contained.

pub mod prelude {
    pub use super::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

pub mod iter {
    /// Sequential mirror of rayon's `ParallelIterator`.
    pub struct ParIter<I> {
        inner: I,
    }

    /// Mirror of rayon's `ParallelIterator` combinators over [`ParIter`].
    pub trait ParallelIterator: Sized {
        type Inner: Iterator;

        fn into_inner(self) -> Self::Inner;

        fn map<F, T>(self, f: F) -> ParIter<core::iter::Map<Self::Inner, F>>
        where
            F: FnMut(<Self::Inner as Iterator>::Item) -> T,
        {
            ParIter {
                inner: self.into_inner().map(f),
            }
        }

        fn flat_map_iter<F, U>(self, f: F) -> ParIter<core::iter::FlatMap<Self::Inner, U, F>>
        where
            F: FnMut(<Self::Inner as Iterator>::Item) -> U,
            U: IntoIterator,
        {
            ParIter {
                inner: self.into_inner().flat_map(f),
            }
        }

        fn filter<F>(self, f: F) -> ParIter<core::iter::Filter<Self::Inner, F>>
        where
            F: FnMut(&<Self::Inner as Iterator>::Item) -> bool,
        {
            ParIter {
                inner: self.into_inner().filter(f),
            }
        }

        fn for_each<F>(self, f: F)
        where
            F: FnMut(<Self::Inner as Iterator>::Item),
        {
            self.into_inner().for_each(f)
        }

        fn collect<C>(self) -> C
        where
            C: FromIterator<<Self::Inner as Iterator>::Item>,
        {
            self.into_inner().collect()
        }
    }

    impl<I: Iterator> ParallelIterator for ParIter<I> {
        type Inner = I;

        fn into_inner(self) -> I {
            self.inner
        }
    }

    /// `.par_iter()` on collections (by reference).
    pub trait IntoParallelRefIterator<'a> {
        type Iter: ParallelIterator;

        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a, C: 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator<Item = &'a T>,
    {
        type Iter = ParIter<<&'a C as IntoIterator>::IntoIter>;

        fn par_iter(&'a self) -> Self::Iter {
            ParIter {
                inner: self.into_iter(),
            }
        }
    }

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        type Iter: ParallelIterator;

        fn into_par_iter(self) -> Self::Iter;
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Iter = ParIter<C::IntoIter>;

        fn into_par_iter(self) -> Self::Iter {
            ParIter {
                inner: self.into_iter(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v = vec![1, 2, 3, 4];
        let out: Vec<i32> = v.par_iter().map(|x| x * 10).collect();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let v = vec![1u32, 3];
        let out: Vec<u32> = v.par_iter().flat_map_iter(|&x| 0..x).collect();
        assert_eq!(out, vec![0, 0, 1, 2]);
    }

    #[test]
    fn into_par_iter_over_range() {
        let out: Vec<usize> = (0..5).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }
}
