//! Offline stand-in for `rand_chacha` 0.3. Implements a genuine ChaCha8
//! keystream generator (the same core permutation as upstream, 8 rounds)
//! behind the vendored [`rand`] traits. Seeded replay is bit-exact across
//! runs and platforms, which is all the workspace's fault-injection and
//! generator code relies on.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// ChaCha stream cipher core with a compile-time round count.
#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key + constant + counter + nonce state, in RFC 7539 word layout.
    state: [u32; BLOCK_WORDS],
    /// Current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word index in `buf`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Words 12..16 are the 64-bit block counter + 64-bit nonce (zero).
        ChaChaCore {
            state,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate().take(BLOCK_WORDS) {
            self.buf[i] = w.wrapping_add(self.state[i]);
        }
        // Increment the 64-bit block counter.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name {
                    core: ChaChaCore::from_seed(seed),
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: fast, seeded, replayable."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds (RFC 7539 core).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_rfc7539_first_block() {
        // RFC 7539 §2.3.2 test vector: key 00 01 .. 1f, but with zero
        // nonce/counter (our construction) the keystream differs — instead
        // verify the raw permutation through a fixed zero-key first word,
        // which is a well-known published value for ChaCha20 with zero
        // key/nonce/counter: 76 b8 e0 ad ...
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        assert_eq!(first.to_le_bytes(), [0x76, 0xb8, 0xe0, 0xad]);
    }

    #[test]
    fn seeded_replay_is_exact() {
        let mut a = ChaCha8Rng::seed_from_u64(0xFEED);
        let mut b = ChaCha8Rng::seed_from_u64(0xFEED);
        for _ in 0..500 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_via_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
    }
}
