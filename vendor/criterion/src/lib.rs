//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use. It preserves the structure (groups, benchmark
//! ids, throughput annotations, `criterion_group!`/`criterion_main!`) and
//! prints a single mean-time line per benchmark from a small fixed number of
//! iterations. It does no warmup, outlier analysis, or HTML reporting — the
//! point is that `cargo bench` and `cargo test` build and run the bench
//! targets offline, with rough timings, not that the statistics match
//! upstream criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark. Benches in this workspace converge whole
/// engines per iteration, so a small count keeps `cargo test` quick while
/// still producing a usable mean.
const ITERS: u32 = 3;

/// How a batched iteration sizes its input batches (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters
        }
    }
}

fn report(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = bencher.mean();
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {name:<50} mean {mean:>12.3?}{extra}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&self.name, id, &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report("", id, &b, None);
        self
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($f(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, ITERS);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(100));
        let data = vec![1u32, 2, 3];
        let mut sum = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| sum = d.iter().sum())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(sum, 6);
    }
}
