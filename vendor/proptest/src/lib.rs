//! Offline stand-in for the subset of the `proptest` 1.x API this workspace
//! uses. It keeps the property-testing shape — `Strategy` values composed
//! with `prop_map`/`prop_flat_map`, the `proptest!` macro, `prop_assert*`
//! macros, `ProptestConfig { cases, .. }` — but generates cases from a
//! deterministic per-test RNG (seeded from the test's module path and case
//! index) and reports failures by panicking with the failing case number
//! instead of shrinking. No shrinking means failure messages print the raw
//! counterexample; for this workspace's small generated graphs that is
//! perfectly debuggable, and determinism means every failure replays.

use rand::Rng;

pub mod test_runner {
    //! Deterministic per-case RNG and the error type `prop_assert!` returns.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Error produced by a failing `prop_assert!` / `prop_assert_eq!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// RNG for one generated case, seeded from (test name, case index) so
    /// every run of the suite generates the same inputs.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// Uniform `bool` strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY` — a fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current proptest case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a plain test that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(max: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1..=max)
            .prop_flat_map(|n| crate::collection::vec(0..n as u32, 1..4).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn generated_values_respect_bounds(x in 3usize..9, f in 0.25f64..0.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.5).contains(&f), "f = {}", f);
        }

        #[test]
        fn flat_map_threads_the_outer_value(pair in arb_pair(6)) {
            let (n, v) = pair;
            prop_assert!((1..=6).contains(&n));
            for x in v {
                prop_assert!((x as usize) < n);
            }
        }

        #[test]
        fn tuples_and_bools_generate(t in (0u8..4, 1u32..7), b in crate::bool::ANY) {
            prop_assert!(t.0 < 4 && (1..7).contains(&t.1));
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test() {
        use crate::test_runner::TestRng;
        use rand::RngCore;
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
