//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the traits it needs:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`/`gen_range`/`gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`/`choose`).
//!
//! Determinism notes: all generators in this workspace are explicitly seeded
//! (there is no `thread_rng`), and nothing in the repository depends on the
//! exact output stream of upstream `rand` — only on seeded reproducibility
//! and reasonable statistical quality, both of which hold here. Integer
//! `gen_range` uses a plain modulo reduction; the bias is negligible for the
//! small ranges the workspace draws from.

/// A random number generator core: the raw output interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// upstream `rand_core` uses) and constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a generator (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait: convenience draws over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256**-style generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod prelude {
    //! The usual `use rand::prelude::*` surface.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
