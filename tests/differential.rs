//! Differential oracle harness.
//!
//! Drives random dynamic-update schedules (edge additions/deletions, vertex
//! additions/deletions) against a running [`AnytimeEngine`] and, after
//! convergence, checks every closeness estimate and every distance row
//! against a brute-force sequential oracle — across two partitioners and
//! with and without lossy links.
//!
//! The vendored `proptest` stand-in has no shrinking, so failures here run a
//! hand-rolled delta-debugging pass: the failing operation schedule is
//! minimized (ddmin over ops, then over the extra edge list) and the minimal
//! case is printed together with its anytime progress timeline before the
//! test fails, so the report alone reproduces and localizes the bug.
//!
//! `AA_DIFF_SEED=<n> cargo test differential_seeded_replay` replays one
//! deterministic schedule derived from the seed — the hook CI uses to pin a
//! known-failing case while it is being fixed. The same variable drives
//! `cross_backend_seeded_replay`, the pinned-schedule hook for the
//! sim-vs-threads comparison below.
//!
//! Since ISSUE 9 the harness is also *cross-backend*: every case can run on
//! the deterministic simulator and on the real threaded backend, and the two
//! must produce identical post-convergence distances, closeness scores and
//! recovery logs (the sim is the oracle for the threads backend, exactly as
//! the brute-force APSP is the oracle for the sim). Failures shrink through
//! the same ddmin pass.

use aa_core::{
    AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, FaultConfig, PartitionerKind,
    ProcFaultConfig, ProgressSample, SupervisorConfig, VertexBatch,
};
use aa_graph::{algo, Graph, VertexId, Weight};
use aa_runtime::BackendKind;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One mutation of a random schedule. Vertex/edge picks are modulo-indexed
/// into the *live* vertex/edge lists at apply time, so any subsequence of a
/// schedule is still a valid schedule — the property delta-debugging needs.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Add an edge between the a-th and b-th live vertices with weight w.
    AddEdge(u32, u32, u32),
    /// Delete the i-th live edge.
    DeleteEdge(u32),
    /// Re-weight the i-th live edge to w.
    ChangeWeight(u32, u32),
    /// Add one vertex attached to the a-th live vertex with weight w.
    AddVertex(u32, u32),
    /// Delete the i-th live vertex.
    DeleteVertex(u32),
}

/// A complete differential test case: base graph, engine configuration and
/// an operation schedule.
#[derive(Debug, Clone)]
struct Case {
    n: usize,
    extra_edges: Vec<(u32, u32, u32)>,
    procs: usize,
    partitioner: PartitionerKind,
    drop_rate: f64,
    seed: u64,
    ops: Vec<Op>,
    /// Scheduled fail-stop crash `(step, rank)`, auto-recovered by the
    /// supervisor (used by the cross-backend chaos matrix).
    crash: Option<(u64, usize)>,
    /// Injected straggler `(rank, scale)` — advisory-only, must not change
    /// any result on either backend.
    straggler: Option<(usize, f64)>,
}

/// Spine + extra edges, like the proptests generator: the spine keeps the
/// graph connected enough that distances are interesting rather than INF.
fn build_graph(n: usize, extra: &[(u32, u32, u32)]) -> Graph {
    let mut g = Graph::with_vertices(n);
    for v in 1..n as u32 {
        g.add_edge(v - 1, v, 1 + (v % 3));
    }
    for &(u, v, w) in extra {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            g.add_edge(u, v, w);
        }
    }
    g
}

fn apply(e: &mut AnytimeEngine, op: Op) {
    match op {
        Op::AddEdge(a, b, w) => {
            let ids: Vec<VertexId> = e.graph().vertices().collect();
            let u = ids[a as usize % ids.len()];
            let v = ids[b as usize % ids.len()];
            if u != v {
                e.add_edge(u, v, w.max(1));
            }
        }
        Op::DeleteEdge(i) => {
            let edges: Vec<_> = e.graph().edges().collect();
            if edges.len() > 1 {
                let (u, v, _) = edges[i as usize % edges.len()];
                e.delete_edge(u, v);
            }
        }
        Op::ChangeWeight(i, w) => {
            let edges: Vec<_> = e.graph().edges().collect();
            if !edges.is_empty() {
                let (u, v, old) = edges[i as usize % edges.len()];
                let w = w.max(1);
                if old != w {
                    e.change_edge_weight(u, v, w);
                }
            }
        }
        Op::AddVertex(a, w) => {
            let ids: Vec<VertexId> = e.graph().vertices().collect();
            let mut batch = VertexBatch::new(1);
            batch.connect(0, Endpoint::Existing(ids[a as usize % ids.len()]), w.max(1));
            e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
        }
        Op::DeleteVertex(i) => {
            let ids: Vec<VertexId> = e.graph().vertices().collect();
            if ids.len() > 2 {
                e.delete_vertex(ids[i as usize % ids.len()]);
            }
        }
    }
}

/// Builds the case's engine on the requested execution backend. All other
/// configuration (seeds, fault schedule, partitioner) is identical, so any
/// difference in the outcome is the backend's fault.
fn engine_for(case: &Case, backend: BackendKind, threads: usize) -> AnytimeEngine {
    let graph = build_graph(case.n, &case.extra_edges);
    let fault = (case.drop_rate > 0.0).then(|| FaultConfig {
        p_drop: case.drop_rate,
        seed: case.seed ^ 0x5eed,
        ..Default::default()
    });
    let proc_fault = (case.crash.is_some() || case.straggler.is_some()).then(|| ProcFaultConfig {
        crashes: case.crash.into_iter().collect(),
        stragglers: case.straggler.into_iter().collect(),
    });
    // A scheduled crash needs the supervisor: tight detection and frequent
    // checkpoints keep the recovery inside the convergence budget.
    let supervision = if case.crash.is_some() {
        SupervisorConfig {
            checkpoint_interval: 2,
            detector_timeout: 2,
            ..Default::default()
        }
    } else {
        SupervisorConfig::default()
    };
    AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: case.procs,
            seed: case.seed,
            partitioner: case.partitioner,
            fault,
            proc_fault,
            supervision,
            backend,
            threads,
            ..Default::default()
        },
    )
}

/// Runs a case to convergence and differentially checks it against the
/// brute-force oracle. Returns the failure description (if any) and the
/// anytime progress timeline of the run.
fn run_case(case: &Case) -> (Option<String>, Vec<ProgressSample>) {
    let mut e = engine_for(case, BackendKind::Sim, 0);
    e.initialize();
    e.enable_progress_probe();
    for &op in &case.ops {
        apply(&mut e, op);
        e.rc_step();
    }
    e.run_to_convergence(16 * case.procs + 128);
    let samples = e.progress_samples().to_vec();
    if !e.is_converged() {
        return (Some("engine failed to converge".into()), samples);
    }
    if let Err(err) = e.check_invariants() {
        return (Some(format!("invariant violated: {err}")), samples);
    }
    let dist = algo::apsp_dijkstra(e.graph());
    let dense = e.distances_dense();
    let snap = e.snapshot();
    for v in e.graph().vertices() {
        if dense[v as usize] != dist[v as usize] {
            return (
                Some(format!("distance row {v} differs from the oracle")),
                samples,
            );
        }
        let want = algo::closeness_from_distances(&dist[v as usize], v);
        let got = snap.closeness[v as usize];
        if (got - want).abs() > 1e-9 {
            return (
                Some(format!(
                    "closeness mismatch at vertex {v}: got {got:.12}, oracle {want:.12}"
                )),
                samples,
            );
        }
    }
    (None, samples)
}

fn fails(case: &Case) -> bool {
    run_case(case).0.is_some()
}

/// ddmin over a vector-valued field: greedily removes chunks (halving the
/// chunk size) for as long as `still_fails` keeps holding. The predicate is
/// a parameter so the same shrinker serves both the engine-vs-brute-force
/// harness and the sim-vs-threads cross-backend harness.
fn ddmin<T: Clone>(
    case: &Case,
    still_fails: &dyn Fn(&Case) -> bool,
    get: fn(&Case) -> &Vec<T>,
    get_mut: fn(&mut Case) -> &mut Vec<T>,
) -> Case {
    let mut best = case.clone();
    let mut chunk = (get(&best).len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < get(&best).len() {
            let mut candidate = best.clone();
            let upper = (i + chunk).min(get(&candidate).len());
            get_mut(&mut candidate).drain(i..upper);
            if still_fails(&candidate) {
                best = candidate;
                shrunk = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !shrunk {
                return best;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Minimizes a case that fails `still_fails`: first the operation schedule,
/// then the extra edge list of the base graph.
fn shrink_with(case: &Case, still_fails: &dyn Fn(&Case) -> bool) -> Case {
    let best = ddmin(case, still_fails, |c| &c.ops, |c| &mut c.ops);
    ddmin(
        &best,
        still_fails,
        |c| &c.extra_edges,
        |c| &mut c.extra_edges,
    )
}

/// Minimizes a failing oracle-differential case.
fn shrink(case: &Case) -> Case {
    shrink_with(case, &fails)
}

/// Checks a case; on failure, prints the delta-debugged minimal schedule and
/// its progress timeline, then fails the test.
fn check_case(case: Case) -> Result<(), TestCaseError> {
    let (failure, _) = run_case(&case);
    let Some(msg) = failure else {
        return Ok(());
    };
    let minimal = shrink(&case);
    let (min_msg, timeline) = run_case(&minimal);
    eprintln!("=== differential failure ===");
    eprintln!("original failure: {msg}");
    eprintln!(
        "minimal failing case: n={} procs={} partitioner={:?} drop_rate={} seed={} extra_edges={:?}",
        minimal.n, minimal.procs, minimal.partitioner, minimal.drop_rate, minimal.seed,
        minimal.extra_edges
    );
    for (i, op) in minimal.ops.iter().enumerate() {
        eprintln!("  op[{i}] = {op:?}");
    }
    eprintln!("progress timeline of the minimal case:");
    for s in &timeline {
        eprintln!(
            "  RC{:<4} max_over={:<6.1} tau={:<6.3} conv_rows={:<6.3} outstanding={} down={} recovering={}",
            s.rc_step,
            s.max_overestimate,
            s.kendall_tau,
            s.converged_row_fraction,
            s.outstanding_rows,
            s.down_ranks,
            s.recovering
        );
    }
    prop_assert!(
        false,
        "differential mismatch ({}): minimal case printed above",
        min_msg.unwrap_or(msg)
    );
    Ok(())
}

/// Alternate partitioners across cases so both exchange/ownership layouts
/// face every op-mix (the issue requires >= 2 partitioners).
fn partitioner_for(seed: u64) -> PartitionerKind {
    if seed.is_multiple_of(2) {
        PartitionerKind::Multilevel
    } else {
        PartitionerKind::RoundRobin
    }
}

/// Strategy: an edge-churn op (no vertex ops).
fn arb_edge_op() -> impl Strategy<Value = Op> {
    (0u8..3, 0u32..64, 0u32..64, 1u32..6).prop_map(|(kind, a, b, w)| match kind {
        0 => Op::AddEdge(a, b, w),
        1 => Op::DeleteEdge(a),
        _ => Op::ChangeWeight(a, w),
    })
}

/// Strategy: a vertex-churn op (vertex add/delete plus occasional edge ops so
/// deleted regions get re-stitched).
fn arb_vertex_op() -> impl Strategy<Value = Op> {
    (0u8..4, 0u32..64, 0u32..64, 1u32..6).prop_map(|(kind, a, b, w)| match kind {
        0 => Op::AddVertex(a, w),
        1 => Op::DeleteVertex(a),
        2 => Op::AddEdge(a, b, w),
        _ => Op::DeleteEdge(a),
    })
}

fn arb_case<O: Strategy<Value = Op>>(op: O, drop_rate: f64) -> impl Strategy<Value = Case> {
    (
        4usize..20,
        proptest::collection::vec((0u32..20, 0u32..20, 1u32..6), 0..12),
        2usize..4,
        0u64..10_000,
        proptest::collection::vec(op, 1..6),
    )
        .prop_map(move |(n, extra_edges, procs, seed, ops)| Case {
            n,
            extra_edges,
            procs,
            partitioner: partitioner_for(seed),
            drop_rate,
            seed,
            ops,
            crash: None,
            straggler: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn edge_churn_matches_oracle_reliable_links(case in arb_case(arb_edge_op(), 0.0)) {
        check_case(case)?;
    }

    #[test]
    fn edge_churn_matches_oracle_lossy_links(case in arb_case(arb_edge_op(), 0.2)) {
        check_case(case)?;
    }

    #[test]
    fn vertex_churn_matches_oracle_reliable_links(case in arb_case(arb_vertex_op(), 0.0)) {
        check_case(case)?;
    }

    #[test]
    fn vertex_churn_matches_oracle_lossy_links(case in arb_case(arb_vertex_op(), 0.2)) {
        check_case(case)?;
    }
}

/// Tiny deterministic generator (xorshift64*) for the seeded replay test —
/// independent of proptest so a seed pins exactly one schedule forever.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Replays one deterministic schedule derived from `AA_DIFF_SEED` (default
/// 0xAA). CI pins this seed so every run exercises a stable schedule; set a
/// different seed locally to explore.
#[test]
fn differential_seeded_replay() {
    let seed: u64 = std::env::var("AA_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAA);
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1));
    for round in 0..4u64 {
        let n = 6 + rng.below(12) as usize;
        let extra_edges: Vec<(u32, u32, u32)> = (0..rng.below(8))
            .map(|_| {
                (
                    rng.below(n as u64) as u32,
                    rng.below(n as u64) as u32,
                    1 + rng.below(5) as u32,
                )
            })
            .collect();
        let ops: Vec<Op> = (0..1 + rng.below(5))
            .map(|_| match rng.below(5) {
                0 => Op::AddEdge(
                    rng.below(64) as u32,
                    rng.below(64) as u32,
                    1 + rng.below(5) as u32,
                ),
                1 => Op::DeleteEdge(rng.below(64) as u32),
                2 => Op::ChangeWeight(rng.below(64) as u32, 1 + rng.below(5) as u32),
                3 => Op::AddVertex(rng.below(64) as u32, 1 + rng.below(5) as u32),
                _ => Op::DeleteVertex(rng.below(64) as u32),
            })
            .collect();
        let case = Case {
            n,
            extra_edges,
            procs: 2 + (round % 2) as usize,
            partitioner: partitioner_for(round),
            drop_rate: if round % 2 == 0 { 0.0 } else { 0.2 },
            seed: seed ^ round,
            ops,
            crash: None,
            straggler: None,
        };
        let (failure, _) = run_case(&case);
        if let Some(msg) = failure {
            let minimal = shrink(&case);
            panic!("AA_DIFF_SEED={seed} round {round} failed ({msg}); minimal case: {minimal:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-backend harness: the simulator is the oracle for the threads backend.
// ---------------------------------------------------------------------------

/// Worker-thread count for the threads side of every comparison. Three
/// workers on up to four ranks forces lane multiplexing (one worker owns
/// more than one rank), the regime where merge-order bugs would hide.
const CROSS_THREADS: usize = 3;

/// Everything the determinism contract covers, gathered from one converged
/// run: dense distances, closeness, stale flags and the recovery log.
/// Measured wall time (makespan, per-rank `compute_us`) and straggler
/// *health* flags — which derive from measured compute — are deliberately
/// excluded: they are the sanctioned cross-backend differences (DESIGN.md
/// §16). Recovery logs stay in because crash suspicion is silence-based and
/// therefore deterministic.
type Fingerprint = (
    Vec<Vec<Weight>>,
    Vec<f64>,
    Vec<bool>,
    Vec<(u64, usize, String, usize, usize)>,
);

/// Runs a case on one backend and extracts its determinism fingerprint.
/// The convergence budget is generous (drop 0.5 cells retransmit a lot).
fn fingerprint_on(
    case: &Case,
    backend: BackendKind,
    threads: usize,
) -> Result<Fingerprint, String> {
    let mut e = engine_for(case, backend, threads);
    e.initialize();
    for &op in &case.ops {
        apply(&mut e, op);
        e.rc_step();
    }
    e.run_to_convergence(4000);
    if !e.is_converged() {
        return Err(format!("{backend:?} backend failed to converge"));
    }
    if let Err(err) = e.check_invariants() {
        return Err(format!("{backend:?} backend invariant violated: {err}"));
    }
    let snap = e.snapshot();
    let recoveries = e
        .recovery_log()
        .iter()
        .map(|ev| {
            (
                ev.step,
                ev.report.rank,
                ev.report.method.to_string(),
                ev.report.restored_rows,
                ev.report.reseeded_rows,
            )
        })
        .collect();
    Ok((e.distances_dense(), snap.closeness, snap.stale, recoveries))
}

/// Compares the sim fingerprint against the threaded one; `None` means they
/// agree on every covered field.
fn cross_backend_failure(case: &Case) -> Option<String> {
    let sim = match fingerprint_on(case, BackendKind::Sim, 0) {
        Ok(fp) => fp,
        Err(e) => return Some(e),
    };
    let thr = match fingerprint_on(case, BackendKind::Threads, CROSS_THREADS) {
        Ok(fp) => fp,
        Err(e) => return Some(e),
    };
    if sim.0 != thr.0 {
        let v = sim.0.iter().zip(&thr.0).position(|(a, b)| a != b);
        return Some(format!("distance rows diverge (first at vertex {v:?})"));
    }
    if sim.1 != thr.1 {
        let v = sim.1.iter().zip(&thr.1).position(|(a, b)| a != b);
        return Some(format!("closeness diverges (first at vertex {v:?})"));
    }
    if sim.2 != thr.2 {
        return Some("stale flags diverge".into());
    }
    if sim.3 != thr.3 {
        return Some(format!(
            "recovery logs diverge: sim {:?} vs threads {:?}",
            sim.3, thr.3
        ));
    }
    None
}

fn cross_fails(case: &Case) -> bool {
    cross_backend_failure(case).is_some()
}

/// Checks sim-vs-threads agreement; on failure, ddmin-shrinks the case
/// through the same machinery as the oracle harness and prints the minimal
/// divergent schedule.
fn check_cross_case(case: Case) -> Result<(), TestCaseError> {
    let Some(msg) = cross_backend_failure(&case) else {
        return Ok(());
    };
    let minimal = shrink_with(&case, &cross_fails);
    let min_msg = cross_backend_failure(&minimal);
    eprintln!("=== cross-backend divergence (sim vs threads) ===");
    eprintln!("original divergence: {msg}");
    eprintln!(
        "minimal divergent case: n={} procs={} partitioner={:?} drop_rate={} seed={} \
         crash={:?} straggler={:?} extra_edges={:?}",
        minimal.n,
        minimal.procs,
        minimal.partitioner,
        minimal.drop_rate,
        minimal.seed,
        minimal.crash,
        minimal.straggler,
        minimal.extra_edges
    );
    for (i, op) in minimal.ops.iter().enumerate() {
        eprintln!("  op[{i}] = {op:?}");
    }
    prop_assert!(
        false,
        "sim-vs-threads divergence ({}): minimal case printed above",
        min_msg.unwrap_or(msg)
    );
    Ok(())
}

/// The ISSUE 9 chaos matrix: drop rate {0.0, 0.2, 0.5} × processor fault
/// {none, crash, straggler}, every cell run on both backends with identical
/// seeds and compared field-by-field. Deterministic (no proptest), so a red
/// cell names itself.
#[test]
fn cross_backend_chaos_matrix() {
    let drops = [0.0, 0.2, 0.5];
    type ProcFaultCell = (&'static str, Option<(u64, usize)>, Option<(usize, f64)>);
    let proc_faults: [ProcFaultCell; 3] = [
        ("none", None, None),
        ("crash", Some((2, 1)), None),
        ("straggler", None, Some((1, 3.0))),
    ];
    for (di, &drop_rate) in drops.iter().enumerate() {
        for (fault_name, crash, straggler) in proc_faults {
            let case = Case {
                n: 14,
                extra_edges: vec![(0, 7, 2), (3, 11, 1), (5, 13, 3)],
                procs: 4,
                partitioner: partitioner_for(di as u64),
                drop_rate,
                seed: 0x9 ^ (di as u64) << 8,
                ops: vec![Op::AddEdge(2, 9, 2), Op::AddVertex(4, 1), Op::DeleteEdge(6)],
                crash,
                straggler,
            };
            if let Some(msg) = cross_backend_failure(&case) {
                let minimal = shrink_with(&case, &cross_fails);
                panic!(
                    "chaos-matrix cell drop={drop_rate} fault={fault_name} diverged ({msg}); \
                     minimal case: {minimal:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random churn schedules over lossy links must land both backends on
    /// bit-identical results — the property form of the chaos matrix.
    #[test]
    fn vertex_churn_matches_across_backends(case in arb_case(arb_vertex_op(), 0.2)) {
        check_cross_case(case)?;
    }
}

/// `AA_DIFF_SEED`-pinned replay for the cross-backend comparison: four
/// deterministic rounds cycling through the processor-fault matrix on top of
/// a seed-derived schedule, each compared sim-vs-threads.
#[test]
fn cross_backend_seeded_replay() {
    let seed: u64 = std::env::var("AA_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAA);
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1));
    for round in 0..4u64 {
        let n = 8 + rng.below(10) as usize;
        let extra_edges: Vec<(u32, u32, u32)> = (0..rng.below(6))
            .map(|_| {
                (
                    rng.below(n as u64) as u32,
                    rng.below(n as u64) as u32,
                    1 + rng.below(5) as u32,
                )
            })
            .collect();
        let ops: Vec<Op> = (0..1 + rng.below(4))
            .map(|_| match rng.below(3) {
                0 => Op::AddEdge(
                    rng.below(64) as u32,
                    rng.below(64) as u32,
                    1 + rng.below(5) as u32,
                ),
                1 => Op::AddVertex(rng.below(64) as u32, 1 + rng.below(5) as u32),
                _ => Op::ChangeWeight(rng.below(64) as u32, 1 + rng.below(5) as u32),
            })
            .collect();
        let procs = 3 + (round % 2) as usize;
        let case = Case {
            n,
            extra_edges,
            procs,
            partitioner: partitioner_for(round),
            drop_rate: [0.0, 0.2, 0.5, 0.2][round as usize % 4],
            seed: seed ^ (round << 16),
            ops,
            crash: (round % 4 == 1).then(|| (2, 1 + rng.below(procs as u64 - 1) as usize)),
            straggler: (round % 4 == 2).then(|| (rng.below(procs as u64) as usize, 2.5)),
        };
        if let Some(msg) = cross_backend_failure(&case) {
            let minimal = shrink_with(&case, &cross_fails);
            panic!(
                "AA_DIFF_SEED={seed} cross-backend round {round} diverged ({msg}); \
                 minimal case: {minimal:?}"
            );
        }
    }
}
