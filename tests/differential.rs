//! Differential oracle harness.
//!
//! Drives random dynamic-update schedules (edge additions/deletions, vertex
//! additions/deletions) against a running [`AnytimeEngine`] and, after
//! convergence, checks every closeness estimate and every distance row
//! against a brute-force sequential oracle — across two partitioners and
//! with and without lossy links.
//!
//! The vendored `proptest` stand-in has no shrinking, so failures here run a
//! hand-rolled delta-debugging pass: the failing operation schedule is
//! minimized (ddmin over ops, then over the extra edge list) and the minimal
//! case is printed together with its anytime progress timeline before the
//! test fails, so the report alone reproduces and localizes the bug.
//!
//! `AA_DIFF_SEED=<n> cargo test differential_seeded_replay` replays one
//! deterministic schedule derived from the seed — the hook CI uses to pin a
//! known-failing case while it is being fixed.

use aa_core::{
    AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, FaultConfig, PartitionerKind,
    ProgressSample, VertexBatch,
};
use aa_graph::{algo, Graph, VertexId};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One mutation of a random schedule. Vertex/edge picks are modulo-indexed
/// into the *live* vertex/edge lists at apply time, so any subsequence of a
/// schedule is still a valid schedule — the property delta-debugging needs.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Add an edge between the a-th and b-th live vertices with weight w.
    AddEdge(u32, u32, u32),
    /// Delete the i-th live edge.
    DeleteEdge(u32),
    /// Re-weight the i-th live edge to w.
    ChangeWeight(u32, u32),
    /// Add one vertex attached to the a-th live vertex with weight w.
    AddVertex(u32, u32),
    /// Delete the i-th live vertex.
    DeleteVertex(u32),
}

/// A complete differential test case: base graph, engine configuration and
/// an operation schedule.
#[derive(Debug, Clone)]
struct Case {
    n: usize,
    extra_edges: Vec<(u32, u32, u32)>,
    procs: usize,
    partitioner: PartitionerKind,
    drop_rate: f64,
    seed: u64,
    ops: Vec<Op>,
}

/// Spine + extra edges, like the proptests generator: the spine keeps the
/// graph connected enough that distances are interesting rather than INF.
fn build_graph(n: usize, extra: &[(u32, u32, u32)]) -> Graph {
    let mut g = Graph::with_vertices(n);
    for v in 1..n as u32 {
        g.add_edge(v - 1, v, 1 + (v % 3));
    }
    for &(u, v, w) in extra {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            g.add_edge(u, v, w);
        }
    }
    g
}

fn apply(e: &mut AnytimeEngine, op: Op) {
    match op {
        Op::AddEdge(a, b, w) => {
            let ids: Vec<VertexId> = e.graph().vertices().collect();
            let u = ids[a as usize % ids.len()];
            let v = ids[b as usize % ids.len()];
            if u != v {
                e.add_edge(u, v, w.max(1));
            }
        }
        Op::DeleteEdge(i) => {
            let edges: Vec<_> = e.graph().edges().collect();
            if edges.len() > 1 {
                let (u, v, _) = edges[i as usize % edges.len()];
                e.delete_edge(u, v);
            }
        }
        Op::ChangeWeight(i, w) => {
            let edges: Vec<_> = e.graph().edges().collect();
            if !edges.is_empty() {
                let (u, v, old) = edges[i as usize % edges.len()];
                let w = w.max(1);
                if old != w {
                    e.change_edge_weight(u, v, w);
                }
            }
        }
        Op::AddVertex(a, w) => {
            let ids: Vec<VertexId> = e.graph().vertices().collect();
            let mut batch = VertexBatch::new(1);
            batch.connect(0, Endpoint::Existing(ids[a as usize % ids.len()]), w.max(1));
            e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
        }
        Op::DeleteVertex(i) => {
            let ids: Vec<VertexId> = e.graph().vertices().collect();
            if ids.len() > 2 {
                e.delete_vertex(ids[i as usize % ids.len()]);
            }
        }
    }
}

/// Runs a case to convergence and differentially checks it against the
/// brute-force oracle. Returns the failure description (if any) and the
/// anytime progress timeline of the run.
fn run_case(case: &Case) -> (Option<String>, Vec<ProgressSample>) {
    let graph = build_graph(case.n, &case.extra_edges);
    let fault = (case.drop_rate > 0.0).then(|| FaultConfig {
        p_drop: case.drop_rate,
        seed: case.seed ^ 0x5eed,
        ..Default::default()
    });
    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: case.procs,
            seed: case.seed,
            partitioner: case.partitioner,
            fault,
            ..Default::default()
        },
    );
    e.initialize();
    e.enable_progress_probe();
    for &op in &case.ops {
        apply(&mut e, op);
        e.rc_step();
    }
    e.run_to_convergence(16 * case.procs + 128);
    let samples = e.progress_samples().to_vec();
    if !e.is_converged() {
        return (Some("engine failed to converge".into()), samples);
    }
    if let Err(err) = e.check_invariants() {
        return (Some(format!("invariant violated: {err}")), samples);
    }
    let dist = algo::apsp_dijkstra(e.graph());
    let dense = e.distances_dense();
    let snap = e.snapshot();
    for v in e.graph().vertices() {
        if dense[v as usize] != dist[v as usize] {
            return (
                Some(format!("distance row {v} differs from the oracle")),
                samples,
            );
        }
        let want = algo::closeness_from_distances(&dist[v as usize], v);
        let got = snap.closeness[v as usize];
        if (got - want).abs() > 1e-9 {
            return (
                Some(format!(
                    "closeness mismatch at vertex {v}: got {got:.12}, oracle {want:.12}"
                )),
                samples,
            );
        }
    }
    (None, samples)
}

fn fails(case: &Case) -> bool {
    run_case(case).0.is_some()
}

/// ddmin over a vector-valued field: greedily removes chunks (halving the
/// chunk size) for as long as the case keeps failing.
fn ddmin<T: Clone>(
    case: &Case,
    get: fn(&Case) -> &Vec<T>,
    get_mut: fn(&mut Case) -> &mut Vec<T>,
) -> Case {
    let mut best = case.clone();
    let mut chunk = (get(&best).len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < get(&best).len() {
            let mut candidate = best.clone();
            let upper = (i + chunk).min(get(&candidate).len());
            get_mut(&mut candidate).drain(i..upper);
            if fails(&candidate) {
                best = candidate;
                shrunk = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !shrunk {
                return best;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Minimizes a failing case: first the operation schedule, then the extra
/// edge list of the base graph.
fn shrink(case: &Case) -> Case {
    let best = ddmin(case, |c| &c.ops, |c| &mut c.ops);
    ddmin(&best, |c| &c.extra_edges, |c| &mut c.extra_edges)
}

/// Checks a case; on failure, prints the delta-debugged minimal schedule and
/// its progress timeline, then fails the test.
fn check_case(case: Case) -> Result<(), TestCaseError> {
    let (failure, _) = run_case(&case);
    let Some(msg) = failure else {
        return Ok(());
    };
    let minimal = shrink(&case);
    let (min_msg, timeline) = run_case(&minimal);
    eprintln!("=== differential failure ===");
    eprintln!("original failure: {msg}");
    eprintln!(
        "minimal failing case: n={} procs={} partitioner={:?} drop_rate={} seed={} extra_edges={:?}",
        minimal.n, minimal.procs, minimal.partitioner, minimal.drop_rate, minimal.seed,
        minimal.extra_edges
    );
    for (i, op) in minimal.ops.iter().enumerate() {
        eprintln!("  op[{i}] = {op:?}");
    }
    eprintln!("progress timeline of the minimal case:");
    for s in &timeline {
        eprintln!(
            "  RC{:<4} max_over={:<6.1} tau={:<6.3} conv_rows={:<6.3} outstanding={} down={} recovering={}",
            s.rc_step,
            s.max_overestimate,
            s.kendall_tau,
            s.converged_row_fraction,
            s.outstanding_rows,
            s.down_ranks,
            s.recovering
        );
    }
    prop_assert!(
        false,
        "differential mismatch ({}): minimal case printed above",
        min_msg.unwrap_or(msg)
    );
    Ok(())
}

/// Alternate partitioners across cases so both exchange/ownership layouts
/// face every op-mix (the issue requires >= 2 partitioners).
fn partitioner_for(seed: u64) -> PartitionerKind {
    if seed.is_multiple_of(2) {
        PartitionerKind::Multilevel
    } else {
        PartitionerKind::RoundRobin
    }
}

/// Strategy: an edge-churn op (no vertex ops).
fn arb_edge_op() -> impl Strategy<Value = Op> {
    (0u8..3, 0u32..64, 0u32..64, 1u32..6).prop_map(|(kind, a, b, w)| match kind {
        0 => Op::AddEdge(a, b, w),
        1 => Op::DeleteEdge(a),
        _ => Op::ChangeWeight(a, w),
    })
}

/// Strategy: a vertex-churn op (vertex add/delete plus occasional edge ops so
/// deleted regions get re-stitched).
fn arb_vertex_op() -> impl Strategy<Value = Op> {
    (0u8..4, 0u32..64, 0u32..64, 1u32..6).prop_map(|(kind, a, b, w)| match kind {
        0 => Op::AddVertex(a, w),
        1 => Op::DeleteVertex(a),
        2 => Op::AddEdge(a, b, w),
        _ => Op::DeleteEdge(a),
    })
}

fn arb_case<O: Strategy<Value = Op>>(op: O, drop_rate: f64) -> impl Strategy<Value = Case> {
    (
        4usize..20,
        proptest::collection::vec((0u32..20, 0u32..20, 1u32..6), 0..12),
        2usize..4,
        0u64..10_000,
        proptest::collection::vec(op, 1..6),
    )
        .prop_map(move |(n, extra_edges, procs, seed, ops)| Case {
            n,
            extra_edges,
            procs,
            partitioner: partitioner_for(seed),
            drop_rate,
            seed,
            ops,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn edge_churn_matches_oracle_reliable_links(case in arb_case(arb_edge_op(), 0.0)) {
        check_case(case)?;
    }

    #[test]
    fn edge_churn_matches_oracle_lossy_links(case in arb_case(arb_edge_op(), 0.2)) {
        check_case(case)?;
    }

    #[test]
    fn vertex_churn_matches_oracle_reliable_links(case in arb_case(arb_vertex_op(), 0.0)) {
        check_case(case)?;
    }

    #[test]
    fn vertex_churn_matches_oracle_lossy_links(case in arb_case(arb_vertex_op(), 0.2)) {
        check_case(case)?;
    }
}

/// Tiny deterministic generator (xorshift64*) for the seeded replay test —
/// independent of proptest so a seed pins exactly one schedule forever.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Replays one deterministic schedule derived from `AA_DIFF_SEED` (default
/// 0xAA). CI pins this seed so every run exercises a stable schedule; set a
/// different seed locally to explore.
#[test]
fn differential_seeded_replay() {
    let seed: u64 = std::env::var("AA_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAA);
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1));
    for round in 0..4u64 {
        let n = 6 + rng.below(12) as usize;
        let extra_edges: Vec<(u32, u32, u32)> = (0..rng.below(8))
            .map(|_| {
                (
                    rng.below(n as u64) as u32,
                    rng.below(n as u64) as u32,
                    1 + rng.below(5) as u32,
                )
            })
            .collect();
        let ops: Vec<Op> = (0..1 + rng.below(5))
            .map(|_| match rng.below(5) {
                0 => Op::AddEdge(
                    rng.below(64) as u32,
                    rng.below(64) as u32,
                    1 + rng.below(5) as u32,
                ),
                1 => Op::DeleteEdge(rng.below(64) as u32),
                2 => Op::ChangeWeight(rng.below(64) as u32, 1 + rng.below(5) as u32),
                3 => Op::AddVertex(rng.below(64) as u32, 1 + rng.below(5) as u32),
                _ => Op::DeleteVertex(rng.below(64) as u32),
            })
            .collect();
        let case = Case {
            n,
            extra_edges,
            procs: 2 + (round % 2) as usize,
            partitioner: partitioner_for(round),
            drop_rate: if round % 2 == 0 { 0.0 } else { 0.2 },
            seed: seed ^ round,
            ops,
        };
        let (failure, _) = run_case(&case);
        if let Some(msg) = failure {
            let minimal = shrink(&case);
            panic!("AA_DIFF_SEED={seed} round {round} failed ({msg}); minimal case: {minimal:?}");
        }
    }
}
