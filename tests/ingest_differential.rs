//! Ingest-schedule differential harness.
//!
//! Drives the same absolute-id update schedule through two serving paths —
//! (A) unbatched: every op applied directly to the engine, one RC step per
//! op; (B) batched: every op pushed through the `aa-ingest` coalescing
//! pipeline under a randomly chosen drain policy, with RC steps running
//! while ops sit in the buffer — and checks that after final flush and
//! convergence both paths produce the *identical* graph, identical dense
//! distances, and closeness values matching the brute-force oracle. Runs
//! with reliable and lossy (`drop_rate = 0.2`) links; the latter is the
//! nightly chaos configuration.
//!
//! Schedules are generated once against a sequential shadow graph, so both
//! paths consume byte-identical ops (including the predicted ids of vertex
//! arrivals). Like `tests/differential.rs`, failures are delta-debugged
//! (ddmin over the raw schedule) before the test fails, and
//! `AA_DIFF_SEED=<n> cargo test --test ingest_differential seeded` replays
//! one pinned deterministic schedule.

use aa_core::{AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, FaultConfig, VertexBatch};
use aa_graph::{algo, Graph, VertexId, Weight};
use aa_ingest::{DrainPolicy, IngestConfig, IngestPipeline, UpdateOp};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One raw mutation; vertex/edge picks are modulo-indexed into the live
/// lists at resolve time so every subsequence is still a valid schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    AddEdge(u32, u32, u32),
    DeleteEdge(u32),
    ChangeWeight(u32, u32),
    AddVertex(u32, u32),
    DeleteVertex(u32),
}

#[derive(Debug, Clone)]
struct Case {
    n: usize,
    extra_edges: Vec<(u32, u32, u32)>,
    procs: usize,
    drop_rate: f64,
    seed: u64,
    /// Selects the batched run's drain policy (see [`policy_for`]).
    policy_sel: u8,
    ops: Vec<Op>,
}

fn policy_for(sel: u8) -> DrainPolicy {
    match sel % 5 {
        0 => DrainPolicy::SizeTriggered(1),
        1 => DrainPolicy::SizeTriggered(3),
        // Larger than any schedule: everything rides the final barrier flush.
        2 => DrainPolicy::SizeTriggered(64),
        3 => DrainPolicy::RcStepInterleaved(2),
        _ => DrainPolicy::Adaptive {
            max_outstanding: 4,
            max_pending: 3,
        },
    }
}

/// Spine + extra edges (same shape as `tests/differential.rs`).
fn build_graph(n: usize, extra: &[(u32, u32, u32)]) -> Graph {
    let mut g = Graph::with_vertices(n);
    for v in 1..n as u32 {
        g.add_edge(v - 1, v, 1 + (v % 3));
    }
    for &(u, v, w) in extra {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            g.add_edge(u, v, w);
        }
    }
    g
}

/// Resolves a raw schedule into concrete absolute-id [`UpdateOp`]s against a
/// sequential shadow of the graph. Ops that would be no-ops or invalid at
/// their position (self-loop, duplicate add, absent delete, unchanged
/// weight) are dropped, so the resolved schedule is *effective*: both
/// serving paths must apply every op.
fn resolve_schedule(base: &Graph, raw: &[Op]) -> Vec<UpdateOp> {
    let mut shadow = base.clone();
    let mut resolved = Vec::new();
    for &op in raw {
        let ids: Vec<VertexId> = shadow.vertices().collect();
        match op {
            Op::AddEdge(a, b, w) => {
                let u = ids[a as usize % ids.len()];
                let v = ids[b as usize % ids.len()];
                if u != v && !shadow.has_edge(u, v) {
                    let w = w.max(1);
                    shadow.add_edge(u, v, w);
                    resolved.push(UpdateOp::AddEdge(u, v, w));
                }
            }
            Op::DeleteEdge(i) => {
                let edges: Vec<_> = shadow.edges().collect();
                if edges.len() > 1 {
                    let (u, v, _) = edges[i as usize % edges.len()];
                    shadow.remove_edge(u, v);
                    resolved.push(UpdateOp::DeleteEdge(u, v));
                }
            }
            Op::ChangeWeight(i, w) => {
                let edges: Vec<_> = shadow.edges().collect();
                if !edges.is_empty() {
                    let (u, v, old) = edges[i as usize % edges.len()];
                    let w = w.max(1);
                    if old != w {
                        shadow.set_edge_weight(u, v, w);
                        resolved.push(UpdateOp::Reweight(u, v, w));
                    }
                }
            }
            Op::AddVertex(a, w) => {
                let anchor = ids[a as usize % ids.len()];
                let w = w.max(1);
                let id = shadow.add_vertex();
                shadow.add_edge(id, anchor, w);
                resolved.push(UpdateOp::AddVertex {
                    anchors: vec![(anchor, w)],
                });
            }
            Op::DeleteVertex(i) => {
                if ids.len() > 2 {
                    let v = ids[i as usize % ids.len()];
                    shadow.remove_vertex(v);
                    resolved.push(UpdateOp::DeleteVertex(v));
                }
            }
        }
    }
    resolved
}

fn engine_for(case: &Case) -> AnytimeEngine {
    let fault = (case.drop_rate > 0.0).then(|| FaultConfig {
        p_drop: case.drop_rate,
        seed: case.seed ^ 0x5eed,
        ..Default::default()
    });
    let mut e = AnytimeEngine::new(
        build_graph(case.n, &case.extra_edges),
        EngineConfig {
            num_procs: case.procs,
            seed: case.seed,
            fault,
            ..Default::default()
        },
    );
    e.initialize();
    e
}

/// Path A: every op applied directly, one RC step between ops.
fn run_unbatched(case: &Case, ops: &[UpdateOp]) -> Result<AnytimeEngine, String> {
    let mut e = engine_for(case);
    for op in ops {
        match *op {
            UpdateOp::AddEdge(u, v, w) => {
                e.add_edge(u, v, w);
            }
            UpdateOp::DeleteEdge(u, v) => {
                e.delete_edge(u, v);
            }
            UpdateOp::Reweight(u, v, w) => {
                e.change_edge_weight(u, v, w);
            }
            UpdateOp::AddVertex { ref anchors } => {
                let mut batch = VertexBatch::new(1);
                for &(a, w) in anchors {
                    batch.connect(0, Endpoint::Existing(a), w);
                }
                e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
            }
            UpdateOp::DeleteVertex(v) => {
                e.delete_vertex(v);
            }
        }
        e.rc_step();
    }
    e.run_to_convergence(16 * case.procs + 128);
    if !e.is_converged() {
        return Err("unbatched run failed to converge".into());
    }
    e.check_invariants()
        .map_err(|err| format!("unbatched invariant violated: {err}"))?;
    Ok(e)
}

/// Path B: ops pushed through the ingest pipeline; RC steps run between
/// pushes (so recombination makes progress while updates sit coalesced),
/// with the drain policy deciding when batches reach the engine.
fn run_batched(case: &Case, ops: &[UpdateOp]) -> Result<AnytimeEngine, String> {
    let mut e = engine_for(case);
    let cap = ops.len().max(16);
    let mut pipeline = IngestPipeline::new(IngestConfig {
        queue_cap: cap,
        high_watermark: cap,
        policy: policy_for(case.policy_sel),
        ..Default::default()
    })
    .map_err(|err| format!("pipeline config rejected: {err}"))?;
    for op in ops {
        let outcome = pipeline
            .push(&e, op.clone())
            .map_err(|err| format!("push rejected a resolved op {op:?}: {err}"))?;
        if !outcome.admission.is_admitted() {
            return Err(format!("op {op:?} not admitted despite cap {cap}"));
        }
        e.rc_step();
        pipeline
            .maybe_flush(&mut e)
            .map_err(|err| format!("flush failed: {err}"))?;
    }
    pipeline
        .flush(&mut e)
        .map_err(|err| format!("barrier flush failed: {err}"))?;
    let stats = pipeline.stats();
    if stats.shed != 0 || stats.noops != 0 || stats.rejected != 0 {
        return Err(format!(
            "resolved schedule should be fully effective: {stats:?}"
        ));
    }
    e.run_to_convergence(16 * case.procs + 128);
    if !e.is_converged() {
        return Err("batched run failed to converge".into());
    }
    e.check_invariants()
        .map_err(|err| format!("batched invariant violated: {err}"))?;
    Ok(e)
}

fn sorted_edges(g: &Graph) -> Vec<(VertexId, VertexId, Weight)> {
    let mut edges: Vec<_> = g.edges().collect();
    edges.sort_unstable();
    edges
}

/// Runs both paths and differentially compares them (and the oracle).
fn run_case(case: &Case) -> Option<String> {
    let base = build_graph(case.n, &case.extra_edges);
    let ops = resolve_schedule(&base, &case.ops);
    let mut a = match run_unbatched(case, &ops) {
        Ok(e) => e,
        Err(msg) => return Some(msg),
    };
    let mut b = match run_batched(case, &ops) {
        Ok(e) => e,
        Err(msg) => return Some(msg),
    };
    if a.graph().capacity() != b.graph().capacity() {
        return Some(format!(
            "vertex id sequences diverged: unbatched capacity {}, batched {}",
            a.graph().capacity(),
            b.graph().capacity()
        ));
    }
    let alive_a: Vec<VertexId> = a.graph().vertices().collect();
    let alive_b: Vec<VertexId> = b.graph().vertices().collect();
    if alive_a != alive_b {
        return Some(format!("alive sets differ: {alive_a:?} vs {alive_b:?}"));
    }
    if sorted_edges(a.graph()) != sorted_edges(b.graph()) {
        return Some("edge sets differ between unbatched and batched runs".into());
    }
    let dist = algo::apsp_dijkstra(b.graph());
    let dense_a = a.distances_dense();
    let dense_b = b.distances_dense();
    let snap_a = a.snapshot();
    let snap_b = b.snapshot();
    for v in alive_b {
        let vi = v as usize;
        if dense_a[vi] != dense_b[vi] {
            return Some(format!("distance row {v} differs between runs"));
        }
        if dense_b[vi] != dist[vi] {
            return Some(format!("batched distance row {v} differs from the oracle"));
        }
        let want = algo::closeness_from_distances(&dist[vi], v);
        for (name, got) in [
            ("unbatched", snap_a.closeness[vi]),
            ("batched", snap_b.closeness[vi]),
        ] {
            if (got - want).abs() > 1e-9 {
                return Some(format!(
                    "{name} closeness mismatch at vertex {v}: got {got:.12}, oracle {want:.12}"
                ));
            }
        }
    }
    None
}

fn fails(case: &Case) -> bool {
    run_case(case).is_some()
}

/// ddmin over the raw schedule: greedily removes chunks while still failing.
fn shrink(case: &Case) -> Case {
    let mut best = case.clone();
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.ops.len() {
            let mut candidate = best.clone();
            let upper = (i + chunk).min(candidate.ops.len());
            candidate.ops.drain(i..upper);
            if fails(&candidate) {
                best = candidate;
                shrunk = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !shrunk {
                return best;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

fn check_case(case: Case) -> Result<(), TestCaseError> {
    let Some(msg) = run_case(&case) else {
        return Ok(());
    };
    let minimal = shrink(&case);
    let min_msg = run_case(&minimal);
    eprintln!("=== ingest differential failure ===");
    eprintln!("original failure: {msg}");
    eprintln!(
        "minimal failing case: n={} procs={} drop_rate={} seed={} policy={} extra_edges={:?}",
        minimal.n,
        minimal.procs,
        minimal.drop_rate,
        minimal.seed,
        policy_for(minimal.policy_sel),
        minimal.extra_edges
    );
    for (i, op) in minimal.ops.iter().enumerate() {
        eprintln!("  op[{i}] = {op:?}");
    }
    eprintln!("resolved schedule of the minimal case:");
    for (i, op) in resolve_schedule(&build_graph(minimal.n, &minimal.extra_edges), &minimal.ops)
        .iter()
        .enumerate()
    {
        eprintln!("  resolved[{i}] = {op:?}");
    }
    prop_assert!(
        false,
        "ingest differential mismatch ({}): minimal case printed above",
        min_msg.unwrap_or(msg)
    );
    Ok(())
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..5, 0u32..64, 0u32..64, 1u32..6).prop_map(|(kind, a, b, w)| match kind {
        0 => Op::AddEdge(a, b, w),
        1 => Op::DeleteEdge(a),
        2 => Op::ChangeWeight(a, w),
        3 => Op::AddVertex(a, w),
        _ => Op::DeleteVertex(a),
    })
}

fn arb_case(drop_rate: f64) -> impl Strategy<Value = Case> {
    (
        4usize..20,
        proptest::collection::vec((0u32..20, 0u32..20, 1u32..6), 0..12),
        2usize..4,
        0u64..10_000,
        0u8..5,
        proptest::collection::vec(arb_op(), 1..8),
    )
        .prop_map(move |(n, extra_edges, procs, seed, policy_sel, ops)| Case {
            n,
            extra_edges,
            procs,
            drop_rate,
            seed,
            policy_sel,
            ops,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn ingest_matches_unbatched_reliable_links(case in arb_case(0.0)) {
        check_case(case)?;
    }

    #[test]
    fn ingest_matches_unbatched_lossy_links(case in arb_case(0.2)) {
        check_case(case)?;
    }
}

/// Tiny deterministic generator (xorshift64*) so a seed pins one schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Replays deterministic schedules derived from `AA_DIFF_SEED` (default
/// 0xAA) across every drain policy, alternating reliable and lossy links.
#[test]
fn ingest_differential_seeded_replay() {
    let seed: u64 = std::env::var("AA_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAA);
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1));
    for round in 0..5u64 {
        let n = 6 + rng.below(12) as usize;
        let extra_edges: Vec<(u32, u32, u32)> = (0..rng.below(8))
            .map(|_| {
                (
                    rng.below(n as u64) as u32,
                    rng.below(n as u64) as u32,
                    1 + rng.below(5) as u32,
                )
            })
            .collect();
        let ops: Vec<Op> = (0..1 + rng.below(7))
            .map(|_| match rng.below(5) {
                0 => Op::AddEdge(
                    rng.below(64) as u32,
                    rng.below(64) as u32,
                    1 + rng.below(5) as u32,
                ),
                1 => Op::DeleteEdge(rng.below(64) as u32),
                2 => Op::ChangeWeight(rng.below(64) as u32, 1 + rng.below(5) as u32),
                3 => Op::AddVertex(rng.below(64) as u32, 1 + rng.below(5) as u32),
                _ => Op::DeleteVertex(rng.below(64) as u32),
            })
            .collect();
        let case = Case {
            n,
            extra_edges,
            procs: 2 + (round % 2) as usize,
            drop_rate: if round % 2 == 0 { 0.0 } else { 0.2 },
            seed: seed ^ round,
            policy_sel: round as u8,
            ops,
        };
        if let Some(msg) = run_case(&case) {
            let minimal = shrink(&case);
            panic!("AA_DIFF_SEED={seed} round {round} failed ({msg}); minimal case: {minimal:?}");
        }
    }
}
