//! Integration tests for the "anywhere" half: long mixed sequences of
//! dynamic updates interleaved with recombination steps must always converge
//! to exactly the oracle APSP of the final graph.

use aa_core::{
    AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, RepartitionMode, VertexBatch,
};
use aa_graph::{algo, generators, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn engine(n: usize, procs: usize, seed: u64) -> AnytimeEngine {
    let graph = generators::barabasi_albert(n, 2, 3, seed);
    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: procs,
            seed,
            ..Default::default()
        },
    );
    e.initialize();
    e
}

fn assert_oracle(engine: &AnytimeEngine) {
    let dense = engine.distances_dense();
    let oracle = algo::apsp_dijkstra(engine.graph());
    for v in 0..engine.graph().capacity() {
        if engine.graph().is_alive(v as VertexId) {
            assert_eq!(dense[v], oracle[v], "row {v} differs from oracle");
        }
    }
}

fn random_batch(existing: &aa_graph::Graph, count: usize, seed: u64) -> VertexBatch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids: Vec<VertexId> = existing.vertices().collect();
    let mut batch = VertexBatch::new(count);
    for i in 0..count {
        if i > 0 && rng.gen_bool(0.5) {
            batch.connect(i, Endpoint::New(rng.gen_range(0..i)), rng.gen_range(1..4));
        }
        batch.connect(
            i,
            Endpoint::Existing(ids[rng.gen_range(0..ids.len())]),
            rng.gen_range(1..4),
        );
    }
    batch
}

#[test]
fn long_mixed_update_sequence_matches_oracle() {
    let mut e = engine(70, 4, 21);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    e.run_to_convergence(64);
    for round in 0..12u64 {
        match round % 4 {
            0 => {
                // A couple of random new edges between live vertices.
                let ids: Vec<VertexId> = e.graph().vertices().collect();
                for _ in 0..2 {
                    let u = ids[rng.gen_range(0..ids.len())];
                    let v = ids[rng.gen_range(0..ids.len())];
                    if u != v {
                        e.add_edge(u, v, rng.gen_range(1..5));
                    }
                }
            }
            1 => {
                // Delete a random existing edge.
                let edges: Vec<_> = e.graph().edges().collect();
                let (u, v, _) = edges[rng.gen_range(0..edges.len())];
                assert!(e.delete_edge(u, v));
            }
            2 => {
                // A small vertex batch via alternating strategies.
                let strategy = if round % 8 == 2 {
                    AdditionStrategy::RoundRobinPs
                } else {
                    AdditionStrategy::CutEdgePs
                };
                let batch = random_batch(e.graph(), 3, 1000 + round);
                e.add_vertices(&batch, strategy);
            }
            _ => {
                // Change a random edge weight (up or down).
                let edges: Vec<_> = e.graph().edges().collect();
                let (u, v, w) = edges[rng.gen_range(0..edges.len())];
                let new_w = if rng.gen_bool(0.5) {
                    w + 2
                } else {
                    (w - 1).max(1)
                };
                e.change_edge_weight(u, v, new_w);
            }
        }
        e.rc_step(); // keep the analysis flowing between updates
    }
    e.run_to_convergence(128);
    assert!(e.is_converged());
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

#[test]
fn vertex_deletions_interleaved_with_additions() {
    let mut e = engine(60, 4, 23);
    e.run_to_convergence(64);
    for round in 0..4u64 {
        let batch = random_batch(e.graph(), 4, 2000 + round);
        e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        e.rc_step();
        let victim = e
            .graph()
            .vertices()
            .nth((round as usize * 7) % e.graph().vertex_count())
            .unwrap();
        e.delete_vertex(victim);
        e.rc_step();
    }
    e.run_to_convergence(128);
    assert!(e.is_converged());
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

#[test]
fn repartition_modes_all_converge_to_oracle() {
    for mode in [
        RepartitionMode::AdaptiveMultilevel,
        RepartitionMode::FullRemap,
        RepartitionMode::Adaptive,
    ] {
        let graph = generators::barabasi_albert(60, 2, 2, 25);
        let mut e = AnytimeEngine::new(
            graph,
            EngineConfig {
                num_procs: 4,
                repartition: mode,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(64);
        let batch = random_batch(e.graph(), 10, 31);
        e.add_vertices(&batch, AdditionStrategy::RepartitionS);
        e.run_to_convergence(96);
        assert!(e.is_converged(), "{mode:?} did not converge");
        assert_oracle(&e);
        e.check_invariants().unwrap();
    }
}

#[test]
fn repeated_repartitions_stay_consistent() {
    let mut e = engine(50, 4, 27);
    e.run_to_convergence(64);
    for round in 0..5u64 {
        let batch = random_batch(e.graph(), 5, 3000 + round);
        e.add_vertices(&batch, AdditionStrategy::RepartitionS);
        e.rc_step();
    }
    e.run_to_convergence(128);
    assert_oracle(&e);
    e.check_invariants().unwrap();
    assert_eq!(e.graph().vertex_count(), 75);
}

#[test]
fn restart_and_incremental_agree_after_identical_updates() {
    let batch = random_batch(&generators::barabasi_albert(50, 2, 3, 29), 6, 41);
    let mut incremental = engine(50, 4, 29);
    incremental.run_to_convergence(64);
    incremental.add_vertices(&batch, AdditionStrategy::CutEdgePs);
    incremental.run_to_convergence(96);

    let mut restarted = engine(50, 4, 29);
    restarted.run_to_convergence(64);
    restarted.add_vertices(&batch, AdditionStrategy::BaselineRestart);
    restarted.run_to_convergence(96);

    assert_eq!(
        incremental.distances_dense(),
        restarted.distances_dense(),
        "incremental and restart must agree on the final distances"
    );
}

#[test]
fn update_rejections_leave_state_intact() {
    let mut e = engine(40, 3, 31);
    e.run_to_convergence(64);
    let before = e.distances_dense();
    // All of these are no-ops.
    let (u, v, w) = e.graph().edges().next().unwrap();
    assert!(!e.add_edge(u, v, 9), "duplicate edge");
    assert!(!e.delete_edge(0, 0), "self loop never exists");
    assert!(!e.change_edge_weight(u, v, w), "same weight");
    assert_eq!(e.distances_dense(), before);
    assert!(e.is_converged());
}

#[test]
fn dynamic_closeness_tracks_graph_evolution() {
    // Adding a shortcut edge to a peripheral vertex must raise its closeness.
    let mut e = engine(80, 4, 33);
    e.run_to_convergence(64);
    let snap_before = e.snapshot();
    let hub = snap_before.top_k(1)[0].0;
    // Most peripheral live vertex: lowest non-zero closeness.
    let periph = e
        .graph()
        .vertices()
        .filter(|&v| v != hub)
        .min_by(|&a, &b| {
            snap_before.closeness[a as usize]
                .partial_cmp(&snap_before.closeness[b as usize])
                .unwrap()
        })
        .unwrap();
    e.add_edge(periph, hub, 1);
    e.run_to_convergence(64);
    let snap_after = e.snapshot();
    assert!(
        snap_after.closeness[periph as usize] > snap_before.closeness[periph as usize],
        "a shortcut to the hub must raise closeness: {} -> {}",
        snap_before.closeness[periph as usize],
        snap_after.closeness[periph as usize]
    );
}
