//! Property-based tests (proptest) on the system's core invariants:
//!
//! * converged distributed distances equal the sequential oracle for random
//!   graphs, processor counts and random dynamic-update schedules;
//! * anytime estimates are monotone non-increasing under growth-only updates;
//! * every partitioner produces a valid cover; the multilevel partitioner
//!   respects its balance bound;
//! * the communication schedules are valid 1-factorizations / broadcasts;
//! * the distance-matrix migration and column-extension operations preserve
//!   content.

use aa_core::dv::DistanceMatrix;
use aa_core::{AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, VertexBatch};
use aa_graph::{algo, Graph, VertexId, INF};
use aa_logp::schedule;
use aa_partition::{
    BfsGrowPartitioner, HashPartitioner, MultilevelKWay, Partitioner, RoundRobinPartitioner,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random connected-ish undirected graph with up to `max_n`
/// vertices given as an edge list.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..8), 1..(3 * n));
        edges.prop_map(move |edges| {
            let mut g = Graph::with_vertices(n);
            // A spine keeps most of the graph connected, so distances are
            // interesting rather than mostly INF.
            for v in 1..n as u32 {
                g.add_edge(v - 1, v, 1 + (v % 3));
            }
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(u, v, w);
                }
            }
            g
        })
    })
}

fn converge(graph: Graph, procs: usize, seed: u64) -> AnytimeEngine {
    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: procs,
            seed,
            ..Default::default()
        },
    );
    e.initialize();
    e.run_to_convergence(16 * procs + 64);
    assert!(e.is_converged());
    e
}

fn oracle_rows(g: &Graph) -> Vec<Vec<u32>> {
    algo::apsp_dijkstra(g)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn distributed_apsp_equals_oracle(graph in arb_graph(36), procs in 1usize..6, seed in 0u64..1000) {
        let expected = oracle_rows(&graph);
        let engine = converge(graph, procs, seed);
        prop_assert_eq!(engine.distances_dense(), expected);
    }

    #[test]
    fn dynamic_schedule_equals_static_recompute(
        graph in arb_graph(28),
        procs in 2usize..5,
        ops in proptest::collection::vec((0u8..4, 0u32..28, 0u32..28, 1u32..6), 1..8)
    ) {
        let mut engine = converge(graph, procs, 7);
        for (kind, a, b, w) in ops {
            match kind {
                0 => {
                    let ids: Vec<VertexId> = engine.graph().vertices().collect();
                    let u = ids[a as usize % ids.len()];
                    let v = ids[b as usize % ids.len()];
                    if u != v {
                        engine.add_edge(u, v, w);
                    }
                }
                1 => {
                    let edges: Vec<_> = engine.graph().edges().collect();
                    if !edges.is_empty() {
                        let (u, v, _) = edges[a as usize % edges.len()];
                        engine.delete_edge(u, v);
                    }
                }
                2 => {
                    let edges: Vec<_> = engine.graph().edges().collect();
                    if !edges.is_empty() {
                        let (u, v, old) = edges[b as usize % edges.len()];
                        if old != w {
                            engine.change_edge_weight(u, v, w);
                        }
                    }
                }
                _ => {
                    let ids: Vec<VertexId> = engine.graph().vertices().collect();
                    let mut batch = VertexBatch::new(2);
                    batch.connect(0, Endpoint::New(1), w);
                    batch.connect(0, Endpoint::Existing(ids[a as usize % ids.len()]), w);
                    engine.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
                }
            }
            engine.rc_step();
        }
        engine.run_to_convergence(16 * procs + 96);
        prop_assert!(engine.is_converged());
        let expected = oracle_rows(engine.graph());
        let dense = engine.distances_dense();
        for v in engine.graph().vertices() {
            prop_assert_eq!(&dense[v as usize], &expected[v as usize], "row {}", v);
        }
        engine.check_invariants().unwrap();
    }

    #[test]
    fn growth_only_estimates_are_monotone(graph in arb_graph(24), procs in 2usize..5) {
        let mut engine = AnytimeEngine::new(
            graph,
            EngineConfig { num_procs: procs, ..Default::default() },
        );
        engine.initialize();
        let mut prev = engine.distances_dense();
        for step in 0..8u32 {
            if step == 3 {
                let ids: Vec<VertexId> = engine.graph().vertices().collect();
                let mut batch = VertexBatch::new(1);
                batch.connect(0, Endpoint::Existing(ids[0]), 2);
                engine.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
            }
            engine.rc_step();
            let cur = engine.distances_dense();
            for (rp, rc) in prev.iter().zip(&cur) {
                for (&a, &b) in rp.iter().zip(rc.iter()) {
                    prop_assert!(b <= a, "estimate increased {} -> {}", a, b);
                }
            }
            prev = cur;
        }
    }

    #[test]
    fn partitioners_produce_valid_covers(graph in arb_graph(40), k in 1usize..7) {
        for partitioner in [
            &RoundRobinPartitioner as &dyn Partitioner,
            &HashPartitioner,
            &BfsGrowPartitioner,
            &MultilevelKWay::default(),
        ] {
            let p = partitioner.partition(&graph, k);
            prop_assert!(p.validate(&graph).is_ok(), "{} invalid", partitioner.name());
        }
    }

    #[test]
    fn multilevel_respects_balance_bound(graph in arb_graph(60), k in 2usize..6) {
        let ml = MultilevelKWay::default();
        let p = ml.partition(&graph, k);
        let sizes = p.part_sizes();
        let total: usize = sizes.iter().sum();
        let max_allowed = (((total as f64 / k as f64) * (1.0 + ml.epsilon)).ceil()) as usize;
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert!(
                s <= max_allowed,
                "part {} holds {} > bound {}", i, s, max_allowed
            );
        }
    }

    #[test]
    fn one_factorization_is_complete_and_conflict_free(p in 2usize..24) {
        let rounds = schedule::one_factorization(p);
        let mut seen = HashSet::new();
        for round in &rounds {
            let mut busy = HashSet::new();
            for &(a, b) in round {
                prop_assert!(a < b && b < p);
                prop_assert!(busy.insert(a) && busy.insert(b), "processor double-booked");
                prop_assert!(seen.insert((a, b)), "pair repeated");
            }
        }
        prop_assert_eq!(seen.len(), p * (p - 1) / 2);
    }

    #[test]
    fn serialized_schedule_covers_all_ordered_pairs(p in 1usize..24) {
        let sched = schedule::serialized_all_to_all(p);
        let set: HashSet<_> = sched.iter().copied().collect();
        prop_assert_eq!(set.len(), sched.len());
        prop_assert_eq!(sched.len(), p.saturating_sub(1) * p);
    }

    #[test]
    fn tree_broadcast_reaches_all(p in 1usize..33, root_pick in 0usize..33) {
        let root = root_pick % p;
        let rounds = schedule::tree_broadcast(p, root);
        let mut have = HashSet::from([root]);
        for round in rounds {
            let snapshot = have.clone();
            for (s, d) in round {
                prop_assert!(snapshot.contains(&s));
                prop_assert!(have.insert(d));
            }
        }
        prop_assert_eq!(have.len(), p);
    }

    #[test]
    fn delta_stepping_equals_dijkstra(graph in arb_graph(40), delta in 1u32..20, src in 0u32..40) {
        let src = src % graph.capacity() as u32;
        prop_assert_eq!(
            aa_graph::centrality::delta_stepping(&graph, src, delta),
            algo::dijkstra(&graph, src)
        );
    }

    #[test]
    fn k_core_members_have_k_neighbors_in_core(graph in arb_graph(40)) {
        let core = aa_graph::centrality::k_core(&graph);
        for v in graph.vertices() {
            let k = core[v as usize];
            let in_core = graph
                .neighbors(v)
                .iter()
                .filter(|&&(u, _)| core[u as usize] >= k)
                .count();
            prop_assert!(
                in_core >= k,
                "vertex {} claims core {} but has only {} qualifying neighbours",
                v, k, in_core
            );
        }
    }

    #[test]
    fn pagerank_conserves_mass(graph in arb_graph(30), d in 0.05f64..0.95) {
        let pr = aa_graph::centrality::pagerank(&graph, d, 150, 1e-12);
        let total: f64 = pr.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "mass {}", total);
    }

    #[test]
    fn clique_rooted_decomposition_is_exact(graph in arb_graph(20)) {
        let all = aa_graph::cliques::maximal_cliques(&graph);
        let mut rooted: Vec<Vec<VertexId>> = Vec::new();
        for v in graph.vertices() {
            rooted.extend(aa_graph::cliques::cliques_rooted_at(&graph, v));
        }
        rooted.sort();
        prop_assert_eq!(rooted, all);
    }

    #[test]
    fn distributed_cliques_equal_oracle(graph in arb_graph(20), procs in 1usize..4) {
        let want = aa_graph::cliques::maximal_cliques(&graph);
        let mut e = AnytimeEngine::new(
            graph,
            EngineConfig { num_procs: procs, ..Default::default() },
        );
        e.initialize();
        prop_assert_eq!(e.maximal_cliques(), want);
    }

    #[test]
    fn checkpoint_roundtrips_any_state(
        graph in arb_graph(24),
        procs in 1usize..4,
        pre_steps in 0usize..4
    ) {
        let mut e = AnytimeEngine::new(
            graph,
            EngineConfig { num_procs: procs, ..Default::default() },
        );
        e.initialize();
        for _ in 0..pre_steps {
            e.rc_step();
        }
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();
        let mut restored =
            AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), e.config().clone()).unwrap();
        prop_assert_eq!(restored.distances_dense(), e.distances_dense());
        restored.run_to_convergence(16 * procs + 64);
        prop_assert!(restored.is_converged());
        let dense = restored.distances_dense();
        let want = oracle_rows(restored.graph());
        for v in restored.graph().vertices() {
            prop_assert_eq!(&dense[v as usize], &want[v as usize]);
        }
    }

    #[test]
    fn recovery_from_any_rank_restores_oracle(
        graph in arb_graph(28),
        procs in 2usize..5,
        fail_rank in 0usize..5,
        mid_run in proptest::bool::ANY
    ) {
        let fail_rank = fail_rank % procs;
        let mut e = AnytimeEngine::new(
            graph,
            EngineConfig { num_procs: procs, ..Default::default() },
        );
        e.initialize();
        if !mid_run {
            e.run_to_convergence(16 * procs + 64);
        } else {
            e.rc_step();
        }
        e.fail_and_recover_processor(fail_rank).unwrap();
        e.run_to_convergence(16 * procs + 64);
        prop_assert!(e.is_converged());
        let dense = e.distances_dense();
        let want = oracle_rows(e.graph());
        for v in e.graph().vertices() {
            prop_assert_eq!(&dense[v as usize], &want[v as usize]);
        }
    }

    #[test]
    fn rebalance_never_corrupts_results(graph in arb_graph(30), procs in 2usize..5) {
        let mut e = AnytimeEngine::new(
            graph,
            EngineConfig { num_procs: procs, ..Default::default() },
        );
        e.initialize();
        e.run_to_convergence(16 * procs + 64);
        e.rebalance();
        e.run_to_convergence(16 * procs + 64);
        prop_assert!(e.is_converged());
        e.check_invariants().unwrap();
        let dense = e.distances_dense();
        let want = oracle_rows(e.graph());
        for v in e.graph().vertices() {
            prop_assert_eq!(&dense[v as usize], &want[v as usize]);
        }
    }

    #[test]
    fn metis_roundtrip_any_graph(graph in arb_graph(40)) {
        let mut buf = Vec::new();
        aa_graph::io::write_metis(&graph, &mut buf).unwrap();
        let h = aa_graph::io::read_metis(std::io::Cursor::new(buf)).unwrap();
        let mut eg: Vec<_> = graph.edges().collect();
        let mut eh: Vec<_> = h.edges().collect();
        eg.sort_unstable();
        eh.sort_unstable();
        prop_assert_eq!(eg, eh);
    }

    #[test]
    fn distance_matrix_migration_roundtrip(
        cols in 2usize..32,
        values in proptest::collection::vec(0u32..1000, 2..32)
    ) {
        let cols = cols.max(values.len());
        let mut a = DistanceMatrix::new(cols);
        a.add_row(1);
        for (i, &v) in values.iter().enumerate() {
            a.row_mut(1)[i] = v;
        }
        let taken = a.take_row(1);
        prop_assert!(!a.has_row(1));
        let mut b = DistanceMatrix::new(cols + 3);
        b.insert_row(1, taken);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(b.row(1)[i], v);
        }
        for i in cols..cols + 3 {
            prop_assert_eq!(b.row(1)[i], INF, "extension must pad with INF");
        }
    }
}
