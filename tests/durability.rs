//! Crash-consistency integration tests: the kill-and-restart differential
//! sweep the durability layer's acceptance criteria name, plus targeted
//! media-corruption recovery and property tests on the WAL encoding.
//!
//! The differential invariant under test, at **every** kill point:
//!
//! * no acknowledged update is lost — an op whose WAL sequence was covered
//!   by a reported group commit is present after recovery;
//! * no unacknowledged update is applied — ops logged but never committed
//!   (or aborted by a failed commit) never surface in the recovered engine.
//!
//! Both directions follow from one equality: the live server's engine holds
//! exactly the committed ops (aborted ops are removed before the barrier
//! flush, unflushed ops never reach it), so the recovered engine must agree
//! with it bit-for-bit at convergence.

use aa_core::{AnytimeEngine, EngineConfig};
use aa_durable::{
    decode_record, encode_commit, encode_record, recover, scan_segment, DurabilityConfig,
    DurableLog, SimStorage, Storage, StorageFaultPlan, StorageFaults, WalRecord,
};
use aa_graph::generators;
use aa_ingest::UpdateOp;
use aa_serve::{ClientOp, LoadGen, ServeConfig, Server, WorkloadConfig};
use proptest::prelude::*;

const N: usize = 60;
const PROCS: usize = 3;

/// The engine both the server and recovery start from; recovery's base must
/// be built identically or the differential is meaningless.
fn fresh_engine() -> AnytimeEngine {
    let g = generators::barabasi_albert(N, 2, 1, 7);
    AnytimeEngine::new(
        g,
        EngineConfig {
            num_procs: PROCS,
            ..Default::default()
        },
    )
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        write_tokens_per_turn: 32,
        write_burst: 32,
        ..Default::default()
    }
}

/// A durable server over `sim`, checkpointing every 3 turns so a multi-turn
/// run exercises checkpoint + WAL-suffix recovery, not just replay.
fn durable_server(sim: &SimStorage) -> Server {
    let mut s = Server::new(fresh_engine(), serve_config()).unwrap();
    let mut storage: Box<dyn Storage> = Box::new(sim.clone());
    let log = DurableLog::open(
        storage.as_mut(),
        1,
        DurabilityConfig {
            checkpoint_every_turns: 3,
            ..Default::default()
        },
    )
    .unwrap();
    s.attach_durability(storage, log);
    s
}

fn workload(seed: u64) -> LoadGen {
    LoadGen::new(WorkloadConfig {
        seed,
        offered_per_turn: 12,
        read_fraction: 0.4,
        top_k: 4,
        topk_read_mix: 0.5,
    })
}

fn offer_turn(s: &mut Server, gen: &mut LoadGen) {
    for op in gen.turn_ops(s.engine()) {
        match op {
            ClientOp::Read(kind) => {
                s.submit_read(kind);
            }
            ClientOp::Write(w) => {
                s.submit_write(w);
            }
        }
    }
}

fn assert_closeness_equal(live: &mut AnytimeEngine, recovered: &mut AnytimeEngine, ctx: &str) {
    live.run_to_convergence(100_000);
    recovered.run_to_convergence(100_000);
    let want = live.snapshot().closeness.clone();
    let got = recovered.snapshot().closeness.clone();
    assert_eq!(want.len(), got.len(), "{ctx}: vertex count diverged");
    for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "{ctx}: vertex {i}: live {a} vs recovered {b}"
        );
    }
}

/// Runs the same seeded workload against a durable server, killing after
/// each turn count in `1..=turns`, and checks the differential invariant at
/// every kill point. `faults` seeds the storage fault schedule (torn tails,
/// failed fsyncs/renames) so commits fail and tails tear mid-sweep.
fn kill_sweep(faults: StorageFaults, fault_seed: u64, turns: usize) {
    for kill_after in 1..=turns {
        let sim = SimStorage::with_faults(StorageFaultPlan::new(fault_seed, faults));
        let mut s = durable_server(&sim);
        let mut gen = workload(0xD17A);
        let mut committed = 0u64;
        for _ in 0..kill_after {
            offer_turn(&mut s, &mut gen);
            let rep = s.turn().expect("serve turn");
            if let Some(seq) = rep.durable_seq {
                committed = seq;
            }
        }
        // Logged-but-never-committed stragglers: buffered in memory at kill
        // time, they must not resurface after recovery.
        for op in gen.turn_ops(s.engine()) {
            if let ClientOp::Write(w) = op {
                s.submit_write(w);
            }
        }
        sim.kill();
        let mut st = sim.clone();
        let rec = recover(&mut st, fresh_engine(), s.config().ingest)
            .unwrap_or_else(|e| panic!("kill@{kill_after}: recovery failed: {e}"));
        assert!(
            rec.next_seq > committed,
            "kill@{kill_after}: next seq {} must pass committed {committed}",
            rec.next_seq
        );
        let mut recovered = rec.engine;
        assert_closeness_equal(
            s.engine_mut(),
            &mut recovered,
            &format!("kill@{kill_after} (faults seed {fault_seed})"),
        );
    }
}

/// Fault-free storage: every kill point recovers to exactly the acked state.
#[test]
fn kill_restart_differential_clean_storage() {
    kill_sweep(StorageFaults::none(), 0, 8);
}

/// Seeded write-side faults (torn tails, failed fsyncs and renames): failed
/// commits abort their ops and burn sequence numbers, kills tear pending
/// bytes — recovery must still land on exactly the acked state.
#[test]
fn kill_restart_differential_torn_writes() {
    kill_sweep(StorageFaults::write_side(0.35), 11, 8);
}

/// Every fsync fails: nothing is ever acked, every logged op is aborted, and
/// recovery must come up with the untouched base state.
#[test]
fn kill_restart_differential_total_fsync_failure() {
    kill_sweep(
        StorageFaults {
            p_fail_fsync: 1.0,
            ..StorageFaults::none()
        },
        23,
        3,
    );
}

/// A flipped bit in the newest checkpoint quarantines it; recovery falls
/// back to the older retained checkpoint plus a longer WAL replay — and the
/// result is still exactly the acked state, because compaction only deletes
/// segments covered by the **oldest** retained checkpoint.
#[test]
fn corrupt_newest_checkpoint_falls_back_to_wal_replay() {
    let sim = SimStorage::new();
    let mut s = durable_server(&sim);
    let mut gen = workload(0xFA11);
    for _ in 0..8 {
        offer_turn(&mut s, &mut gen);
        s.turn().expect("serve turn");
    }
    sim.kill();
    let names = Storage::list(&sim.clone()).unwrap();
    let ckpts: Vec<&String> = names.iter().filter(|n| n.ends_with(".aadc")).collect();
    assert!(
        ckpts.len() >= 2,
        "need a fallback checkpoint, got {ckpts:?}"
    );
    let newest = ckpts.iter().max().copied().cloned().unwrap();
    let len = sim.durable_len(&newest).unwrap();
    assert!(sim.flip_durable_bit(&newest, (len / 2) * 8 + 1));
    let mut st = sim.clone();
    let rec = recover(&mut st, fresh_engine(), s.config().ingest)
        .expect("fallback recovery must succeed");
    assert_eq!(
        rec.report.checkpoints_quarantined, 1,
        "the flipped checkpoint must be quarantined: {:?}",
        rec.report.notes
    );
    assert!(rec.report.used_checkpoint, "older checkpoint must load");
    let mut recovered = rec.engine;
    assert_closeness_equal(s.engine_mut(), &mut recovered, "corrupt newest checkpoint");
}

/// A truncated WAL tail (media corruption cutting into the last committed
/// batch) is quarantined, never a panic: recovery still comes up, reports
/// the damage, and serves from what survived.
#[test]
fn truncated_wal_tail_is_quarantined_never_fatal() {
    let sim = SimStorage::new();
    let mut s = durable_server(&sim);
    let mut gen = workload(0xBEEF);
    for _ in 0..4 {
        offer_turn(&mut s, &mut gen);
        s.turn().expect("serve turn");
    }
    sim.kill();
    let names = Storage::list(&sim.clone()).unwrap();
    let newest_seg = names
        .iter()
        .filter(|n| n.ends_with(".aawl"))
        .max()
        .cloned()
        .expect("at least one WAL segment");
    let len = sim.durable_len(&newest_seg).unwrap();
    if len > 3 {
        assert!(sim.truncate_durable(&newest_seg, len - 3));
    }
    let mut st = sim.clone();
    let rec = recover(&mut st, fresh_engine(), s.config().ingest)
        .expect("truncation must degrade, not fail");
    // The cut lands mid-frame: either inside the final commit marker
    // (records demoted to an uncommitted tail) or inside a record
    // (quarantined region). Both are reported, neither is fatal.
    assert!(
        rec.report.frames_quarantined > 0
            || rec.report.records_uncommitted > 0
            || rec.report.bytes_quarantined > 0,
        "damage must be visible in the report: {:?}",
        rec.report
    );
    let mut recovered = rec.engine;
    recovered.run_to_convergence(100_000);
}

// ---------------------------------------------------------------------------
// Property tests on the WAL encoding itself.
// ---------------------------------------------------------------------------

/// Strategy: an arbitrary `UpdateOp` across all five variants.
fn arb_op() -> impl Strategy<Value = UpdateOp> {
    (
        0u8..5,
        0u32..500,
        0u32..500,
        1u32..64,
        proptest::collection::vec((0u32..500, 1u32..64), 0..6),
    )
        .prop_map(|(tag, u, v, w, anchors)| match tag {
            0 => UpdateOp::AddEdge(u, v, w),
            1 => UpdateOp::DeleteEdge(u, v),
            2 => UpdateOp::Reweight(u, v, w),
            3 => UpdateOp::AddVertex { anchors },
            _ => UpdateOp::DeleteVertex(u),
        })
}

/// Builds a well-formed segment image: header, `committed` op records
/// followed by one commit marker, then `uncommitted` trailing op records.
fn build_segment(
    first_seq: u64,
    committed: &[UpdateOp],
    uncommitted: &[UpdateOp],
) -> (Vec<u8>, Vec<(u64, UpdateOp)>) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"AAWL");
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&first_seq.to_le_bytes());
    let mut expect = Vec::new();
    let mut seq = first_seq;
    for op in committed {
        bytes.extend_from_slice(&encode_record(seq, op));
        expect.push((seq, op.clone()));
        seq += 1;
    }
    if !committed.is_empty() {
        bytes.extend_from_slice(&encode_commit(seq - 1));
    }
    for op in uncommitted {
        bytes.extend_from_slice(&encode_record(seq, op));
        seq += 1;
    }
    (bytes, expect)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every op record round-trips exactly through the frame codec, and the
    /// decoder consumes precisely the bytes the encoder produced.
    #[test]
    fn wal_record_round_trips(seq in 1u64..1 << 48, op in arb_op()) {
        let bytes = encode_record(seq, &op);
        let (rec, used) = decode_record(&bytes).expect("fresh record must decode");
        prop_assert_eq!(used, bytes.len());
        match rec {
            WalRecord::Op(s, o) => {
                prop_assert_eq!(s, seq);
                prop_assert_eq!(o, op);
            }
            other => prop_assert!(false, "decoded wrong kind: {:?}", other),
        }
    }

    /// Scanning a segment truncated at an arbitrary byte never panics, and
    /// whatever it yields is a prefix of the committed records — a torn tail
    /// can lose acknowledged-at-the-margin records (the crash model's
    /// permitted loss is bounded by the lost commit marker) but can never
    /// invent, reorder, or resurrect uncommitted ones.
    #[test]
    fn torn_segment_scan_yields_committed_prefix(
        first in 1u64..1000,
        committed in proptest::collection::vec(arb_op(), 0..6),
        uncommitted in proptest::collection::vec(arb_op(), 0..3),
        cut in 0usize..4096,
    ) {
        let (bytes, expect) = build_segment(first, &committed, &uncommitted);
        let cut = cut.min(bytes.len());
        match scan_segment(&bytes[..cut]) {
            Err(_) => prop_assert!(cut < 16, "only a truncated header may fail the scan"),
            Ok(scan) => {
                prop_assert!(scan.records.len() <= expect.len());
                for (got, want) in scan.records.iter().zip(expect.iter()) {
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// A single flipped bit anywhere past the header is caught by the CRC
    /// (or the length/monotonicity guards): the scan never panics and never
    /// yields a record that was not written.
    #[test]
    fn bit_flip_never_forges_a_record(
        first in 1u64..1000,
        committed in proptest::collection::vec(arb_op(), 1..6),
        uncommitted in proptest::collection::vec(arb_op(), 0..3),
        bit in 0usize..32768,
    ) {
        let (mut bytes, expect) = build_segment(first, &committed, &uncommitted);
        let bit = 16 * 8 + bit % ((bytes.len() - 16) * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        if let Ok(scan) = scan_segment(&bytes) {
            for got in &scan.records {
                prop_assert!(
                    expect.contains(got),
                    "scan forged record {:?} after flipping bit {}",
                    got,
                    bit
                );
            }
        }
    }
}
