//! Soak test: a long deterministic stream of mixed operations — every dynamic
//! update type, strategy switches, rebalances, processor failures and a
//! checkpoint round-trip — with oracle verification at multiple points. This
//! is the "leave it running for a week" scenario compressed.

use aa_core::{
    AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, FaultConfig, ProcFaultConfig,
    Refinement, SupervisorConfig, VertexBatch,
};
use aa_graph::{algo, generators, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn assert_oracle(e: &AnytimeEngine) {
    let dense = e.distances_dense();
    let oracle = algo::apsp_dijkstra(e.graph());
    for v in e.graph().vertices() {
        assert_eq!(dense[v as usize], oracle[v as usize], "row {v}");
    }
}

fn random_live_pair(e: &AnytimeEngine, rng: &mut ChaCha8Rng) -> (VertexId, VertexId) {
    let ids: Vec<VertexId> = e.graph().vertices().collect();
    loop {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            return (u, v);
        }
    }
}

#[test]
fn hundred_operation_soak() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x50AC);
    let graph = generators::barabasi_albert(90, 2, 3, 77);
    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 5,
            ..Default::default()
        },
    );
    e.initialize();
    e.run_to_convergence(96);

    let strategies = [
        AdditionStrategy::RoundRobinPs,
        AdditionStrategy::CutEdgePs,
        AdditionStrategy::RepartitionS,
    ];
    for op in 0..100u64 {
        match op % 10 {
            0 | 1 => {
                let (u, v) = random_live_pair(&e, &mut rng);
                e.add_edge(u, v, rng.gen_range(1..6));
            }
            2 => {
                let edges: Vec<_> = e.graph().edges().collect();
                let (u, v, _) = edges[rng.gen_range(0..edges.len())];
                e.delete_edge(u, v);
            }
            3 => {
                let batch_edges: Vec<_> = (0..3)
                    .map(|_| {
                        let (u, v) = random_live_pair(&e, &mut rng);
                        (u, v, rng.gen_range(1..4))
                    })
                    .collect();
                e.add_edges(&batch_edges);
            }
            4 => {
                let mut batch = VertexBatch::new(2);
                let ids: Vec<VertexId> = e.graph().vertices().collect();
                batch.connect(0, Endpoint::Existing(ids[rng.gen_range(0..ids.len())]), 1);
                batch.connect(1, Endpoint::New(0), 2);
                let strategy = strategies[(op as usize / 10) % strategies.len()];
                e.add_vertices(&batch, strategy);
            }
            5 => {
                let edges: Vec<_> = e.graph().edges().collect();
                let (u, v, w) = edges[rng.gen_range(0..edges.len())];
                let new_w = if rng.gen_bool(0.5) { w + 3 } else { 1 };
                e.change_edge_weight(u, v, new_w);
            }
            6 => {
                // Delete a random non-critical vertex (keep the graph big).
                if e.graph().vertex_count() > 60 {
                    let ids: Vec<VertexId> = e.graph().vertices().collect();
                    e.delete_vertex(ids[rng.gen_range(0..ids.len())]);
                }
            }
            7 => {
                e.rebalance_if_needed(1.3);
            }
            8 => {
                e.fail_and_recover_processor(rng.gen_range(0..5)).unwrap();
            }
            _ => {
                let victims: Vec<_> = e
                    .graph()
                    .edges()
                    .step_by(11)
                    .take(2)
                    .map(|(u, v, _)| (u, v))
                    .collect();
                e.delete_edges(&victims);
            }
        }
        e.rc_step();
        if op % 25 == 24 {
            e.run_to_convergence(128);
            assert!(e.is_converged(), "not converged at op {op}");
            assert_oracle(&e);
            e.check_invariants().unwrap();
        }
    }

    // Checkpoint round-trip at the end of the soak.
    e.run_to_convergence(128);
    let mut buf = Vec::new();
    e.save_checkpoint(&mut buf).unwrap();
    let restored = AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), e.config().clone())
        .expect("soaked state must checkpoint cleanly");
    assert_eq!(restored.distances_dense(), e.distances_dense());
    assert_oracle(&e);
}

/// Combined-adversity soak: lossy links, scheduled fail-stop crashes, an
/// injected straggler and a stream of dynamic updates, all at once. The
/// supervisor must detect and recover every crash on its own (no manual
/// `fail_and_recover_processor` anywhere) and the end state must still be
/// the exact oracle.
#[test]
fn combined_adversity_soak() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xADE5);
    let graph = generators::barabasi_albert(70, 2, 2, 31);
    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 5,
            seed: 31,
            fault: Some(FaultConfig {
                p_drop: 0.15,
                p_dup: 0.05,
                reorder: true,
                seed: 0xADE5,
            }),
            proc_fault: Some(ProcFaultConfig {
                crashes: vec![(8, 1), (45, 3)],
                stragglers: vec![(2, 200.0)],
            }),
            supervision: SupervisorConfig {
                checkpoint_interval: 4,
                detector_timeout: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    e.initialize();

    for op in 0..40u64 {
        match op % 8 {
            0 | 1 => {
                let (u, v) = random_live_pair(&e, &mut rng);
                e.add_edge(u, v, rng.gen_range(1..6));
            }
            2 => {
                let edges: Vec<_> = e.graph().edges().collect();
                let (u, v, _) = edges[rng.gen_range(0..edges.len())];
                e.delete_edge(u, v);
            }
            3 => {
                let mut batch = VertexBatch::new(1);
                let ids: Vec<VertexId> = e.graph().vertices().collect();
                batch.connect(0, Endpoint::Existing(ids[rng.gen_range(0..ids.len())]), 2);
                e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
            }
            4 => {
                let edges: Vec<_> = e.graph().edges().collect();
                let (u, v, w) = edges[rng.gen_range(0..edges.len())];
                let new_w = if rng.gen_bool(0.5) { w + 2 } else { 1 };
                e.change_edge_weight(u, v, new_w);
            }
            5 if op == 21 => {
                // One more crash scheduled on the fly, mid-churn.
                e.schedule_crash(e.rc_steps() as u64 + 3, 4);
            }
            _ => {}
        }
        e.rc_step();
    }

    e.run_to_convergence(6000);
    assert!(e.is_converged(), "combined adversity must still converge");
    assert_eq!(e.outstanding_rows(), 0);

    // Every scheduled crash was detected and recovered automatically.
    let recovered: Vec<usize> = e.recovery_log().iter().map(|ev| ev.report.rank).collect();
    assert!(recovered.contains(&1), "crash of rank 1 not recovered");
    assert!(recovered.contains(&3), "crash of rank 3 not recovered");
    assert!(recovered.contains(&4), "crash of rank 4 not recovered");
    let health = e.health_report();
    assert!(health.down_ranks.is_empty());
    assert_eq!(
        health.stragglers,
        vec![2],
        "straggler flag lost in the noise"
    );

    let totals = e.cluster().ledger().totals();
    assert!(totals.dropped_messages > 0, "chaos must actually drop");
    assert!(totals.heartbeat_messages > 0);

    assert_oracle(&e);
    e.check_invariants().unwrap();
}

#[test]
fn pivot_pass_refinement_survives_dynamic_updates() {
    let graph = generators::erdos_renyi_gnm(70, 180, 3, 88);
    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 4,
            refinement: Refinement::PivotPass,
            ..Default::default()
        },
    );
    e.initialize();
    e.run_to_convergence(200);
    assert!(e.is_converged());
    e.add_edge(0, 50, 1);
    e.rc_step();
    let (u, v, _) = e.graph().edges().nth(8).unwrap();
    e.delete_edge(u, v);
    let mut batch = VertexBatch::new(2);
    batch.connect(0, Endpoint::Existing(10), 1);
    batch.connect(1, Endpoint::New(0), 1);
    e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
    e.run_to_convergence(300);
    assert!(
        e.is_converged(),
        "pivot-pass + dynamic updates must converge"
    );
    assert_oracle(&e);
}

#[test]
fn rmat_workload_end_to_end() {
    use aa_graph::rmat::{rmat, RmatParams};
    let graph = rmat(7, 400, RmatParams::default(), 3, 5);
    let mut e = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 4,
            ..Default::default()
        },
    );
    e.initialize();
    e.run_to_convergence(96);
    assert!(e.is_converged());
    assert_oracle(&e);
    // R-MAT graphs have many isolated slots (the recursion misses vertices);
    // dynamic updates on them must still work.
    let hub = e
        .graph()
        .vertices()
        .max_by_key(|&v| e.graph().degree(v))
        .unwrap();
    let isolated = e
        .graph()
        .vertices()
        .find(|&v| e.graph().degree(v) == 0)
        .expect("R-MAT leaves isolated vertices");
    e.add_edge(isolated, hub, 2);
    e.run_to_convergence(96);
    assert_oracle(&e);
}
