//! Observability lockdown tests.
//!
//! * Golden-file tests pin the JSON and Prometheus exports of a hand-built
//!   registry and the progress JSONL of a seeded run (with the one
//!   measured-time-tainted field zeroed), so export format drift is a
//!   reviewed diff, never an accident.
//! * Probe monotonicity: fault-free, per-vertex estimates never regress, the
//!   converged-row fraction never decreases and the worst overestimate never
//!   grows.
//! * JSONL round-trips decode to the exact structs that were encoded.
//!
//! Regenerate goldens intentionally with `UPDATE_GOLDEN=1 cargo test`.

use aa_core::{AnytimeEngine, EngineConfig, MetricsRegistry, ProgressSample};
use aa_graph::generators;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (regenerate with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        actual, want,
        "golden {name} drifted — if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// A registry with every metric kind, fixed values, labels that need escaping
/// and a histogram — everything the exporters have to render stably.
fn sample_registry() -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    r.set_help("aa_rows_total", "distance-vector rows exchanged");
    r.set_help("aa_queue_depth", "rows waiting per rank");
    r.set_help("aa_row_bytes", "bytes per row transfer");
    r.inc_counter("aa_rows_total", &[("phase", "recombination")], 42);
    r.inc_counter("aa_rows_total", &[("phase", "recovery")], 3);
    r.inc_counter("aa_zero_total", &[], 0);
    r.set_gauge("aa_queue_depth", &[("rank", "0")], 7.5);
    r.set_gauge("aa_queue_depth", &[("rank", "1")], 0.0);
    r.set_gauge("aa_escape_check", &[("path", "a\"b\\c")], 1.0);
    r.declare_histogram("aa_row_bytes", &[64.0, 256.0, 1024.0]);
    for v in [32.0, 100.0, 100.0, 500.0, 5000.0] {
        r.observe("aa_row_bytes", &[], v);
    }
    r
}

#[test]
fn registry_json_matches_golden() {
    check_golden("registry.json", &sample_registry().to_json());
}

#[test]
fn registry_prometheus_matches_golden() {
    check_golden("registry.prom", &sample_registry().to_prometheus_text());
}

#[test]
fn registry_table_mentions_every_metric() {
    let table = sample_registry().render_table();
    for name in [
        "aa_rows_total",
        "aa_queue_depth",
        "aa_row_bytes",
        "aa_zero_total",
    ] {
        assert!(table.contains(name), "{name} missing from:\n{table}");
    }
}

/// A seeded engine with the probe on, run to convergence.
fn probed_engine(n: usize, procs: usize, seed: u64) -> AnytimeEngine {
    let g = generators::barabasi_albert(n, 2, 1, seed);
    let mut e = AnytimeEngine::new(
        g,
        EngineConfig {
            num_procs: procs,
            seed,
            ..Default::default()
        },
    );
    e.initialize();
    e.enable_progress_probe();
    e.run_to_convergence(16 * procs + 64);
    assert!(e.is_converged());
    e
}

/// The one field fed by measured (wall-clock-scaled) compute is zeroed so
/// the golden is bit-stable across machines; everything else in a sample is
/// derived from the modeled, seeded state.
fn stable_samples(e: &AnytimeEngine) -> Vec<ProgressSample> {
    let mut samples = e.progress_samples().to_vec();
    for s in &mut samples {
        s.makespan_us = 0.0;
    }
    samples
}

#[test]
fn progress_jsonl_matches_golden_seeded_run() {
    let e = probed_engine(40, 3, 11);
    check_golden(
        "progress.jsonl",
        &aa_core::encode_jsonl(&stable_samples(&e)),
    );
}

#[test]
fn progress_jsonl_roundtrips_exactly() {
    let e = probed_engine(30, 2, 5);
    let samples = e.progress_samples().to_vec();
    assert!(!samples.is_empty());
    let decoded = aa_core::decode_jsonl(&aa_core::encode_jsonl(&samples)).unwrap();
    assert_eq!(decoded, samples);
}

#[test]
fn span_jsonl_roundtrips_exactly() {
    let e = probed_engine(30, 2, 5);
    let log = e.spans();
    assert!(!log.is_empty());
    let decoded = aa_core::SpanLog::from_jsonl(&log.to_jsonl()).unwrap();
    assert_eq!(decoded.len(), log.len());
    for (a, b) in decoded.iter().zip(log.iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn probe_is_monotone_fault_free() {
    let e = probed_engine(60, 4, 23);
    let samples = e.progress_samples();
    assert!(samples.len() >= 2, "expected several RC steps");
    for s in samples {
        assert_eq!(
            s.estimate_regressions, 0,
            "fault-free estimates must never increase (RC{})",
            s.rc_step
        );
        assert!(!s.recovering);
        assert_eq!(s.down_ranks, 0);
    }
    for pair in samples.windows(2) {
        assert!(
            pair[1].converged_row_fraction + 1e-12 >= pair[0].converged_row_fraction,
            "converged-row fraction decreased: {} -> {} at RC{}",
            pair[0].converged_row_fraction,
            pair[1].converged_row_fraction,
            pair[1].rc_step
        );
        assert!(
            pair[1].max_overestimate <= pair[0].max_overestimate + 1e-12,
            "worst overestimate grew: {} -> {} at RC{}",
            pair[0].max_overestimate,
            pair[1].max_overestimate,
            pair[1].rc_step
        );
    }
    let last = samples.last().unwrap();
    assert!(last.max_overestimate <= 1e-12);
    assert!((last.kendall_tau - 1.0).abs() < 1e-12);
    assert!((last.converged_row_fraction - 1.0).abs() < 1e-12);
    assert_eq!(last.outstanding_rows, 0);
}

#[test]
fn metrics_json_has_no_unstable_fields_when_phases_are_excluded() {
    // The full engine registry necessarily includes measured compute; the
    // exporter must keep those clearly named (`*_compute_us`, makespan) so
    // downstream goldens can exclude them — verify the naming contract.
    let e = probed_engine(30, 2, 5);
    let json = e.metrics_registry().to_json();
    for stable in [
        "\"aa_rc_steps_total\"",
        "\"aa_graph_vertices\"",
        "\"aa_converged\"",
        "\"aa_outstanding_rows\"",
        "\"aa_live_ranks\"",
    ] {
        assert!(json.contains(stable), "{stable} missing from:\n{json}");
    }
    assert!(
        json.contains("aa_makespan_us"),
        "measured fields keep their us suffix"
    );
}
