//! Lossy-link chaos tests: the engine must converge to the *exact* oracle
//! distances even when the simulated network drops, duplicates and reorders
//! recombination transfers — and must never report convergence while rows are
//! still in flight.
//!
//! The correctness argument being exercised: distance rows are monotone upper
//! bounds and min-merge is idempotent, so at-least-once delivery suffices
//! (duplicates are harmless). The ack-based retransmission layer turns the
//! lossy network into at-least-once delivery, and `is_converged()` stays
//! false while any row is unacknowledged.
//!
//! Every scenario runs on both execution backends (`mod on_sim`,
//! `mod on_threads`): the deterministic simulator is the oracle, and the
//! threaded backend must survive the identical chaos with the identical
//! outcome — per-link fault streams are keyed by (seed, link, count), so the
//! schedule is the same no matter which backend judges it.

use aa_core::{
    AdditionStrategy, AnytimeEngine, Endpoint, EngineConfig, FaultConfig, ProcFaultConfig,
    SupervisorConfig, VertexBatch,
};
use aa_graph::{algo, generators, Graph};
use aa_runtime::BackendKind;
use proptest::prelude::*;

/// Worker cap used for the threaded backend in these tests: fewer workers
/// than ranks, so lane multiplexing is exercised too.
fn threads_for(backend: BackendKind) -> usize {
    match backend {
        BackendKind::Sim => 0,
        BackendKind::Threads => 3,
    }
}

fn faulty_engine(
    g: Graph,
    procs: usize,
    seed: u64,
    p_drop: f64,
    p_dup: f64,
    backend: BackendKind,
) -> AnytimeEngine {
    let mut e = AnytimeEngine::new(
        g,
        EngineConfig {
            num_procs: procs,
            seed,
            fault: Some(FaultConfig {
                p_drop,
                p_dup,
                reorder: true,
                seed: seed ^ 0xC4A05,
            }),
            backend,
            threads: threads_for(backend),
            ..Default::default()
        },
    );
    e.initialize();
    e
}

fn assert_oracle(e: &AnytimeEngine) {
    let dense = e.distances_dense();
    let oracle = algo::apsp_dijkstra(e.graph());
    for v in e.graph().vertices() {
        assert_eq!(dense[v as usize], oracle[v as usize], "row {v}");
    }
}

/// Steps to convergence by hand, checking at every step that the engine never
/// claims convergence while retransmissions are outstanding. Returns the step
/// count.
fn converge_checked(e: &mut AnytimeEngine, cap: usize) -> usize {
    for step in 1..=cap {
        e.rc_step();
        if e.is_converged() {
            assert_eq!(
                e.outstanding_rows(),
                0,
                "is_converged() must imply nothing is in flight"
            );
            return step;
        }
    }
    panic!(
        "no convergence within {cap} steps ({} rows still outstanding)",
        e.outstanding_rows()
    );
}

fn fixed_drop_rates_reach_the_oracle_exactly(backend: BackendKind) {
    // The acceptance table from the issue: drop rates up to 0.5, with
    // duplication and reordering on, all converge to the exact oracle.
    for &(p_drop, p_dup) in &[(0.1, 0.05), (0.3, 0.1), (0.5, 0.2)] {
        let g = generators::barabasi_albert(60, 2, 2, 11);
        let mut e = faulty_engine(g, 4, 11, p_drop, p_dup, backend);
        converge_checked(&mut e, 4000);
        assert_oracle(&e);
        e.check_invariants().unwrap();
        let totals = e.cluster().ledger().totals();
        assert!(
            totals.dropped_messages > 0,
            "p_drop {p_drop} should actually drop transfers"
        );
        assert!(
            totals.dup_messages > 0,
            "p_dup {p_dup} should actually duplicate transfers"
        );
        assert!(totals.dropped_bytes <= totals.bytes);
    }
}

fn chaos_is_deterministic_per_seed(backend: BackendKind) {
    // compute_ms is measured wall time, so compare only the deterministic
    // traffic counters.
    let run = || {
        let g = generators::barabasi_albert(50, 2, 1, 3);
        let mut e = faulty_engine(g, 3, 3, 0.3, 0.1, backend);
        e.run_to_convergence(4000);
        assert!(e.is_converged());
        let t = e.cluster().ledger().totals();
        (
            (
                t.messages,
                t.bytes,
                t.dropped_messages,
                t.dropped_bytes,
                t.dup_messages,
                t.dup_bytes,
            ),
            e.distances_dense(),
        )
    };
    let (t1, d1) = run();
    let (t2, d2) = run();
    assert_eq!(t1, t2, "same seeds must replay the same faults");
    assert_eq!(d1, d2);
}

fn zero_rate_fault_plan_changes_nothing(backend: BackendKind) {
    // A configured-but-silent fault plan must be byte-for-byte identical to no
    // plan at all: same ledger totals, same distances, zero fault counters.
    let mk = |fault: Option<FaultConfig>| {
        let g = generators::barabasi_albert(50, 2, 2, 9);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 4,
                seed: 9,
                fault,
                backend,
                threads: threads_for(backend),
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(256);
        assert!(e.is_converged());
        e
    };
    let plain = mk(None);
    let silent = mk(Some(FaultConfig {
        p_drop: 0.0,
        p_dup: 0.0,
        ..Default::default()
    }));
    let (tp, ts) = (
        plain.cluster().ledger().totals(),
        silent.cluster().ledger().totals(),
    );
    // compute_ms is measured wall time; everything else must match exactly.
    assert_eq!(
        tp.messages, ts.messages,
        "zero-fault path must be unchanged"
    );
    assert_eq!(tp.bytes, ts.bytes, "zero-fault path must be unchanged");
    assert_eq!(ts.dropped_messages, 0);
    assert_eq!(ts.dropped_bytes, 0);
    assert_eq!(ts.dup_messages, 0);
    assert_eq!(ts.dup_bytes, 0);
    assert_eq!(plain.distances_dense(), silent.distances_dense());
}

fn dynamic_updates_survive_lossy_links(backend: BackendKind) {
    let g = generators::barabasi_albert(50, 2, 1, 17);
    let mut e = faulty_engine(g, 4, 17, 0.3, 0.1, backend);
    converge_checked(&mut e, 4000);

    e.add_edge(0, 40, 1);
    converge_checked(&mut e, 4000);
    assert_oracle(&e);

    let mut batch = VertexBatch::new(2);
    batch.connect(0, Endpoint::Existing(5), 1);
    batch.connect(1, Endpoint::New(0), 2);
    e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
    converge_checked(&mut e, 4000);
    assert_oracle(&e);

    // The deletion barrier quiesces the lossy network (draining every
    // outstanding retransmit) before the invalidation runs.
    e.delete_edge(0, 40);
    converge_checked(&mut e, 4000);
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

fn crash_recovery_composes_with_lossy_links(backend: BackendKind) {
    let g = generators::barabasi_albert(50, 2, 2, 23);
    let mut e = faulty_engine(g, 4, 23, 0.2, 0.1, backend);
    converge_checked(&mut e, 4000);
    e.fail_and_recover_processor(1).unwrap();
    converge_checked(&mut e, 4000);
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

/// Every chaos scenario on the deterministic simulator (the oracle).
mod on_sim {
    use super::*;

    #[test]
    fn fixed_drop_rates_reach_the_oracle_exactly() {
        super::fixed_drop_rates_reach_the_oracle_exactly(BackendKind::Sim);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        super::chaos_is_deterministic_per_seed(BackendKind::Sim);
    }

    #[test]
    fn zero_rate_fault_plan_changes_nothing() {
        super::zero_rate_fault_plan_changes_nothing(BackendKind::Sim);
    }

    #[test]
    fn dynamic_updates_survive_lossy_links() {
        super::dynamic_updates_survive_lossy_links(BackendKind::Sim);
    }

    #[test]
    fn crash_recovery_composes_with_lossy_links() {
        super::crash_recovery_composes_with_lossy_links(BackendKind::Sim);
    }
}

/// The identical scenarios on real OS threads: same seeds, same chaos, same
/// exact outcome required.
mod on_threads {
    use super::*;

    #[test]
    fn fixed_drop_rates_reach_the_oracle_exactly() {
        super::fixed_drop_rates_reach_the_oracle_exactly(BackendKind::Threads);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        super::chaos_is_deterministic_per_seed(BackendKind::Threads);
    }

    #[test]
    fn zero_rate_fault_plan_changes_nothing() {
        super::zero_rate_fault_plan_changes_nothing(BackendKind::Threads);
    }

    #[test]
    fn dynamic_updates_survive_lossy_links() {
        super::dynamic_updates_survive_lossy_links(BackendKind::Threads);
    }

    #[test]
    fn crash_recovery_composes_with_lossy_links() {
        super::crash_recovery_composes_with_lossy_links(BackendKind::Threads);
    }
}

/// The determinism regression the threaded backend is held to (ISSUE 9): the
/// same seed at 8 worker threads under drop 0.2 plus one scheduled crash must
/// reproduce bit-identical snapshots and an identical metrics ledger across
/// runs — thread scheduling may reorder *execution*, never *results*.
/// Measured wall time (`compute_us`, makespan) is the one sanctioned
/// exception and is excluded from the comparison.
#[test]
fn threaded_backend_is_deterministic_across_runs() {
    let run = || {
        let g = generators::barabasi_albert(60, 2, 2, 47);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 8,
                seed: 47,
                backend: BackendKind::Threads,
                threads: 8,
                fault: Some(FaultConfig {
                    p_drop: 0.2,
                    p_dup: 0.05,
                    reorder: true,
                    seed: 47 ^ 0xC4A05,
                }),
                proc_fault: Some(ProcFaultConfig {
                    crashes: vec![(3, 1)],
                    stragglers: vec![],
                }),
                supervision: SupervisorConfig {
                    checkpoint_interval: 1,
                    detector_timeout: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(4000);
        assert!(e.is_converged());
        let t = e.cluster().ledger().totals();
        let snap = e.snapshot();
        let recoveries: Vec<(u64, usize, String, usize)> = e
            .recovery_log()
            .iter()
            .map(|ev| {
                (
                    ev.step,
                    ev.report.rank,
                    ev.report.method.to_string(),
                    ev.report.restored_rows,
                )
            })
            .collect();
        (
            (
                t.messages,
                t.bytes,
                t.dropped_messages,
                t.dropped_bytes,
                t.dup_messages,
                t.dup_bytes,
                t.heartbeat_messages,
            ),
            recoveries,
            snap.closeness,
            snap.stale,
            e.distances_dense(),
        )
    };
    let (t1, r1, c1, s1, d1) = run();
    let (t2, r2, c2, s2, d2) = run();
    assert_eq!(t1, t2, "ledger counters must replay identically");
    assert_eq!(r1, r2, "recovery log must replay identically");
    assert_eq!(c1, c2, "closeness snapshot must be bit-identical");
    assert_eq!(s1, s2, "stale flags must be identical");
    assert_eq!(d1, d2, "distance rows must be identical");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random graphs, processor counts, seeds and fault rates up to the
    /// issue's 0.5 ceiling: convergence is always exact, and convergence is
    /// never declared with data in flight.
    #[test]
    fn lossy_links_never_break_exactness(
        n in 8usize..40,
        procs in 2usize..5,
        seed in 0u64..1000,
        p_drop in 0.05f64..0.5,
        p_dup in 0.0f64..0.3,
    ) {
        let g = generators::barabasi_albert(n, 2, 1, seed);
        let mut e = faulty_engine(g, procs, seed, p_drop, p_dup, BackendKind::Sim);
        for step in 1..=6000usize {
            e.rc_step();
            if e.is_converged() {
                prop_assert_eq!(e.outstanding_rows(), 0);
                break;
            }
            prop_assert!(step < 6000, "no convergence within 6000 steps");
        }
        prop_assert!(e.is_converged());
        let dense = e.distances_dense();
        let oracle = algo::apsp_dijkstra(e.graph());
        for v in e.graph().vertices() {
            prop_assert_eq!(dense[v as usize], oracle[v as usize], "row {}", v);
        }
        e.check_invariants().unwrap();
    }
}
