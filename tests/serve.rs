//! Serving-layer integration tests: torn-read regression at every superstep
//! boundary (including mid-recovery), the chaos-under-load soak the issue's
//! acceptance criteria name, allocation-stable snapshot publication, and
//! end-to-end backpressure behavior under read overload.

use aa_core::{AnytimeEngine, EngineConfig, FaultConfig, ProcFaultConfig, SnapshotMeta};
use aa_graph::{algo, generators};
use aa_ingest::Admission;
use aa_serve::{ClientOp, LoadGen, ReadKind, ReadOutcome, ServeConfig, Server, WorkloadConfig};
use std::collections::BTreeSet;
use std::sync::Arc;

fn assert_oracle(e: &AnytimeEngine) {
    let dense = e.distances_dense();
    let oracle = algo::apsp_dijkstra(e.graph());
    for v in e.graph().vertices() {
        assert_eq!(dense[v as usize], oracle[v as usize], "row {v}");
    }
}

/// The frame-level consistency contract every served response must satisfy:
/// a frame never claims freshness while rows are in flight or ranks are
/// down, freshness means a zero error bound, staleness means a finite
/// positive one, and the quiescent-row fraction is a real fraction.
fn assert_meta_consistent(meta: &SnapshotMeta) {
    assert!(
        !(meta.fresh && meta.outstanding_rows > 0),
        "frame claims fresh with {} rows in flight (epoch {})",
        meta.outstanding_rows,
        meta.epoch
    );
    assert!(
        !(meta.fresh && meta.down_ranks > 0),
        "frame claims fresh with {} ranks down (epoch {})",
        meta.down_ranks,
        meta.epoch
    );
    assert!(
        meta.max_overestimate_bound.is_finite(),
        "error bound must be finite, got {}",
        meta.max_overestimate_bound
    );
    if meta.fresh {
        assert!(meta.converged);
        assert!(
            meta.max_overestimate_bound.abs() < f64::EPSILON,
            "fresh frame must have a zero bound, got {}",
            meta.max_overestimate_bound
        );
    } else {
        assert!(
            meta.max_overestimate_bound > 0.0,
            "stale frame must carry a positive bound"
        );
    }
    assert!(
        (0.0..=1.0).contains(&meta.quiescent_row_fraction),
        "quiescent fraction {} out of range",
        meta.quiescent_row_fraction
    );
}

/// A reader turning at *every* superstep boundary — including the recovery
/// ladder after a mid-run crash on lossy links — never observes a torn
/// frame: epochs are monotone, freshness never coexists with in-flight
/// rows, and every bound stays finite.
#[test]
fn torn_read_regression_at_every_superstep_boundary() {
    let graph = generators::barabasi_albert(80, 2, 2, 19);
    let engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 4,
            seed: 19,
            fault: Some(FaultConfig {
                p_drop: 0.2,
                ..Default::default()
            }),
            proc_fault: Some(ProcFaultConfig {
                crashes: vec![(5, 2)],
                stragglers: vec![],
            }),
            ..Default::default()
        },
    );
    let mut s = Server::new(engine, ServeConfig::default()).unwrap();

    let mut last_epoch = 0u64;
    let mut served = 0usize;
    let mut saw_unfresh = false;
    let mut saw_down = false;
    for turn in 0..200 {
        // One read per superstep boundary: the reader races every rc_step,
        // the crash at step 5, and the whole recovery ladder.
        s.submit_read(ReadKind::TopK(5));
        let rep = s.turn().unwrap();
        for out in &rep.served {
            if let ReadOutcome::Served { meta, .. } = out {
                assert_meta_consistent(meta);
                assert!(
                    meta.epoch >= last_epoch,
                    "epoch went backwards at turn {turn}: {} < {last_epoch}",
                    meta.epoch
                );
                last_epoch = meta.epoch;
                saw_unfresh |= !meta.fresh;
                saw_down |= meta.down_ranks > 0;
                served += 1;
            }
        }
        if s.engine().is_converged() && s.read_queue_depth() == 0 {
            break;
        }
    }
    assert!(served > 0, "no reads were served");
    assert!(saw_unfresh, "the race never caught an unconverged frame");
    assert!(
        saw_down || !s.engine().recovery_log().is_empty(),
        "the crash left no visible trace"
    );
    s.drain(128).unwrap();
    assert!(s.engine().is_converged());
    assert_oracle(s.engine());
}

/// The issue's acceptance soak: drop-rate 0.2 links plus a fail-stop crash
/// injected mid-run, under sustained mixed read/write traffic. Every served
/// snapshot must be epoch-consistent, degraded-mode responses must carry
/// finite staleness/error bounds, and zero requests hang — every admitted
/// read resolves (served or shed) by the final drain.
#[test]
fn chaos_under_load_soak() {
    let graph = generators::barabasi_albert(90, 2, 3, 47);
    let engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 5,
            seed: 47,
            fault: Some(FaultConfig {
                p_drop: 0.2,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let mut s = Server::new(engine, ServeConfig::default()).unwrap();
    let mut gen = LoadGen::new(WorkloadConfig {
        seed: 0xC4A05,
        offered_per_turn: 24,
        read_fraction: 0.75,
        top_k: 6,
        topk_read_mix: 0.5,
    });

    let mut admitted: BTreeSet<u64> = BTreeSet::new();
    let mut resolved: BTreeSet<u64> = BTreeSet::new();
    let mut last_epoch = 0u64;
    let mut degraded_served = 0usize;

    let note = |outcomes: &[ReadOutcome],
                resolved: &mut BTreeSet<u64>,
                last_epoch: &mut u64,
                degraded_served: &mut usize| {
        for out in outcomes {
            assert!(
                resolved.insert(out.id()),
                "read {} resolved twice",
                out.id()
            );
            if let ReadOutcome::Served { meta, degraded, .. } = out {
                assert_meta_consistent(meta);
                assert!(meta.epoch >= *last_epoch, "epoch regressed mid-soak");
                *last_epoch = meta.epoch;
                if *degraded {
                    // Degraded service must still be bounded, never torn.
                    assert!(meta.max_overestimate_bound.is_finite());
                    assert!(!meta.fresh || meta.outstanding_rows == 0);
                    *degraded_served += 1;
                }
            }
        }
    };

    for turn in 0..60u64 {
        if turn == 12 {
            // Fail-stop crash injected mid-run, while traffic keeps coming.
            let at = s.engine().rc_steps() as u64 + 2;
            s.engine_mut().schedule_crash(at, 1);
        }
        for op in gen.turn_ops(s.engine()) {
            match op {
                ClientOp::Read(kind) => {
                    let t = s.submit_read(kind);
                    match t.admission {
                        Admission::Accepted | Admission::Throttled { .. } => {
                            admitted.insert(t.id);
                        }
                        Admission::Shed => {
                            // Resolved at admission: an explicit answer
                            // within the deadline, not a hang.
                        }
                    }
                }
                ClientOp::Write(op) => {
                    // Every write gets an explicit outcome too.
                    s.submit_write(op);
                }
            }
        }
        let rep = s.turn().unwrap();
        note(
            &rep.served,
            &mut resolved,
            &mut last_epoch,
            &mut degraded_served,
        );
    }
    let tail = s.drain(512).unwrap();
    note(&tail, &mut resolved, &mut last_epoch, &mut degraded_served);

    // Zero hangs: everything admitted resolved exactly once.
    assert_eq!(
        admitted, resolved,
        "admitted reads left unresolved after the drain"
    );
    let stats = s.stats();
    assert_eq!(
        stats.reads_submitted,
        stats.reads_resolved(),
        "submitted = served + shed must balance after the drain"
    );
    assert!(stats.reads_served > 0);
    assert!(
        !s.engine().recovery_log().is_empty(),
        "the injected crash must have been detected and recovered"
    );
    assert!(
        stats.degraded_turns > 0 && degraded_served > 0,
        "recovery must be visible as degraded (stale-but-bounded) service"
    );

    // After the storm the engine is exact again.
    assert!(s.engine().is_converged(), "soak must converge after drain");
    assert_oracle(s.engine());
    let frame = s.frame();
    assert!(frame.meta.fresh);
    assert!(frame.meta.max_overestimate_bound.abs() < f64::EPSILON);
}

/// Satellite 2: repeated reads of an unchanged engine reuse the same
/// published frame allocation (same `Arc`), asserted through both the
/// engine counter pair and the metrics registry.
#[test]
fn snapshot_publication_is_allocation_stable_across_reads() {
    let graph = generators::barabasi_albert(60, 2, 1, 7);
    let engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 3,
            ..Default::default()
        },
    );
    let mut s = Server::new(engine, ServeConfig::default()).unwrap();
    s.drain(64).unwrap();

    let a = s.frame();
    for _ in 0..10 {
        s.submit_read(ReadKind::TopK(3));
        s.turn().unwrap();
    }
    let b = s.frame();
    assert!(
        Arc::ptr_eq(&a, &b),
        "ten read-only turns must not re-gather or re-allocate the frame"
    );
    let (fresh, reused) = s.engine().snapshot_publication_counts();
    assert!(fresh >= 1);
    assert!(reused >= 10, "expected >= 10 reuses, got {reused}");
    let r = s.metrics_registry();
    assert_eq!(
        r.counter_value("aa_snapshot_publications_total", &[("kind", "reused")]),
        reused
    );
    assert_eq!(
        r.counter_value("aa_snapshot_publications_total", &[("kind", "fresh")]),
        fresh
    );

    // A real mutation invalidates the cached frame.
    let ids: Vec<u32> = s.engine().graph().vertices().collect();
    s.engine_mut().add_edge(ids[0], ids[40], 3);
    let c = s.frame();
    assert!(!Arc::ptr_eq(&b, &c), "mutation must invalidate the frame");
}

/// Read overload past the queue watermarks produces the full backpressure
/// ladder — Accepted below the high watermark, Throttled with a usable
/// retry hint above it, Shed at capacity — and every admitted read still
/// resolves.
#[test]
fn read_overload_walks_the_backpressure_ladder() {
    let graph = generators::barabasi_albert(60, 2, 1, 7);
    let engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 3,
            ..Default::default()
        },
    );
    let cfg = ServeConfig {
        read_queue_cap: 32,
        read_queue_hwm: 16,
        read_tokens_per_turn: 8,
        read_burst: 8,
        ..Default::default()
    };
    let mut s = Server::new(engine, cfg).unwrap();
    s.drain(64).unwrap();

    let mut accepted = 0;
    let mut throttled = 0;
    let mut shed = 0;
    let mut max_retry = 0u64;
    for _ in 0..48 {
        match s.submit_read(ReadKind::TopK(2)).admission {
            Admission::Accepted => accepted += 1,
            Admission::Throttled { retry_after } => {
                throttled += 1;
                max_retry = max_retry.max(retry_after);
            }
            Admission::Shed => shed += 1,
        }
    }
    assert_eq!(accepted, 16, "up to the hwm");
    assert_eq!(throttled, 16, "hwm..cap");
    assert_eq!(shed, 16, "past cap");
    assert!(max_retry >= 1, "retry hint must tell the client how long");

    let out = s.drain(64).unwrap();
    assert_eq!(out.len(), 32, "all admitted reads resolve");
    assert!(out
        .iter()
        .all(|o| matches!(o, ReadOutcome::Served { .. } | ReadOutcome::Shed { .. })));
}
