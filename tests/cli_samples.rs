//! The shipped sample data must actually work: drives the CLI library against
//! `data/collaboration.txt` and `data/updates.stream` exactly as the README
//! suggests.

use aa_cli::commands::{analyze, partition_report, AnalyzeOpts, Measure};
use std::path::{Path, PathBuf};

fn data(file: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("data")
        .join(file)
}

#[test]
fn sample_analyze_with_stream_and_measures() {
    let report = analyze(&AnalyzeOpts {
        input: data("collaboration.txt"),
        procs: 8,
        top: 5,
        stream: Some(data("updates.stream")),
        measures: vec![Measure::Pagerank, Measure::Degree],
        ..Default::default()
    })
    .expect("sample analysis must succeed");
    assert!(report.contains("120 vertices") || report.contains("121 vertices"));
    assert!(
        report.contains("added vertex 120"),
        "stream adds researcher 120"
    );
    assert!(report.contains("processor 1 crashed and recovered"));
    assert!(report.contains("rebalanced:"));
    assert!(report.contains("top-5 pagerank"));
    assert!(report.contains("top-5 degree centrality"));
}

#[test]
fn sample_partition_report() {
    let report = partition_report(&data("collaboration.txt"), None, 4).unwrap();
    assert!(report.contains("120 vertices"));
    // The sample has 4 planted communities: the multilevel partitioner must
    // find a far better cut than round-robin.
    let cut_of = |name: &str| -> usize {
        report
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("missing {name}"))
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap()
    };
    let ml = cut_of("multilevel-kway");
    let rr = cut_of("round-robin");
    assert!(
        3 * ml < rr,
        "multilevel ({ml}) should crush round-robin ({rr}) on community data"
    );
}

#[test]
fn sample_stream_parses_cleanly() {
    let text = std::fs::read_to_string(data("updates.stream")).unwrap();
    let cmds = aa_cli::stream::parse_stream(&text).unwrap();
    assert!(cmds.len() >= 9, "stream exercises the full command set");
}

/// Fuzz-style robustness table: malformed and boundary-condition stream files
/// must come back as clean `Err`s — never a panic, never silent acceptance.
#[test]
fn malformed_streams_fail_cleanly() {
    // (stream text, substring the error must contain)
    let parse_rejects: &[(&str, &str)] = &[
        ("ae", "missing"),                          // no arguments at all
        ("ae 0 1", "missing"),                      // missing weight
        ("ae 0 1 -3", "invalid"),                   // negative weight
        ("ae 0 1 99999999999999999999", "invalid"), // weight overflows u32
        ("fail 99999999999999999999", "invalid"),   // rank overflows u32
        ("fail -1", "invalid"),                     // negative rank
        ("av ", "missing anchor"),                  // empty anchor list
        ("av 1,,2", "invalid anchor"),              // hole in anchor list
        ("av 1;2", "invalid anchor"),               // wrong separator
        ("snapshot five", "invalid"),               // non-numeric k
        ("chaos 0.2", "missing p_dup"),             // chaos needs two rates
        ("chaos 2.0 0.0", "[0, 1]"),                // rate out of range
        ("chaos 1.0 0.0", "below 1"),               // certain loss never converges
        ("explode 3", "unknown command"),           // unknown opcode
        ("ae 0 1 2 trailing garbage", "trailing"),  // trailing garbage
        ("step\nstep\nae 0 1", "line 3"),           // errors name their line
    ];
    for (text, needle) in parse_rejects {
        let err =
            aa_cli::stream::parse_stream(text).expect_err(&format!("parse must reject {text:?}"));
        assert!(
            err.contains(needle),
            "error for {text:?} should mention {needle:?}, got: {err}"
        );
    }

    // Streams that parse but must fail at apply time — exercised through the
    // full `analyze` entry point so the error path is the one users hit.
    let apply_rejects: &[(&str, &str)] = &[
        ("fail 999999", "out of range"), // huge rank
        ("ae 0 999999 1", "not alive"),  // out-of-range endpoint
        ("ae 0 1 0", "at least 1"),      // zero-weight edge
        ("cw 0 1 0", "at least 1"),      // zero-weight reweight
        ("de 424242 0", "not alive"),    // out-of-range delete
    ];
    let dir = std::env::temp_dir().join("aa_cli_fuzz_streams");
    std::fs::create_dir_all(&dir).unwrap();
    for (i, (text, needle)) in apply_rejects.iter().enumerate() {
        let stream = dir.join(format!("bad_{i}.stream"));
        std::fs::write(&stream, text).unwrap();
        let err = analyze(&AnalyzeOpts {
            input: data("collaboration.txt"),
            procs: 4,
            stream: Some(stream),
            ..Default::default()
        })
        .expect_err(&format!("analyze must reject stream {text:?}"));
        assert!(
            err.contains(needle) && err.contains("stream line 1"),
            "error for {text:?} should mention {needle:?} and the line, got: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
