//! The shipped sample data must actually work: drives the CLI library against
//! `data/collaboration.txt` and `data/updates.stream` exactly as the README
//! suggests.

use aa_cli::commands::{analyze, partition_report, AnalyzeOpts, Measure};
use std::path::{Path, PathBuf};

fn data(file: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("data").join(file)
}

#[test]
fn sample_analyze_with_stream_and_measures() {
    let report = analyze(&AnalyzeOpts {
        input: data("collaboration.txt"),
        procs: 8,
        top: 5,
        stream: Some(data("updates.stream")),
        measures: vec![Measure::Pagerank, Measure::Degree],
        ..Default::default()
    })
    .expect("sample analysis must succeed");
    assert!(report.contains("120 vertices") || report.contains("121 vertices"));
    assert!(report.contains("added vertex 120"), "stream adds researcher 120");
    assert!(report.contains("processor 1 crashed and recovered"));
    assert!(report.contains("rebalanced:"));
    assert!(report.contains("top-5 pagerank"));
    assert!(report.contains("top-5 degree centrality"));
}

#[test]
fn sample_partition_report() {
    let report = partition_report(&data("collaboration.txt"), None, 4).unwrap();
    assert!(report.contains("120 vertices"));
    // The sample has 4 planted communities: the multilevel partitioner must
    // find a far better cut than round-robin.
    let cut_of = |name: &str| -> usize {
        report
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("missing {name}"))
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap()
    };
    let ml = cut_of("multilevel-kway");
    let rr = cut_of("round-robin");
    assert!(
        3 * ml < rr,
        "multilevel ({ml}) should crush round-robin ({rr}) on community data"
    );
}

#[test]
fn sample_stream_parses_cleanly() {
    let text = std::fs::read_to_string(data("updates.stream")).unwrap();
    let cmds = aa_cli::stream::parse_stream(&text).unwrap();
    assert!(cmds.len() >= 9, "stream exercises the full command set");
}
