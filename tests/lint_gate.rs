//! Tier-1 lint gate: runs the `aa-lint` static-analysis pass over the whole
//! workspace inside `cargo test` and enforces the ratcheted baseline. A new
//! finding anywhere fails this test with the same report the CLI prints;
//! fixing findings only ever *lowers* the committed counts.

use std::path::Path;

#[test]
fn workspace_is_lint_clean_against_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline_path = root.join("lint-baseline.json");
    let baseline = aa_lint::load_baseline(&baseline_path)
        .expect("lint-baseline.json must parse")
        .expect("lint-baseline.json must exist at the workspace root");
    let report = aa_lint::run(root, Some(&baseline)).expect("workspace scan");
    assert!(
        report.is_clean(),
        "new lint findings (fix them or, for sound code, add a reasoned \
         `// aa-lint: allow(RULE, reason)` pragma; never widen the baseline):\n{}",
        aa_lint::render_human(&report)
    );
}

#[test]
fn baseline_only_ratchets_down() {
    // Regenerating the baseline from the current tree must never *grow* any
    // bucket: that would mean someone hand-edited counts upward.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let committed = aa_lint::load_baseline(&root.join("lint-baseline.json"))
        .expect("parse")
        .expect("exists");
    let report = aa_lint::run(root, None).expect("workspace scan");
    let current = aa_lint::baseline::bucket_counts(&report.findings);
    for (rule, files) in &current {
        for (file, &n) in files {
            let allowed = committed
                .get(rule)
                .and_then(|f| f.get(file))
                .copied()
                .unwrap_or(0);
            assert!(
                n <= allowed,
                "{rule} in {file}: {n} findings but baseline allows {allowed}"
            );
        }
    }
}

#[test]
fn workspace_has_no_pending_autofixes() {
    // `aa-lint --fix --check` must be a no-op on a committed tree: every
    // AA02/AA03 site is either already rewritten or carries a reviewed
    // pragma. Keeping this in tier 1 means the nightly idempotence job can
    // never be the first to notice.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let pending = aa_lint::fix::fix_workspace(root, true).expect("fix scan");
    assert!(
        pending.is_empty(),
        "run `cargo run -p aa-lint -- --fix` and commit: {pending:?}"
    );
}

#[test]
fn sarif_render_covers_every_workspace_finding() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = aa_lint::run(root, None).expect("workspace scan");
    let doc = aa_lint::sarif::render(&report);
    assert!(doc.contains("\"version\": \"2.1.0\""));
    // One result per finding — CI uploads this artifact, so a silent drop
    // here would hide real debt from code scanning.
    let results = doc.matches("\"ruleId\":").count();
    assert_eq!(results, report.findings.len());
}
