//! Self-healing runtime tests: scheduled fail-stop crashes are *detected* by
//! the heartbeat failure detector (no manual trigger anywhere), recovered
//! through the three-rung ladder — checkpoint restore, SSSP reseed, baseline
//! restart — and the engine reconverges to the exact oracle every time.
//!
//! The cost claim being exercised: each rung of the ladder moves strictly
//! fewer recombination bytes than the next. A checkpoint hands the
//! replacement rank exact rows (one re-flood, no correction rounds); an SSSP
//! reseed hands it local upper bounds that keep improving as boundary rows
//! arrive (re-flood plus correction deltas); a baseline restart re-floods
//! every boundary row of every rank.
//!
//! Every scenario runs on both execution backends (`mod on_sim`,
//! `mod on_threads`): crash suspicion is silence-based and straggler
//! flagging is advisory, so detection, the ladder, and the recovery log must
//! behave identically whether ranks run sequentially in the simulator or on
//! real OS threads.

use aa_core::{
    AdditionStrategy, AnytimeEngine, EngineConfig, FaultConfig, ProcFaultConfig, RankHealth,
    RecoveryMethod, SupervisorConfig, VertexBatch,
};
use aa_graph::{algo, generators};
use aa_logp::Phase;
use aa_runtime::BackendKind;

fn assert_oracle(e: &AnytimeEngine) {
    let dense = e.distances_dense();
    let oracle = algo::apsp_dijkstra(e.graph());
    for v in e.graph().vertices() {
        assert_eq!(dense[v as usize], oracle[v as usize], "row {v}");
    }
}

/// Worker cap used for the threaded backend in these tests: fewer workers
/// than ranks, so lane multiplexing is exercised too.
fn threads_for(backend: BackendKind) -> usize {
    match backend {
        BackendKind::Sim => 0,
        BackendKind::Threads => 3,
    }
}

fn supervised_config(
    procs: usize,
    seed: u64,
    supervision: SupervisorConfig,
    backend: BackendKind,
) -> EngineConfig {
    EngineConfig {
        num_procs: procs,
        seed,
        supervision,
        backend,
        threads: threads_for(backend),
        ..Default::default()
    }
}

/// The issue's headline acceptance: a crash scheduled in the fault plan — no
/// manual `fail_and_recover_processor` call anywhere — fires mid-run, is
/// detected by heartbeat timeout, is recovered from the last valid periodic
/// checkpoint, and the engine converges to the exact oracle.
fn scheduled_crash_detected_and_recovered_via_checkpoint(backend: BackendKind) {
    let g = generators::barabasi_albert(60, 2, 2, 41);
    let mut e = AnytimeEngine::new(
        g,
        EngineConfig {
            num_procs: 4,
            seed: 41,
            proc_fault: Some(ProcFaultConfig {
                crashes: vec![(3, 1)],
                stragglers: vec![],
            }),
            supervision: SupervisorConfig {
                checkpoint_interval: 1,
                detector_timeout: 2,
                ..Default::default()
            },
            backend,
            threads: threads_for(backend),
            ..Default::default()
        },
    );
    e.initialize();
    let steps = e.run_to_convergence(256);
    assert!(e.is_converged(), "no convergence within 256 steps");
    assert!(steps > 3, "the crash must fire mid-run");

    // The supervisor did everything on its own.
    let log = e.recovery_log();
    assert_eq!(log.len(), 1, "exactly one recovery expected");
    assert_eq!(log[0].report.rank, 1);
    assert_eq!(log[0].report.method, RecoveryMethod::CheckpointRestore);
    assert!(log[0].report.restored_rows > 0);
    // Detection needs silence > timeout: crash at 3, last heard at 2,
    // suspicion strictly after step 4.
    assert!(log[0].step > 4, "recovery before the timeout could elapse");

    let health = e.health_report();
    assert!(health.down_ranks.is_empty());
    assert_eq!(health.recoveries, 1);
    assert!(health.statuses.iter().all(|s| *s == RankHealth::Healthy));

    // Recovery work is visible in the ledger under its own phase.
    let recovery = e.cluster().ledger().phase(Phase::Recovery);
    assert!(
        recovery.compute_us > 0.0,
        "recovery compute must be charged"
    );
    let totals = e.cluster().ledger().totals();
    assert!(
        totals.heartbeat_messages > 0,
        "heartbeats must actually flow"
    );

    assert_oracle(&e);
    e.check_invariants().unwrap();
}

/// Runs converge → scheduled crash of rank 1 → recover, and returns the
/// recombination bytes moved from the crash onward. `checkpoint_interval`
/// selects the ladder rung; `restart` instead measures the baseline
/// (detect the crash, then rebuild the whole computation from scratch).
fn crash_recovery_bytes(checkpoint_interval: usize, restart: bool, backend: BackendKind) -> u64 {
    let g = generators::barabasi_albert(60, 2, 2, 77);
    let mut e = AnytimeEngine::new(
        g,
        supervised_config(
            4,
            77,
            SupervisorConfig {
                checkpoint_interval,
                detector_timeout: 2,
                auto_recover: !restart,
                ..Default::default()
            },
            backend,
        ),
    );
    e.initialize();
    e.run_to_convergence(256);
    assert!(e.is_converged());

    let crash_step = e.rc_steps() as u64 + 1;
    e.schedule_crash(crash_step, 1);
    let before = e.cluster().ledger().phase(Phase::Recombination).bytes;

    if restart {
        // Let the detector confirm the crash, then rebuild everything —
        // the papers' baseline strategy, with repaired hardware.
        for _ in 0..16 {
            e.rc_step();
            if e.health_report().statuses[1] == RankHealth::Down {
                break;
            }
        }
        assert_eq!(e.health_report().statuses[1], RankHealth::Down);
        e.cluster_mut().mark_up(1);
        e.add_vertices(&VertexBatch::new(0), AdditionStrategy::BaselineRestart);
    }

    e.run_to_convergence(512);
    assert!(e.is_converged());
    if !restart {
        let log = e.recovery_log();
        assert_eq!(log.len(), 1);
        let expected = if checkpoint_interval > 0 {
            RecoveryMethod::CheckpointRestore
        } else {
            RecoveryMethod::SsspReseed
        };
        assert_eq!(log[0].report.method, expected);
    }
    assert_oracle(&e);
    e.check_invariants().unwrap();
    e.cluster().ledger().phase(Phase::Recombination).bytes - before
}

/// The issue's cost acceptance: checkpoint-assisted recovery moves strictly
/// fewer recombination bytes than SSSP-reseed recovery, which moves strictly
/// fewer than a baseline restart.
fn recovery_ladder_byte_ordering(backend: BackendKind) {
    let checkpoint = crash_recovery_bytes(1, false, backend);
    let reseed = crash_recovery_bytes(0, false, backend);
    let restart = crash_recovery_bytes(0, true, backend);
    assert!(
        checkpoint < reseed,
        "checkpoint restore ({checkpoint} B) must move fewer recombination \
         bytes than SSSP reseed ({reseed} B)"
    );
    assert!(
        reseed < restart,
        "SSSP reseed ({reseed} B) must move fewer recombination bytes than \
         baseline restart ({restart} B)"
    );
}

/// Converges with periodic checkpoints, corrupts rank 1's stored checkpoint
/// with `mutate`, crashes rank 1 — recovery must detect the damage (CRC or
/// framing) and fall back to the SSSP reseed, still reaching the oracle.
fn corrupt_and_recover(backend: BackendKind, mutate: impl FnOnce(&mut Vec<u8>)) {
    let g = generators::barabasi_albert(50, 2, 1, 53);
    let mut e = AnytimeEngine::new(
        g,
        supervised_config(
            4,
            53,
            SupervisorConfig {
                checkpoint_interval: 1,
                detector_timeout: 2,
                ..Default::default()
            },
            backend,
        ),
    );
    e.initialize();
    e.run_to_convergence(256);
    assert!(e.is_converged());
    assert!(e.has_rank_checkpoint(1));

    mutate(e.rank_checkpoint_mut(1).expect("checkpoint present"));
    let crash_step = e.rc_steps() as u64 + 1;
    e.schedule_crash(crash_step, 1);
    e.run_to_convergence(512);
    assert!(e.is_converged());

    let log = e.recovery_log();
    assert_eq!(log.len(), 1);
    assert_eq!(
        log[0].report.method,
        RecoveryMethod::SsspReseed,
        "a damaged checkpoint must not be trusted"
    );
    assert_eq!(log[0].report.restored_rows, 0);
    assert!(log[0].report.reseeded_rows > 0);
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

fn bit_flipped_checkpoint_falls_back_to_reseed(backend: BackendKind) {
    // Flip one payload bit: the CRC32 footer must reject the blob.
    corrupt_and_recover(backend, |blob| {
        let mid = blob.len() / 2;
        blob[mid] ^= 0x10;
    });
}

fn truncated_checkpoint_falls_back_to_reseed(backend: BackendKind) {
    // Cut the blob short: framing must reject it before any row is read.
    corrupt_and_recover(backend, |blob| {
        let half = blob.len() / 2;
        blob.truncate(half);
    });
}

/// A checkpoint taken before a deletion describes distances the deletion may
/// have invalidated (rows are only guaranteed upper bounds for the graph
/// they were computed on). Recovery must notice the epoch mismatch and
/// reseed instead of restoring.
fn stale_epoch_checkpoint_falls_back_to_reseed(backend: BackendKind) {
    let g = generators::barabasi_albert(50, 2, 1, 67);
    let mut e = AnytimeEngine::new(
        g,
        supervised_config(
            4,
            67,
            SupervisorConfig {
                checkpoint_interval: 1,
                detector_timeout: 2,
                ..Default::default()
            },
            backend,
        ),
    );
    e.initialize();
    e.run_to_convergence(256);
    assert!(e.is_converged());
    assert_eq!(e.invalidation_epoch(), 0);

    // The deletion bumps the invalidation epoch; every stored checkpoint is
    // now from a previous epoch.
    let (u, v) = {
        let g = e.graph();
        let u = g.vertices().next().unwrap();
        let v = g.neighbors(u).first().unwrap().0;
        (u, v)
    };
    e.delete_edge(u, v);
    assert_eq!(e.invalidation_epoch(), 1);

    let crash_step = e.rc_steps() as u64 + 1;
    e.schedule_crash(crash_step, 1);
    e.run_to_convergence(512);
    assert!(e.is_converged());

    let log = e.recovery_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].report.method, RecoveryMethod::SsspReseed);
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

/// With automatic recovery off, a detected crash degrades gracefully: the
/// engine keeps answering closeness queries, flagging exactly the down
/// rank's vertices as stale, until a manual recovery is requested.
fn down_rank_degrades_gracefully_with_stale_flags(backend: BackendKind) {
    let g = generators::barabasi_albert(50, 2, 1, 29);
    let mut e = AnytimeEngine::new(
        g,
        supervised_config(
            4,
            29,
            SupervisorConfig {
                detector_timeout: 2,
                auto_recover: false,
                ..Default::default()
            },
            backend,
        ),
    );
    e.initialize();
    e.run_to_convergence(256);
    assert!(e.is_converged());

    let crash_step = e.rc_steps() as u64 + 1;
    e.schedule_crash(crash_step, 1);
    for _ in 0..16 {
        e.rc_step();
        if e.health_report().statuses[1] == RankHealth::Down {
            break;
        }
    }
    let health = e.health_report();
    assert_eq!(health.statuses[1], RankHealth::Down);
    assert_eq!(health.down_ranks, vec![1]);
    assert_eq!(health.recoveries, 0, "auto_recover off must not recover");

    // Queries still work; exactly rank 1's vertices are flagged stale.
    let owned: Vec<u32> = e.partition().members()[1].clone();
    assert!(!owned.is_empty());
    let snap = e.snapshot();
    assert!(snap.any_stale());
    for v in e.graph().vertices() {
        let expected = owned.contains(&v);
        assert_eq!(
            snap.stale[v as usize], expected,
            "stale flag wrong for vertex {v}"
        );
    }
    // Surviving ranks' scores are still the pre-crash exact values.
    let oracle = algo::exact_closeness(e.graph());
    for v in e.graph().vertices() {
        if !snap.stale[v as usize] {
            assert!((snap.closeness[v as usize] - oracle[v as usize]).abs() < 1e-12);
        }
    }

    // Manual recovery (the `auto_recover: false` workflow) heals the cluster.
    let report = e.recover_rank(1).unwrap();
    assert_eq!(report.method, RecoveryMethod::SsspReseed);
    e.run_to_convergence(256);
    assert!(e.is_converged());
    assert!(!e.snapshot().any_stale());
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

/// An injected straggler slows down but never corrupts: the detector flags
/// it in the health report while the answer stays oracle-exact.
fn straggler_is_flagged_but_harmless(backend: BackendKind) {
    let g = generators::barabasi_albert(80, 2, 2, 59);
    let mut e = AnytimeEngine::new(
        g,
        EngineConfig {
            num_procs: 4,
            seed: 59,
            proc_fault: Some(ProcFaultConfig {
                crashes: vec![],
                stragglers: vec![(2, 10_000.0)],
            }),
            backend,
            threads: threads_for(backend),
            ..Default::default()
        },
    );
    e.initialize();
    // Step past the patience window; rc_step keeps running (and keeps
    // feeding the detector) even after convergence.
    for _ in 0..12 {
        e.rc_step();
    }
    let health = e.health_report();
    assert_eq!(health.statuses[2], RankHealth::Straggling);
    assert_eq!(health.stragglers, vec![2]);
    assert!(health.down_ranks.is_empty());

    assert!(e.is_converged());
    assert_oracle(&e);

    // Clearing the fault heals the flag after the streak resets.
    e.set_straggler(2, 1.0);
    for _ in 0..4 {
        e.rc_step();
    }
    assert_eq!(e.health_report().statuses[2], RankHealth::Healthy);
    e.check_invariants().unwrap();
}

/// Crash detection and checkpoint recovery compose with lossy links: the
/// heartbeats ride the same faulty network, yet a real crash is still told
/// apart from dropped heartbeats and the engine reconverges exactly.
fn scheduled_crash_composes_with_chaos_links(backend: BackendKind) {
    let g = generators::barabasi_albert(50, 2, 2, 83);
    let mut e = AnytimeEngine::new(
        g,
        EngineConfig {
            num_procs: 4,
            seed: 83,
            fault: Some(FaultConfig {
                p_drop: 0.2,
                p_dup: 0.1,
                reorder: true,
                seed: 83 ^ 0xC4A05,
            }),
            proc_fault: Some(ProcFaultConfig {
                crashes: vec![(4, 2)],
                stragglers: vec![],
            }),
            supervision: SupervisorConfig {
                checkpoint_interval: 2,
                ..Default::default()
            },
            backend,
            threads: threads_for(backend),
            ..Default::default()
        },
    );
    e.initialize();
    e.run_to_convergence(4000);
    assert!(e.is_converged());
    assert_eq!(e.outstanding_rows(), 0);

    let log = e.recovery_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].report.rank, 2);
    assert!(e.cluster().ledger().totals().dropped_messages > 0);
    assert_oracle(&e);
    e.check_invariants().unwrap();
}

/// Processor faults are seeded and replayable: two runs with the same
/// schedule produce identical traffic counters, recovery logs and distances.
fn self_healing_is_deterministic(backend: BackendKind) {
    let run = || {
        let g = generators::barabasi_albert(50, 2, 1, 31);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 4,
                seed: 31,
                proc_fault: Some(ProcFaultConfig {
                    crashes: vec![(3, 1)],
                    stragglers: vec![],
                }),
                supervision: SupervisorConfig {
                    checkpoint_interval: 1,
                    detector_timeout: 2,
                    ..Default::default()
                },
                backend,
                threads: threads_for(backend),
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(256);
        assert!(e.is_converged());
        let t = e.cluster().ledger().totals();
        let log: Vec<(u64, usize)> = e
            .recovery_log()
            .iter()
            .map(|ev| (ev.step, ev.report.rank))
            .collect();
        (
            (t.messages, t.bytes, t.heartbeat_messages),
            log,
            e.distances_dense(),
        )
    };
    let (t1, l1, d1) = run();
    let (t2, l2, d2) = run();
    assert_eq!(t1, t2, "same schedule must replay the same traffic");
    assert_eq!(l1, l2, "same schedule must replay the same recoveries");
    assert_eq!(d1, d2);
}

macro_rules! backend_tests {
    ($backend:expr) => {
        #[test]
        fn scheduled_crash_detected_and_recovered_via_checkpoint() {
            super::scheduled_crash_detected_and_recovered_via_checkpoint($backend);
        }

        #[test]
        fn recovery_ladder_byte_ordering() {
            super::recovery_ladder_byte_ordering($backend);
        }

        #[test]
        fn bit_flipped_checkpoint_falls_back_to_reseed() {
            super::bit_flipped_checkpoint_falls_back_to_reseed($backend);
        }

        #[test]
        fn truncated_checkpoint_falls_back_to_reseed() {
            super::truncated_checkpoint_falls_back_to_reseed($backend);
        }

        #[test]
        fn stale_epoch_checkpoint_falls_back_to_reseed() {
            super::stale_epoch_checkpoint_falls_back_to_reseed($backend);
        }

        #[test]
        fn down_rank_degrades_gracefully_with_stale_flags() {
            super::down_rank_degrades_gracefully_with_stale_flags($backend);
        }

        #[test]
        fn straggler_is_flagged_but_harmless() {
            super::straggler_is_flagged_but_harmless($backend);
        }

        #[test]
        fn scheduled_crash_composes_with_chaos_links() {
            super::scheduled_crash_composes_with_chaos_links($backend);
        }

        #[test]
        fn self_healing_is_deterministic() {
            super::self_healing_is_deterministic($backend);
        }
    };
}

/// Every self-healing scenario on the deterministic simulator (the oracle).
mod on_sim {
    backend_tests!(aa_runtime::BackendKind::Sim);
}

/// The identical scenarios on real OS threads: silence-based detection and
/// the recovery ladder must behave exactly as they do on the simulator.
mod on_threads {
    backend_tests!(aa_runtime::BackendKind::Threads);
}
