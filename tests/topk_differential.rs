//! Differential harness for the anytime top-k tracker (`aa-query`).
//!
//! Drives edge-churn schedules against a running [`AnytimeEngine`] with a
//! [`TopKTracker`] folded in after *every* superstep (each mutation and each
//! RC step), and checks the tracker's soundness contract against a
//! brute-force APSP oracle of the *current* graph at every one of those
//! points — not just at convergence:
//!
//! * **Anytime invariant.** The true top-k is always a subset of
//!   {members ∪ unresolved candidates}; equivalently, a vertex the bound
//!   test has pruned never re-enters the true top-k of its generation.
//! * **Exactness is earned.** Whenever the tracker claims
//!   [`Confidence::Exact`], its members must match the oracle ranking
//!   bit-for-bit — same ids, same order (score descending, ties by id),
//!   same `1/Σd` scores.
//! * **Convergence terminates the anytime phase.** Once the engine is
//!   converged the answer must be exact.
//!
//! The chaos matrix crosses drop rate {0, 0.2} × processor fault
//! {none, crash} × backend {sim, threads} over the same edge-churn
//! schedule. Failures shrink through the same ddmin pass the main
//! differential harness uses, and `AA_DIFF_SEED=<n> cargo test
//! topk_seeded_replay` pins one deterministic schedule, as there.

use aa_core::{AnytimeEngine, EngineConfig, FaultConfig, ProcFaultConfig, SupervisorConfig};
use aa_graph::{algo, Graph, VertexId};
use aa_query::{TopKConfig, TopKTracker};
use aa_runtime::BackendKind;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One edge mutation; indices are modulo-resolved against live state at
/// apply time so any subsequence of a schedule is still a valid schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Add an edge between the a-th and b-th live vertices with weight w.
    AddEdge(u32, u32, u32),
    /// Delete the i-th live edge.
    DeleteEdge(u32),
    /// Re-weight the i-th live edge to w.
    ChangeWeight(u32, u32),
}

/// A complete top-k differential case.
#[derive(Debug, Clone)]
struct Case {
    n: usize,
    extra_edges: Vec<(u32, u32, u32)>,
    procs: usize,
    k: usize,
    drop_rate: f64,
    backend: BackendKind,
    /// Scheduled fail-stop crash `(step, rank)`, supervisor-recovered.
    crash: Option<(u64, usize)>,
    seed: u64,
    ops: Vec<Op>,
}

/// Spine + extra edges (same shape as the main differential harness).
fn build_graph(n: usize, extra: &[(u32, u32, u32)]) -> Graph {
    let mut g = Graph::with_vertices(n);
    for v in 1..n as u32 {
        g.add_edge(v - 1, v, 1 + (v % 3));
    }
    for &(u, v, w) in extra {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            g.add_edge(u, v, w);
        }
    }
    g
}

fn apply(e: &mut AnytimeEngine, op: Op) {
    match op {
        Op::AddEdge(a, b, w) => {
            let ids: Vec<VertexId> = e.graph().vertices().collect();
            let u = ids[a as usize % ids.len()];
            let v = ids[b as usize % ids.len()];
            if u != v {
                e.add_edge(u, v, w.max(1));
            }
        }
        Op::DeleteEdge(i) => {
            let edges: Vec<_> = e.graph().edges().collect();
            if edges.len() > 1 {
                let (u, v, _) = edges[i as usize % edges.len()];
                e.delete_edge(u, v);
            }
        }
        Op::ChangeWeight(i, w) => {
            let edges: Vec<_> = e.graph().edges().collect();
            if !edges.is_empty() {
                let (u, v, old) = edges[i as usize % edges.len()];
                let w = w.max(1);
                if old != w {
                    e.change_edge_weight(u, v, w);
                }
            }
        }
    }
}

fn engine_for(case: &Case) -> AnytimeEngine {
    let graph = build_graph(case.n, &case.extra_edges);
    let fault = (case.drop_rate > 0.0).then(|| FaultConfig {
        p_drop: case.drop_rate,
        seed: case.seed ^ 0x5eed,
        ..Default::default()
    });
    let proc_fault = case.crash.is_some().then(|| ProcFaultConfig {
        crashes: case.crash.into_iter().collect(),
        ..Default::default()
    });
    let supervision = if case.crash.is_some() {
        SupervisorConfig {
            checkpoint_interval: 2,
            detector_timeout: 2,
            ..Default::default()
        }
    } else {
        SupervisorConfig::default()
    };
    AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: case.procs,
            seed: case.seed,
            fault,
            proc_fault,
            supervision,
            backend: case.backend,
            threads: if case.backend == BackendKind::Threads {
                3
            } else {
                0
            },
            ..Default::default()
        },
    )
}

/// Brute-force oracle ranking of the graph as it stands: every vertex with
/// positive closeness, score descending, ties by lower id, truncated to k.
fn oracle_ranking(g: &Graph, k: usize) -> Vec<(VertexId, f64)> {
    let dist = algo::apsp_dijkstra(g);
    let mut scored: Vec<(VertexId, f64)> = g
        .vertices()
        .map(|v| (v, algo::closeness_from_distances(&dist[v as usize], v)))
        .filter(|&(_, c)| c > 0.0)
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Publishes a frame and folds it plus the drained bound-delta feed into
/// the tracker — the same observation path the server's turn loop uses.
fn observe(e: &mut AnytimeEngine, tracker: &mut TopKTracker) {
    let frame = e.publish_snapshot();
    let deltas = e.drain_bound_deltas();
    tracker.observe(&frame, e.graph(), &deltas);
}

/// The every-superstep soundness check. `where_` names the superstep for
/// failure messages.
fn superstep_check(
    e: &AnytimeEngine,
    tracker: &TopKTracker,
    k: usize,
    where_: &str,
) -> Option<String> {
    let truth = oracle_ranking(e.graph(), k);
    let Some((members, unresolved, pruned)) = tracker.partition(k) else {
        return Some(format!("{where_}: tracker has no partition after observe"));
    };
    for &(v, _) in &truth {
        if pruned.contains(&v) {
            return Some(format!(
                "{where_}: true top-{k} vertex {v} was pruned (members {members:?}, \
                 unresolved {unresolved:?})"
            ));
        }
        if !members.contains(&v) && !unresolved.contains(&v) {
            return Some(format!(
                "{where_}: true top-{k} vertex {v} is neither a member nor an \
                 unresolved candidate"
            ));
        }
    }
    let Some(ans) = tracker.answer(k) else {
        return Some(format!("{where_}: tracker has no answer after observe"));
    };
    if ans.is_exact() && ans.members != truth {
        return Some(format!(
            "{where_}: Exact-claimed answer {:?} is not bit-for-bit the oracle {:?}",
            ans.members, truth
        ));
    }
    None
}

/// Runs a case with the tracker folded in after every superstep; returns
/// the first soundness failure, if any.
fn run_case(case: &Case) -> Option<String> {
    let mut e = engine_for(case);
    e.enable_bound_feed();
    e.initialize();
    let mut tracker = TopKTracker::new(TopKConfig {
        k: case.k,
        max_pivots: 8,
    });
    observe(&mut e, &mut tracker);
    if let Some(msg) = superstep_check(&e, &tracker, case.k, "after init") {
        return Some(msg);
    }
    let budget = 16 * case.procs + 128;
    for (i, &op) in case.ops.iter().enumerate() {
        apply(&mut e, op);
        observe(&mut e, &mut tracker);
        if let Some(msg) = superstep_check(&e, &tracker, case.k, &format!("after op[{i}]")) {
            return Some(msg);
        }
        e.rc_step();
        observe(&mut e, &mut tracker);
        if let Some(msg) = superstep_check(&e, &tracker, case.k, &format!("after op[{i}]+rc_step"))
        {
            return Some(msg);
        }
    }
    let mut steps = 0;
    while !e.is_converged() && steps < budget {
        e.rc_step();
        steps += 1;
        observe(&mut e, &mut tracker);
        if let Some(msg) =
            superstep_check(&e, &tracker, case.k, &format!("convergence step {steps}"))
        {
            return Some(msg);
        }
    }
    if !e.is_converged() {
        return Some(format!("engine failed to converge within {budget} steps"));
    }
    // Converged: the anytime phase is over and the answer must say so.
    match tracker.answer(case.k) {
        Some(ans) if ans.is_exact() => None,
        Some(ans) => Some(format!(
            "converged but confidence is still {:?}",
            ans.confidence
        )),
        None => Some("converged but tracker has no answer".into()),
    }
}

fn fails(case: &Case) -> bool {
    run_case(case).is_some()
}

/// ddmin over a vector-valued field (same shape as the main harness).
fn ddmin<T: Clone>(
    case: &Case,
    get: fn(&Case) -> &Vec<T>,
    get_mut: fn(&mut Case) -> &mut Vec<T>,
) -> Case {
    let mut best = case.clone();
    let mut chunk = (get(&best).len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < get(&best).len() {
            let mut candidate = best.clone();
            let upper = (i + chunk).min(get(&candidate).len());
            get_mut(&mut candidate).drain(i..upper);
            if fails(&candidate) {
                best = candidate;
                shrunk = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !shrunk {
                return best;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Minimizes a failing case: first the op schedule, then the extra edges.
fn shrink(case: &Case) -> Case {
    let best = ddmin(case, |c| &c.ops, |c| &mut c.ops);
    ddmin(&best, |c| &c.extra_edges, |c| &mut c.extra_edges)
}

/// Checks a case; on failure, prints the ddmin-minimal schedule and fails.
fn check_case(case: Case) -> Result<(), TestCaseError> {
    let Some(msg) = run_case(&case) else {
        return Ok(());
    };
    let minimal = shrink(&case);
    let min_msg = run_case(&minimal);
    eprintln!("=== top-k differential failure ===");
    eprintln!("original failure: {msg}");
    eprintln!(
        "minimal failing case: n={} procs={} k={} drop_rate={} backend={:?} crash={:?} \
         seed={} extra_edges={:?}",
        minimal.n,
        minimal.procs,
        minimal.k,
        minimal.drop_rate,
        minimal.backend,
        minimal.crash,
        minimal.seed,
        minimal.extra_edges
    );
    for (i, op) in minimal.ops.iter().enumerate() {
        eprintln!("  op[{i}] = {op:?}");
    }
    prop_assert!(
        false,
        "top-k soundness violation ({}): minimal case printed above",
        min_msg.unwrap_or(msg)
    );
    Ok(())
}

fn arb_edge_op() -> impl Strategy<Value = Op> {
    (0u8..3, 0u32..64, 0u32..64, 1u32..6).prop_map(|(kind, a, b, w)| match kind {
        0 => Op::AddEdge(a, b, w),
        1 => Op::DeleteEdge(a),
        _ => Op::ChangeWeight(a, w),
    })
}

fn arb_case(backend: BackendKind, drop_rate: f64) -> impl Strategy<Value = Case> {
    (
        5usize..18,
        proptest::collection::vec((0u32..20, 0u32..20, 1u32..6), 0..10),
        2usize..4,
        2usize..6,
        0u64..10_000,
        proptest::collection::vec(arb_edge_op(), 1..6),
    )
        .prop_map(move |(n, extra_edges, procs, k, seed, ops)| Case {
            n,
            extra_edges,
            procs,
            k,
            drop_rate,
            backend,
            crash: None,
            seed,
            ops,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn topk_sound_every_superstep_sim(case in arb_case(BackendKind::Sim, 0.0)) {
        check_case(case)?;
    }

    #[test]
    fn topk_sound_every_superstep_sim_lossy(case in arb_case(BackendKind::Sim, 0.2)) {
        check_case(case)?;
    }

    #[test]
    fn topk_sound_every_superstep_threads(case in arb_case(BackendKind::Threads, 0.2)) {
        check_case(case)?;
    }
}

/// The chaos matrix: drop {0, 0.2} × fault {none, crash} × backend
/// {sim, threads} over one edge-churn schedule with deletions (the
/// bound-widening path). Deterministic — a red cell names itself.
#[test]
fn topk_chaos_matrix() {
    let drops = [0.0, 0.2];
    let faults: [(&str, Option<(u64, usize)>); 2] = [("none", None), ("crash", Some((2, 1)))];
    let backends = [BackendKind::Sim, BackendKind::Threads];
    for (di, &drop_rate) in drops.iter().enumerate() {
        for &(fault_name, crash) in &faults {
            for &backend in &backends {
                let case = Case {
                    n: 14,
                    extra_edges: vec![(0, 7, 2), (3, 11, 1), (5, 13, 3)],
                    procs: 4,
                    k: 4,
                    drop_rate,
                    backend,
                    crash,
                    seed: 0xA ^ ((di as u64) << 8),
                    ops: vec![
                        Op::AddEdge(2, 9, 2),
                        Op::DeleteEdge(6),
                        Op::ChangeWeight(3, 4),
                        Op::DeleteEdge(1),
                    ],
                };
                if let Some(msg) = run_case(&case) {
                    let minimal = shrink(&case);
                    panic!(
                        "top-k chaos cell drop={drop_rate} fault={fault_name} \
                         backend={backend:?} failed ({msg}); minimal case: {minimal:?}"
                    );
                }
            }
        }
    }
}

/// Tiny deterministic generator (xorshift64*), as in the main harness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// `AA_DIFF_SEED`-pinned replay: four deterministic rounds alternating
/// backend and drop rate on a seed-derived edge-churn schedule.
#[test]
fn topk_seeded_replay() {
    let seed: u64 = std::env::var("AA_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAA);
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1));
    for round in 0..4u64 {
        let n = 6 + rng.below(10) as usize;
        let extra_edges: Vec<(u32, u32, u32)> = (0..rng.below(8))
            .map(|_| {
                (
                    rng.below(n as u64) as u32,
                    rng.below(n as u64) as u32,
                    1 + rng.below(5) as u32,
                )
            })
            .collect();
        let ops: Vec<Op> = (0..1 + rng.below(5))
            .map(|_| match rng.below(3) {
                0 => Op::AddEdge(
                    rng.below(64) as u32,
                    rng.below(64) as u32,
                    1 + rng.below(5) as u32,
                ),
                1 => Op::DeleteEdge(rng.below(64) as u32),
                _ => Op::ChangeWeight(rng.below(64) as u32, 1 + rng.below(5) as u32),
            })
            .collect();
        let case = Case {
            n,
            extra_edges,
            procs: 2 + (round % 2) as usize,
            k: 2 + rng.below(4) as usize,
            drop_rate: if round % 2 == 0 { 0.0 } else { 0.2 },
            backend: if round < 2 {
                BackendKind::Sim
            } else {
                BackendKind::Threads
            },
            crash: (round == 3).then_some((2, 1)),
            seed: seed ^ round,
            ops,
        };
        if let Some(msg) = run_case(&case) {
            let minimal = shrink(&case);
            panic!(
                "AA_DIFF_SEED={seed} top-k round {round} failed ({msg}); minimal case: {minimal:?}"
            );
        }
    }
}
