//! End-to-end integration tests: the full distributed pipeline against the
//! sequential oracle across graph families, processor counts, partitioners
//! and refinement strategies.

use aa_core::{AnytimeEngine, EngineConfig, PartitionerKind, Refinement};
use aa_graph::{algo, generators, Graph, VertexId, INF};
use aa_logp::LogPParams;
use aa_runtime::ExchangeMode;

fn assert_oracle(engine: &AnytimeEngine) {
    let dense = engine.distances_dense();
    let oracle = algo::apsp_dijkstra(engine.graph());
    for v in 0..engine.graph().capacity() {
        if engine.graph().is_alive(v as VertexId) {
            assert_eq!(dense[v], oracle[v], "row {v} differs from oracle");
        }
    }
}

fn run(graph: Graph, config: EngineConfig) -> AnytimeEngine {
    let mut engine = AnytimeEngine::new(graph, config);
    engine.initialize();
    let limit = 8 * engine.config().num_procs + 64;
    engine.run_to_convergence(limit);
    assert!(
        engine.is_converged(),
        "did not converge within {limit} steps"
    );
    engine
}

#[test]
fn every_graph_family_times_every_proc_count() {
    let families: Vec<(&str, Graph)> = vec![
        ("barabasi_albert", generators::barabasi_albert(120, 2, 3, 1)),
        ("erdos_renyi", generators::erdos_renyi_gnm(100, 300, 5, 2)),
        (
            "watts_strogatz",
            generators::watts_strogatz(100, 3, 0.2, 2, 3),
        ),
        (
            "planted_partition",
            generators::planted_partition(4, 25, 0.3, 0.02, 1, 4),
        ),
        ("path", generators::path(60)),
        ("star", generators::star(80)),
        ("grid", generators::grid(8, 10)),
    ];
    for (name, graph) in families {
        for procs in [1usize, 2, 5, 8] {
            let engine = run(
                graph.clone(),
                EngineConfig {
                    num_procs: procs,
                    ..Default::default()
                },
            );
            engine.check_invariants().unwrap();
            let dense = engine.distances_dense();
            let oracle = algo::apsp_dijkstra(engine.graph());
            assert_eq!(dense, oracle, "{name} with P={procs}");
        }
    }
}

#[test]
fn refinements_and_schedules_agree() {
    let graph = generators::barabasi_albert(100, 2, 2, 5);
    for refinement in [Refinement::WorklistRelax, Refinement::PivotPass] {
        for exchange in [ExchangeMode::Serialized, ExchangeMode::RoundBased] {
            let engine = run(
                graph.clone(),
                EngineConfig {
                    num_procs: 4,
                    refinement,
                    exchange,
                    ..Default::default()
                },
            );
            assert_oracle(&engine);
        }
    }
}

#[test]
fn all_ia_algorithms_converge_to_oracle() {
    use aa_core::IaAlgorithm;
    let graph = generators::erdos_renyi_gnm(90, 260, 7, 6);
    for ia in [
        IaAlgorithm::Dijkstra,
        IaAlgorithm::DeltaStepping { delta: 3 },
        IaAlgorithm::DeltaStepping { delta: 50 },
        IaAlgorithm::BellmanFord,
    ] {
        let mut engine = run(
            graph.clone(),
            EngineConfig {
                num_procs: 4,
                ia,
                ..Default::default()
            },
        );
        assert_oracle(&engine);
        // Dynamic updates also use the configured SSSP for reseeds.
        let (u, v, _) = engine.graph().edges().nth(5).unwrap();
        assert!(engine.delete_edge(u, v));
        engine.run_to_convergence(64);
        assert_oracle(&engine);
    }
}

#[test]
fn partitioner_choice_does_not_change_results() {
    let graph = generators::watts_strogatz(90, 3, 0.3, 4, 7);
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for partitioner in [
        PartitionerKind::RoundRobin,
        PartitionerKind::Hash,
        PartitionerKind::BfsGrow,
        PartitionerKind::Multilevel,
    ] {
        let engine = run(
            graph.clone(),
            EngineConfig {
                num_procs: 6,
                partitioner,
                ..Default::default()
            },
        );
        let dense = engine.distances_dense();
        match &reference {
            None => reference = Some(dense),
            Some(r) => assert_eq!(&dense, r, "{partitioner:?} disagrees"),
        }
    }
}

#[test]
fn logp_parameters_do_not_change_results_only_time() {
    let graph = generators::barabasi_albert(80, 2, 1, 9);
    let ethernet = run(
        graph.clone(),
        EngineConfig {
            num_procs: 4,
            logp: LogPParams::ethernet_1gbe(),
            ..Default::default()
        },
    );
    let infiniband = run(
        graph,
        EngineConfig {
            num_procs: 4,
            logp: LogPParams::infiniband(),
            ..Default::default()
        },
    );
    assert_eq!(ethernet.distances_dense(), infiniband.distances_dense());
    assert!(
        infiniband.makespan_us() < ethernet.makespan_us(),
        "a faster network must produce a smaller makespan"
    );
}

#[test]
fn results_are_deterministic_across_runs() {
    let mk = || {
        let graph = generators::barabasi_albert(100, 2, 3, 11);
        let mut e = AnytimeEngine::new(
            graph,
            EngineConfig {
                num_procs: 5,
                seed: 77,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(64);
        e
    };
    let (mut a, mut b) = (mk(), mk());
    assert_eq!(a.distances_dense(), b.distances_dense());
    assert_eq!(a.partition().assignment, b.partition().assignment);
    assert_eq!(a.snapshot().closeness, b.snapshot().closeness);
}

#[test]
fn anytime_snapshots_improve_monotonically() {
    // Distance estimates never increase, so the sum of finite distances per
    // vertex is non-increasing and the reachable set only grows.
    let graph = generators::erdos_renyi_gnm(90, 200, 3, 13);
    let mut engine = AnytimeEngine::new(
        graph,
        EngineConfig {
            num_procs: 6,
            ..Default::default()
        },
    );
    engine.initialize();
    let mut prev = engine.distances_dense();
    for _ in 0..64 {
        let done = engine.rc_step();
        let cur = engine.distances_dense();
        for (rp, rc) in prev.iter().zip(&cur) {
            for (&a, &b) in rp.iter().zip(rc) {
                assert!(b <= a, "estimate increased {a} -> {b}");
            }
        }
        prev = cur;
        if done {
            break;
        }
    }
    assert!(engine.is_converged());
}

#[test]
fn disconnected_components_stay_disconnected() {
    let mut graph = generators::barabasi_albert(40, 2, 1, 15);
    let island = generators::complete(10);
    // Append the island as vertices 40..50.
    let offset = graph.capacity() as VertexId;
    for _ in 0..10 {
        graph.add_vertex();
    }
    for (u, v, w) in island.edges() {
        graph.add_edge(u + offset, v + offset, w);
    }
    let engine = run(
        graph,
        EngineConfig {
            num_procs: 4,
            ..Default::default()
        },
    );
    assert_oracle(&engine);
    let dense = engine.distances_dense();
    assert_eq!(dense[0][offset as usize], INF);
    assert_eq!(dense[offset as usize][0], INF);
    assert_eq!(dense[offset as usize][offset as usize + 1], 1);
}

#[test]
fn closeness_ranking_matches_oracle_ranking() {
    let graph = generators::barabasi_albert(150, 3, 1, 17);
    let exact = algo::exact_closeness(&graph);
    let mut engine = run(
        graph,
        EngineConfig {
            num_procs: 8,
            ..Default::default()
        },
    );
    let snapshot = engine.snapshot();
    let mut exact_ranked: Vec<usize> = (0..exact.len()).collect();
    exact_ranked.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap().then(a.cmp(&b)));
    let ours: Vec<u32> = snapshot.top_k(10).into_iter().map(|(v, _)| v).collect();
    let want: Vec<u32> = exact_ranked[..10].iter().map(|&v| v as u32).collect();
    assert_eq!(ours, want);
}
