//! The anytime progress probe's sample type and its replayable JSONL
//! encoding, plus the Kendall tau-b rank correlation it reports.
//!
//! One [`ProgressSample`] is taken per RC step (when the probe is enabled)
//! and captures how far the engine's monotone distance overestimates are
//! from the exact oracle at that instant — the raw material for the paper's
//! quality-vs-time curves. Samples serialize one-per-line so a run's
//! `progress.jsonl` can be replayed by the bench harness without rerunning
//! the engine.

use crate::json::{fmt_f64, num_field, parse_flat_object, uint_field};
use std::fmt::Write as _;

/// One probe sample: the engine's anytime quality at the end of an RC step.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSample {
    /// RC step the sample was taken after (0 = after initial approximation).
    pub rc_step: u64,
    /// LogP-modeled virtual clock at the sample (microseconds). Excluded
    /// from golden comparisons: measured compute makes it nondeterministic.
    pub makespan_us: f64,
    /// Max over finite pairs of `estimate - exact` (0 when converged).
    pub max_overestimate: f64,
    /// Mean over finite pairs of `estimate - exact`.
    pub mean_overestimate: f64,
    /// Kendall tau-b between estimated and exact closeness rankings.
    pub kendall_tau: f64,
    /// Fraction of live-owned rows exactly equal to the oracle rows.
    pub converged_row_fraction: f64,
    /// Pairs the estimate still thinks are unreachable but the oracle does
    /// not (plus the reverse); nonzero means coverage gaps, not just error.
    pub unreached_pairs: u64,
    /// Rows sent but not yet acknowledged (in flight across the cluster).
    pub outstanding_rows: u64,
    /// Rows marked dirty (scheduled for the next exchange).
    pub dirty_rows: u64,
    /// Entries whose estimate *increased* since the previous sample. Must be
    /// zero in fault-free runs (anytime monotonicity); recovery restores may
    /// legitimately regress.
    pub estimate_regressions: u64,
    /// Ranks currently marked down.
    pub down_ranks: u64,
    /// True while a recovery happened at or since the previous sample —
    /// monotonicity assertions are suspended for these samples.
    pub recovering: bool,
}

impl ProgressSample {
    /// Encodes the sample as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"rc_step\": {}", self.rc_step);
        let _ = write!(out, ", \"makespan_us\": {}", fmt_f64(self.makespan_us));
        let _ = write!(
            out,
            ", \"max_overestimate\": {}",
            fmt_f64(self.max_overestimate)
        );
        let _ = write!(
            out,
            ", \"mean_overestimate\": {}",
            fmt_f64(self.mean_overestimate)
        );
        let _ = write!(out, ", \"kendall_tau\": {}", fmt_f64(self.kendall_tau));
        let _ = write!(
            out,
            ", \"converged_row_fraction\": {}",
            fmt_f64(self.converged_row_fraction)
        );
        let _ = write!(out, ", \"unreached_pairs\": {}", self.unreached_pairs);
        let _ = write!(out, ", \"outstanding_rows\": {}", self.outstanding_rows);
        let _ = write!(out, ", \"dirty_rows\": {}", self.dirty_rows);
        let _ = write!(
            out,
            ", \"estimate_regressions\": {}",
            self.estimate_regressions
        );
        let _ = write!(out, ", \"down_ranks\": {}", self.down_ranks);
        let _ = write!(out, ", \"recovering\": {}", self.recovering);
        out.push('}');
        out
    }

    /// Decodes a sample from one JSON line.
    pub fn from_json_line(line: &str) -> Result<ProgressSample, String> {
        let pairs = parse_flat_object(line)?;
        Ok(ProgressSample {
            rc_step: uint_field(&pairs, "rc_step")?,
            makespan_us: num_field(&pairs, "makespan_us")?,
            max_overestimate: num_field(&pairs, "max_overestimate")?,
            mean_overestimate: num_field(&pairs, "mean_overestimate")?,
            kendall_tau: num_field(&pairs, "kendall_tau")?,
            converged_row_fraction: num_field(&pairs, "converged_row_fraction")?,
            unreached_pairs: uint_field(&pairs, "unreached_pairs")?,
            outstanding_rows: uint_field(&pairs, "outstanding_rows")?,
            dirty_rows: uint_field(&pairs, "dirty_rows")?,
            estimate_regressions: uint_field(&pairs, "estimate_regressions")?,
            down_ranks: uint_field(&pairs, "down_ranks")?,
            recovering: crate::json::field(&pairs, "recovering")
                .and_then(crate::json::Scalar::as_bool)
                .ok_or_else(|| "missing or non-bool field \"recovering\"".to_string())?,
        })
    }
}

/// Encodes a timeline as JSONL (one sample per line, trailing newline).
pub fn encode_jsonl(samples: &[ProgressSample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&s.to_json_line());
        out.push('\n');
    }
    out
}

/// Decodes a JSONL timeline; blank lines are skipped.
pub fn decode_jsonl(text: &str) -> Result<Vec<ProgressSample>, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let s = ProgressSample::from_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        samples.push(s);
    }
    Ok(samples)
}

/// Kendall tau-b rank correlation between two equal-length samples.
///
/// Tau-b corrects for ties on either side; when one side is entirely tied
/// (zero denominator — e.g. both rankings are constant) the rankings carry
/// no ordering information to disagree on, and the probe reports `1.0`
/// (perfect agreement) so a fully-converged trivial graph doesn't read as
/// uncorrelated.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i].total_cmp(&xs[j]);
            let dy = ys[i].total_cmp(&ys[j]);
            match (dx, dy) {
                (std::cmp::Ordering::Equal, std::cmp::Ordering::Equal) => {}
                (std::cmp::Ordering::Equal, _) => ties_x += 1,
                (_, std::cmp::Ordering::Equal) => ties_y += 1,
                (a, b) if a == b => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = concordant + discordant;
    let denom = (((n0 + ties_x) as f64) * ((n0 + ties_y) as f64)).sqrt();
    if denom <= 0.0 {
        return 1.0;
    }
    (concordant - discordant) as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u64) -> ProgressSample {
        ProgressSample {
            rc_step: step,
            makespan_us: 1234.5 * step as f64,
            max_overestimate: 3.0 / (step + 1) as f64,
            mean_overestimate: 1.0 / (step + 1) as f64,
            kendall_tau: 0.5,
            converged_row_fraction: 0.25 * step as f64,
            unreached_pairs: 2,
            outstanding_rows: 5,
            dirty_rows: 3,
            estimate_regressions: 0,
            down_ranks: 0,
            recovering: false,
        }
    }

    #[test]
    fn sample_round_trips_through_json() {
        let s = sample(3);
        assert_eq!(
            ProgressSample::from_json_line(&s.to_json_line()).unwrap(),
            s
        );
    }

    #[test]
    fn timeline_round_trips() {
        let timeline: Vec<ProgressSample> = (0..4).map(sample).collect();
        let text = encode_jsonl(&timeline);
        assert_eq!(decode_jsonl(&text).unwrap(), timeline);
        assert_eq!(decode_jsonl("").unwrap(), vec![]);
    }

    #[test]
    fn decode_reports_line_numbers() {
        let err = decode_jsonl("{\"rc_step\": 1}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn tau_perfect_agreement_and_reversal() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys_rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&xs, &xs), 1.0);
        assert_eq!(kendall_tau(&xs, &ys_rev), -1.0);
    }

    #[test]
    fn tau_handles_ties_and_degenerate_input() {
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0);
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[3.0, 2.0, 1.0]), 1.0);
        let t = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(t > 0.0 && t < 1.0, "partial ties give partial tau, got {t}");
    }

    #[test]
    fn tau_is_symmetric_under_swap() {
        let xs = [0.3, 0.9, 0.1, 0.4];
        let ys = [0.2, 0.8, 0.4, 0.1];
        assert_eq!(kendall_tau(&xs, &ys), kendall_tau(&ys, &xs));
    }
}
