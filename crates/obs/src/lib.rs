#![forbid(unsafe_code)]
//! Dependency-free observability for the anytime-anywhere engine.
//!
//! Three pieces, all deterministic and allocation-light:
//!
//! * [`registry`] — a typed metrics registry: monotone counters, gauges and
//!   fixed-bucket histograms, each addressed by a name plus a sorted label
//!   set. Exports as a human table, machine JSON and Prometheus-style text,
//!   all with stable ordering so outputs can be golden-file tested.
//! * [`trace`] — span-style phase tracing: one [`trace::SpanRecord`] per
//!   engine activity (domain decomposition, initial approximation, each
//!   recombination step, dynamic updates, recoveries, snapshots) carrying
//!   the LogP-modeled makespan delta alongside the measured compute charged
//!   during the span, plus the ledger's byte/message/drop/heartbeat deltas.
//! * [`progress`] — the anytime progress probe's sample type: per-step
//!   distance-overestimate statistics, closeness Kendall tau against an
//!   exact oracle, converged-row fraction and in-flight row counts, with a
//!   replayable JSONL encoding (`progress.jsonl`).
//!
//! The crate knows nothing about graphs or engines: the `aa-core` side
//! computes the numbers and feeds them in. That keeps this layer reusable by
//! the CLI and the benchmark harness without dependency cycles, and keeps it
//! trivially deterministic — with one audited exception: [`stopwatch`],
//! the workspace's single sanctioned wall-clock boundary (see its docs for
//! the observability-only contract).

pub mod json;
pub mod progress;
pub mod registry;
pub mod stopwatch;
pub mod trace;

pub use progress::{decode_jsonl, encode_jsonl, kendall_tau, ProgressSample};
pub use registry::{HistogramData, MetricKey, MetricValue, MetricsRegistry};
pub use stopwatch::Stopwatch;
pub use trace::{SpanLog, SpanRecord};
