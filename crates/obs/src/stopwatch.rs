//! The one sanctioned wall-clock boundary in the workspace.
//!
//! The deterministic core (aa-core / aa-runtime / aa-durable) may not touch
//! `Instant` directly: sim-as-oracle differential testing replays the same
//! seeded run twice and diffs every byte of state, so any clock read that
//! leaks into control flow or stored state breaks the oracle. Measured
//! compute still has to be *charged* somewhere, though — the LogP ledger
//! records how long each phase really took. [`Stopwatch`] is that boundary:
//! it reads the clock, hands back an opaque `Duration`, and its contract
//! (enforced by review, vouched for by the `allow(AA08)` pragmas below) is
//! that the value flows only into observability sinks — span logs, the
//! measured-compute ledger, progress samples — never into branches, seeds,
//! or recombination state.
//!
//! Call sites read exactly like the `Instant` idiom they replace:
//!
//! ```
//! let t = aa_obs::Stopwatch::start();
//! // ... work ...
//! let took = t.elapsed();
//! ```

use std::time::{Duration, Instant};

/// A started wall-clock timer. See the module docs for the contract.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    // aa-lint: allow(AA08, observability boundary — the clock value is charged to the LogP ledger and span logs only and never feeds control flow or replayable state)
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall time since [`Stopwatch::start`].
    // aa-lint: allow(AA08, observability boundary — same contract as start)
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}
