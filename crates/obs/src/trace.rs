//! Span-style phase tracing.
//!
//! A [`SpanRecord`] covers one engine activity — domain decomposition,
//! initial approximation, a single recombination step, a dynamic-update
//! batch, a recovery-ladder invocation, or a snapshot — and carries both the
//! LogP-*modeled* cost (the virtual-clock makespan delta across the span)
//! and the *measured* compute charged inside it, plus the ledger's
//! byte/message/drop/duplicate/heartbeat deltas. This subsumes the
//! event-level `SimCluster::TraceEvent` stream: events say what each rank
//! did, spans say what each engine phase cost.

use crate::json::{escape, fmt_f64, num_field, parse_flat_object, uint_field};
use std::fmt::Write as _;

/// One traced span. All costs are deltas over the span, not totals.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span kind, e.g. `domain-decomposition`, `recombination`, `recovery`.
    pub name: String,
    /// Free-form detail, e.g. the recovery method or update description.
    pub detail: String,
    /// Engine RC step counter when the span closed.
    pub rc_step: u64,
    /// Virtual-clock makespan at span start (LogP-modeled, microseconds).
    pub start_us: f64,
    /// Virtual-clock makespan at span end.
    pub end_us: f64,
    /// Measured compute charged during the span (ledger `compute_us` delta).
    pub compute_us: f64,
    /// Payload bytes moved during the span.
    pub bytes: u64,
    /// Messages sent during the span.
    pub messages: u64,
    /// Messages lost to injected faults during the span.
    pub dropped_messages: u64,
    /// Duplicate deliveries during the span.
    pub dup_messages: u64,
    /// Heartbeat messages during the span.
    pub heartbeat_messages: u64,
}

impl SpanRecord {
    /// The LogP-modeled duration of the span (virtual microseconds).
    pub fn modeled_us(&self) -> f64 {
        (self.end_us - self.start_us).max(0.0)
    }

    /// Encodes the span as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"span\": \"{}\"", escape(&self.name));
        let _ = write!(out, ", \"detail\": \"{}\"", escape(&self.detail));
        let _ = write!(out, ", \"rc_step\": {}", self.rc_step);
        let _ = write!(out, ", \"start_us\": {}", fmt_f64(self.start_us));
        let _ = write!(out, ", \"end_us\": {}", fmt_f64(self.end_us));
        let _ = write!(out, ", \"compute_us\": {}", fmt_f64(self.compute_us));
        let _ = write!(out, ", \"bytes\": {}", self.bytes);
        let _ = write!(out, ", \"messages\": {}", self.messages);
        let _ = write!(out, ", \"dropped_messages\": {}", self.dropped_messages);
        let _ = write!(out, ", \"dup_messages\": {}", self.dup_messages);
        let _ = write!(out, ", \"heartbeat_messages\": {}", self.heartbeat_messages);
        out.push('}');
        out
    }

    /// Decodes a span from one JSON line.
    pub fn from_json_line(line: &str) -> Result<SpanRecord, String> {
        let pairs = parse_flat_object(line)?;
        let text = |key: &str| -> Result<String, String> {
            match crate::json::field(&pairs, key) {
                Some(crate::json::Scalar::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing or non-string field {key:?}")),
            }
        };
        Ok(SpanRecord {
            name: text("span")?,
            detail: text("detail")?,
            rc_step: uint_field(&pairs, "rc_step")?,
            start_us: num_field(&pairs, "start_us")?,
            end_us: num_field(&pairs, "end_us")?,
            compute_us: num_field(&pairs, "compute_us")?,
            bytes: uint_field(&pairs, "bytes")?,
            messages: uint_field(&pairs, "messages")?,
            dropped_messages: uint_field(&pairs, "dropped_messages")?,
            dup_messages: uint_field(&pairs, "dup_messages")?,
            heartbeat_messages: uint_field(&pairs, "heartbeat_messages")?,
        })
    }
}

/// An append-only log of spans in completion order.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    spans: Vec<SpanRecord>,
}

impl SpanLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a completed span.
    pub fn push(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }

    /// Iterates spans in completion order.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Encodes the whole log as JSONL (one span per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&span.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Decodes a JSONL log; blank lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<SpanLog, String> {
        let mut log = SpanLog::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let span =
                SpanRecord::from_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            log.push(span);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> SpanRecord {
        SpanRecord {
            name: "recombination".to_string(),
            detail: "step".to_string(),
            rc_step: 7,
            start_us: 100.5,
            end_us: 250.25,
            compute_us: 42.0,
            bytes: 1024,
            messages: 12,
            dropped_messages: 1,
            dup_messages: 0,
            heartbeat_messages: 4,
        }
    }

    #[test]
    fn modeled_duration_is_clamped_nonnegative() {
        assert_eq!(span().modeled_us(), 149.75);
        let mut s = span();
        s.end_us = 0.0;
        assert_eq!(s.modeled_us(), 0.0);
    }

    #[test]
    fn span_round_trips_through_json() {
        let s = span();
        let line = s.to_json_line();
        assert_eq!(SpanRecord::from_json_line(&line).unwrap(), s);
    }

    #[test]
    fn log_round_trips_and_skips_blanks() {
        let mut log = SpanLog::new();
        log.push(span());
        let mut other = span();
        other.name = "recovery".to_string();
        other.detail = "checkpoint-restore rank=1".to_string();
        log.push(other);
        let text = format!("\n{}\n", log.to_jsonl());
        let decoded = SpanLog::from_jsonl(&text).unwrap();
        assert_eq!(decoded.len(), 2);
        assert!(decoded.iter().zip(log.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn bad_line_reports_line_number() {
        let err = SpanLog::from_jsonl("{\"span\": \"x\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
