//! Typed metrics registry: counters, gauges and fixed-bucket histograms with
//! labels, exported as a human table, machine JSON and Prometheus-style text.
//!
//! All storage is `BTreeMap`-backed so every export walks metrics in a fixed
//! (name, labels) order — outputs are byte-stable and golden-file testable.
//! Nothing in here reads a clock or an RNG; values only change when a caller
//! records them.

use crate::json::{escape, fmt_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A metric identity: a name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `aa_phase_bytes_total`.
    pub name: String,
    /// Label pairs, kept sorted by label name for stable ordering.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels by name.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",...}` (or just `name` when label-free).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

/// Cumulative histogram state over fixed bucket bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramData {
    /// Upper bounds of the finite buckets, ascending. An implicit `+Inf`
    /// bucket follows the last bound.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`,
    /// the final slot being the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramData {
    fn new(bounds: Vec<f64>) -> Self {
        let counts = vec![0; bounds.len() + 1];
        HistogramData {
            bounds,
            counts,
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }
}

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(HistogramData),
}

/// The registry. Cheap to create; every engine run gets a fresh one.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    help: BTreeMap<String, String>,
    hist_bounds: BTreeMap<String, Vec<f64>>,
    metrics: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches help text to a metric name (shown in table and Prometheus
    /// exports).
    pub fn set_help(&mut self, name: &str, help: &str) {
        self.help.insert(name.to_string(), help.to_string());
    }

    /// Increments a counter, creating it at zero first if absent. A key
    /// already holding a non-counter value is left untouched (type
    /// mismatches are a programming error but must not panic in lib code).
    pub fn inc_counter(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        let key = MetricKey::new(name, labels);
        if let MetricValue::Counter(c) = self.metrics.entry(key).or_insert(MetricValue::Counter(0))
        {
            *c = c.saturating_add(by);
        }
    }

    /// Sets a gauge to `v`. Same mismatch policy as [`Self::inc_counter`].
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = MetricKey::new(name, labels);
        if let MetricValue::Gauge(g) = self.metrics.entry(key).or_insert(MetricValue::Gauge(0.0)) {
            *g = v;
        }
    }

    /// Declares bucket bounds for a histogram name. Must be called before the
    /// first [`Self::observe`] for that name; bounds are sorted ascending.
    pub fn declare_histogram(&mut self, name: &str, bounds: &[f64]) {
        let mut bounds = bounds.to_vec();
        bounds.sort_by(f64::total_cmp);
        self.hist_bounds.insert(name.to_string(), bounds);
    }

    /// Records one observation into a declared histogram. Observations on an
    /// undeclared name are dropped (again: no panics in lib code).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let Some(bounds) = self.hist_bounds.get(name).cloned() else {
            return;
        };
        let key = MetricKey::new(name, labels);
        if let MetricValue::Histogram(h) = self
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(HistogramData::new(bounds)))
        {
            h.observe(v);
        }
    }

    /// Looks up a metric value (tests and the table renderer use this).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics.get(&MetricKey::new(name, labels))
    }

    /// Convenience: counter value, zero if absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Convenience: gauge value, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Iterates all metrics in stable (name, labels) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.metrics.iter()
    }

    /// Number of recorded series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no series.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other side's value, histograms merge bucket-wise when bounds match
    /// (and are replaced otherwise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, help) in &other.help {
            self.help
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
        for (name, bounds) in &other.hist_bounds {
            self.hist_bounds
                .entry(name.clone())
                .or_insert_with(|| bounds.clone());
        }
        for (key, value) in &other.metrics {
            match (self.metrics.get_mut(key), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                    *a = a.saturating_add(*b)
                }
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = *b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b))
                    if a.bounds == b.bounds =>
                {
                    for (ca, cb) in a.counts.iter_mut().zip(&b.counts) {
                        *ca += cb;
                    }
                    a.sum += b.sum;
                    a.count += b.count;
                }
                _ => {
                    self.metrics.insert(key.clone(), value.clone());
                }
            }
        }
    }

    /// Machine JSON: an object mapping each rendered series name to either a
    /// scalar (counters/gauges) or a `{buckets, sum, count}` object
    /// (histograms). Key order is the registry's stable order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (key, value) in &self.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(out, "  \"{}\": ", escape(&key.render()));
            match value {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => out.push_str(&fmt_f64(*g)),
                MetricValue::Histogram(h) => {
                    out.push_str("{\"buckets\": [");
                    for (i, (bound, count)) in h.bounds.iter().zip(&h.counts).enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{}, {count}]", fmt_f64(*bound));
                    }
                    if !h.bounds.is_empty() {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "[\"+Inf\", {}]], \"sum\": {}, \"count\": {}}}",
                        h.counts.last().copied().unwrap_or(0),
                        fmt_f64(h.sum),
                        h.count
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` headers per
    /// metric name, then one sample line per series; histograms expand to
    /// `_bucket{le=...}` / `_sum` / `_count` lines.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for (key, value) in &self.metrics {
            if key.name != last_name {
                if let Some(help) = self.help.get(&key.name) {
                    let _ = writeln!(out, "# HELP {} {}", key.name, help);
                }
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", key.name, kind);
                last_name = &key.name;
            }
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{} {}", key.render(), c);
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", key.render(), fmt_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{} {}",
                            bucket_series(key, &fmt_f64(*bound)),
                            cumulative
                        );
                    }
                    let _ = writeln!(out, "{} {}", bucket_series(key, "+Inf"), h.count);
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        label_block(key),
                        fmt_f64(h.sum)
                    );
                    let _ = writeln!(out, "{}_count{} {}", key.name, label_block(key), h.count);
                }
            }
        }
        out
    }

    /// Human-readable table: one row per series, aligned columns.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (key, value) in &self.metrics {
            let rendered = match value {
                MetricValue::Counter(c) => c.to_string(),
                MetricValue::Gauge(g) => fmt_f64(*g),
                MetricValue::Histogram(h) => {
                    let mean = if h.count > 0 {
                        h.sum / h.count as f64
                    } else {
                        0.0
                    };
                    format!(
                        "count={} sum={} mean={}",
                        h.count,
                        fmt_f64(h.sum),
                        fmt_f64(mean)
                    )
                }
            };
            rows.push((key.render(), rendered));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            let _ = writeln!(out, "{k:width$}  {v}");
        }
        out
    }
}

fn label_block(key: &MetricKey) -> String {
    if key.labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn bucket_series(key: &MetricKey, le: &str) -> String {
    let mut labels: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    labels.push(format!("le=\"{le}\""));
    format!("{}_bucket{{{}}}", key.name, labels.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set_help("aa_rc_steps_total", "Recombination steps executed");
        r.inc_counter("aa_rc_steps_total", &[], 3);
        r.inc_counter("aa_phase_bytes_total", &[("phase", "recombination")], 100);
        r.inc_counter(
            "aa_phase_bytes_total",
            &[("phase", "domain-decomposition")],
            40,
        );
        r.set_gauge("aa_outstanding_rows", &[], 2.0);
        r.declare_histogram("aa_rc_step_bytes", &[10.0, 100.0]);
        r.observe("aa_rc_step_bytes", &[], 5.0);
        r.observe("aa_rc_step_bytes", &[], 50.0);
        r.observe("aa_rc_step_bytes", &[], 500.0);
        r
    }

    #[test]
    fn counters_accumulate_and_labels_sort() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("c", &[("b", "2"), ("a", "1")], 1);
        r.inc_counter("c", &[("a", "1"), ("b", "2")], 2);
        assert_eq!(r.counter_value("c", &[("b", "2"), ("a", "1")]), 3);
        let key = MetricKey::new("c", &[("b", "2"), ("a", "1")]);
        assert_eq!(key.render(), "c{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn histogram_buckets_fill_correctly() {
        let r = sample();
        let Some(MetricValue::Histogram(h)) = r.get("aa_rc_step_bytes", &[]) else {
            panic!("histogram missing");
        };
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 555.0);
    }

    #[test]
    fn observe_without_declare_is_dropped() {
        let mut r = MetricsRegistry::new();
        r.observe("missing", &[], 1.0);
        assert!(r.is_empty());
    }

    #[test]
    fn type_mismatch_does_not_clobber() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("m", &[], 5);
        r.set_gauge("m", &[], 9.0);
        assert_eq!(r.counter_value("m", &[]), 5);
    }

    #[test]
    fn json_is_stable_and_ordered() {
        let r = sample();
        let json = r.to_json();
        let bytes_dd = json.find("domain-decomposition").unwrap();
        let bytes_rc = json.find("recombination").unwrap();
        assert!(bytes_dd < bytes_rc, "label values must sort");
        assert_eq!(json, r.clone().to_json(), "export must be deterministic");
        assert!(json.contains("\"aa_outstanding_rows\": 2"));
        assert!(json.contains("[\"+Inf\", 1]"));
    }

    #[test]
    fn prometheus_text_has_headers_and_cumulative_buckets() {
        let text = sample().to_prometheus_text();
        assert!(text.contains("# HELP aa_rc_steps_total Recombination steps executed"));
        assert!(text.contains("# TYPE aa_phase_bytes_total counter"));
        assert!(text.contains("aa_phase_bytes_total{phase=\"recombination\"} 100"));
        assert!(text.contains("aa_rc_step_bytes_bucket{le=\"10\"} 1"));
        assert!(text.contains("aa_rc_step_bytes_bucket{le=\"100\"} 2"));
        assert!(text.contains("aa_rc_step_bytes_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("aa_rc_step_bytes_sum 555"));
        assert!(text.contains("aa_rc_step_bytes_count 3"));
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter_value("aa_rc_steps_total", &[]), 6);
        let Some(MetricValue::Histogram(h)) = a.get("aa_rc_step_bytes", &[]) else {
            panic!("histogram missing");
        };
        assert_eq!(h.counts, vec![2, 2, 2]);
        assert_eq!(a.gauge_value("aa_outstanding_rows", &[]), Some(2.0));
    }

    #[test]
    fn table_renders_every_series() {
        let table = sample().render_table();
        assert_eq!(table.lines().count(), sample().len());
        assert!(table.contains("aa_rc_step_bytes"));
        assert!(table.contains("count=3 sum=555 mean=185"));
    }
}
