//! Minimal JSON helpers: escaping, number formatting, and a parser for the
//! flat (non-nested) objects this crate emits.
//!
//! Hand-rolled because the workspace is offline and dependency-free; the
//! subset is exactly what the metrics/trace/progress serializers need —
//! objects whose values are strings, finite numbers, booleans or null.

use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no representation for
/// non-finite values; they are clamped to `0` (the serializers never produce
/// them, this is a guard, not a feature).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A scalar value in a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl Scalar {
    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `u64`, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // aa-lint: allow(AA03, fract()==0.0 tests exact integrality of a parsed JSON number, not an estimate)
            Scalar::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"key": value, ...}` with scalar values)
/// into its `(key, value)` pairs in source order. Nested objects/arrays are
/// rejected — the crate's own serializers never emit them inside a line.
pub fn parse_flat_object(s: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut p = Parser {
        chars: s.char_indices().peekable(),
        src: s,
    };
    p.skip_ws();
    p.expect_char('{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.eat('}') {
        p.skip_ws();
        return p.finish(pairs);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect_char(':')?;
        p.skip_ws();
        let value = p.parse_scalar()?;
        pairs.push((key, value));
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect_char('}')?;
        p.skip_ws();
        return p.finish(pairs);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of input")),
        }
    }

    fn finish(&mut self, pairs: Vec<(String, Scalar)>) -> Result<Vec<(String, Scalar)>, String> {
        match self.chars.next() {
            None => Ok(pairs),
            Some((i, c)) => Err(format!("trailing {c:?} at byte {i}")),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{0008}'),
                    Some((_, 'f')) => out.push('\u{000c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (i, c) = self
                                .chars
                                .next()
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let digit = c
                                .to_digit(16)
                                .ok_or_else(|| format!("bad \\u digit {c:?} at byte {i}"))?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((i, c)) => return Err(format!("bad escape \\{c} at byte {i}")),
                    None => return Err("truncated escape".to_string()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Scalar, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(Scalar::Str(self.parse_string()?)),
            Some((_, 't')) => self.parse_keyword("true", Scalar::Bool(true)),
            Some((_, 'f')) => self.parse_keyword("false", Scalar::Bool(false)),
            Some((_, 'n')) => self.parse_keyword("null", Scalar::Null),
            Some((start, c)) if *c == '-' || c.is_ascii_digit() => {
                let start = *start;
                let mut end = start;
                while let Some((i, c)) = self.chars.peek() {
                    if matches!(c, '-' | '+' | '.' | 'e' | 'E') || c.is_ascii_digit() {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                let text = &self.src[start..end];
                text.parse::<f64>()
                    .map(Scalar::Num)
                    .map_err(|_| format!("bad number {text:?}"))
            }
            Some((i, c)) => Err(format!(
                "unexpected {c:?} at byte {i} (nested values are not supported)"
            )),
            None => Err("expected a value, found end of input".to_string()),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Scalar) -> Result<Scalar, String> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("malformed keyword (expected {word:?})")),
            }
        }
        Ok(value)
    }
}

/// Looks up `key` in parsed pairs.
pub fn field<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Numeric field lookup with a descriptive error.
pub fn num_field(pairs: &[(String, Scalar)], key: &str) -> Result<f64, String> {
    field(pairs, key)
        .and_then(Scalar::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// Integer field lookup with a descriptive error.
pub fn uint_field(pairs: &[(String, Scalar)], key: &str) -> Result<u64, String> {
    field(pairs, key)
        .and_then(Scalar::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn fmt_f64_round_trips_and_guards_nonfinite() {
        for v in [0.0, 1.5, -2.25, 1e-9, 12345678.0] {
            assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }

    #[test]
    fn parse_flat_object_handles_all_scalars() {
        let pairs = parse_flat_object(
            r#"{"a": 1.5, "b": "x\ny", "c": true, "d": null, "e": -3, "f": 1e3}"#,
        )
        .unwrap();
        assert_eq!(num_field(&pairs, "a").unwrap(), 1.5);
        assert_eq!(field(&pairs, "b"), Some(&Scalar::Str("x\ny".into())));
        assert_eq!(field(&pairs, "c").unwrap().as_bool(), Some(true));
        assert_eq!(field(&pairs, "d"), Some(&Scalar::Null));
        assert_eq!(num_field(&pairs, "e").unwrap(), -3.0);
        assert_eq!(uint_field(&pairs, "f").unwrap(), 1000);
    }

    #[test]
    fn parse_rejects_nesting_and_garbage() {
        assert!(parse_flat_object(r#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a": [1]}"#).is_err());
        assert!(parse_flat_object(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_flat_object(r#"{"a" 1}"#).is_err());
        assert!(parse_flat_object(r#"{"a": 1"#).is_err());
        assert!(parse_flat_object("").is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_flat_object("  {}  ").unwrap(), vec![]);
    }

    #[test]
    fn unicode_escapes_decode() {
        let pairs = parse_flat_object(r#"{"k": "Aé"}"#).unwrap();
        assert_eq!(field(&pairs, "k"), Some(&Scalar::Str("Aé".into())));
    }
}
