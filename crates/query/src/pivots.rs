//! Structural closeness bounds from pivot (landmark) Dijkstras.
//!
//! A handful of exact single-source shortest-path trees buy two things the
//! anytime estimates alone cannot provide:
//!
//! * **Upper bounds.** For a pivot `p` the triangle inequality gives
//!   `d(v, t) ≥ |d(p, v) − d(p, t)|`, and any two distinct vertices are at
//!   least one minimum edge weight apart. Summing the per-target maximum of
//!   those two floors over `v`'s component lower-bounds `Σ_t d(v, t)`, hence
//!   upper-bounds `C(v) = 1/Σ_t d(v, t)`. The sum over all targets is
//!   computed for *every* vertex of the pivot's component in `O(n log n)`
//!   per pivot by sorting the pivot's distance row and splitting prefix sums
//!   at each query value.
//! * **Exact anchors.** A pivot's own distance row is exact, so its
//!   closeness is exact from step zero. Seeding pivots with the highest-
//!   degree vertices means the likely top-k members carry exact scores long
//!   before the engine converges, which is what lifts the k-th lower bound
//!   high enough to prune early.
//! * **Exploration floors.** Triangle floors saturate once every vertex is
//!   within the pivot k-center radius of some pivot — on small-world graphs
//!   that leaves most of the periphery unprunable. A bounded Dijkstra per
//!   vertex fixes this: settle the nearest [`BALL_CAP`] targets at their
//!   exact distances, and since Dijkstra settles in nondecreasing order,
//!   every unsettled component member is at least as far as the last
//!   settled target. The floor `Σ_settled d + (reach − settled) · d_last`
//!   tracks neighbourhood expansion — precisely the quantity that separates
//!   peripheral vertices from the top-k in graphs where absolute distances
//!   barely spread. `ub_sum` keeps the larger of the two floors per vertex.
//!
//! Component membership also falls out exactly: a pivot reaches precisely
//! its component, pinning the reachable-target count every lower bound needs.
//!
//! Bounds here are *per generation* — valid for one `(invalidation epoch,
//! state version)` of the graph — and are rebuilt from scratch when the
//! tracker observes a frame from a new generation. Everything is integer
//! arithmetic on distance sums; floats only appear when a caller converts a
//! sum to a closeness score.

use aa_graph::{algo, Graph, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Settled-target budget of the per-vertex exploration floor: this many
/// nearest targets are settled at their exact distance, every farther
/// component member is charged the last settled distance. Components at or
/// below the budget get their exact distance sums as floors.
pub const BALL_CAP: usize = 256;

/// Per-generation structural bound state: component geometry, pivot rows
/// collapsed into per-vertex distance-sum lower bounds, and exact sums for
/// the pivots themselves.
#[derive(Debug, Clone)]
pub struct StructuralBounds {
    /// Invalidation epoch of the graph these bounds were built from.
    pub epoch: u64,
    /// Mutation/recovery state version of that graph.
    pub state_version: u64,
    /// Maximum edge weight in the graph (≥ 1), for the per-component
    /// distance ceiling `(|comp| − 1) · w_max`.
    pub w_max: u64,
    /// Size of the vertex's connected component, per id slot (0 for dead
    /// slots). A slot with `comp_size < 2` has exactly zero closeness.
    pub comp_size: Vec<u64>,
    /// Lower bound on the vertex's final distance sum `Σ_t d(v, t)`, per id
    /// slot — the best (largest) pivot-derived floor, which upper-bounds
    /// closeness as `1/ub_sum`. 0 means "no bound" (never prunable).
    pub ub_sum: Vec<u64>,
    /// Exact distance sum per id slot for pivots; `u64::MAX` elsewhere.
    pub exact_sum: Vec<u64>,
    /// The pivots, in selection order (degree seeds, component cover,
    /// greedy k-center fill).
    pub pivots: Vec<VertexId>,
}

impl StructuralBounds {
    /// Whether `v` is a pivot, i.e. its closeness is exact from these bounds.
    pub fn is_pivot(&self, v: VertexId) -> bool {
        self.exact_sum
            .get(v as usize)
            .is_some_and(|&s| s != u64::MAX)
    }

    /// Builds bounds for the graph as it stands, stamped with the given
    /// generation. `seed_count` pivots are seeded by highest degree (the
    /// likely top-k anchors), every component of size ≥ 2 gets at least one
    /// pivot, and the remaining budget up to `max_pivots` is spent on
    /// greedy k-center spread (each new pivot is the vertex farthest from
    /// all existing pivots).
    pub fn build(
        g: &Graph,
        epoch: u64,
        state_version: u64,
        seed_count: usize,
        max_pivots: usize,
    ) -> StructuralBounds {
        let cap = g.capacity();
        let (comp_of, comp_count) = algo::connected_components(g);
        let mut comp_members = vec![0u64; comp_count];
        for v in g.vertices() {
            if let Some(c) = comp_members.get_mut(comp_of[v as usize]) {
                *c += 1;
            }
        }
        let mut comp_size = vec![0u64; cap];
        for v in g.vertices() {
            comp_size[v as usize] = comp_members.get(comp_of[v as usize]).copied().unwrap_or(0);
        }
        let mut w_max = 1u64;
        let mut unit = u64::MAX;
        for (_, _, w) in g.edges() {
            w_max = w_max.max(u64::from(w));
            unit = unit.min(u64::from(w));
        }
        let unit = if unit == u64::MAX { 1 } else { unit.max(1) };

        let mut bounds = StructuralBounds {
            epoch,
            state_version,
            w_max,
            comp_size,
            ub_sum: vec![0; cap],
            exact_sum: vec![u64::MAX; cap],
            pivots: Vec::new(),
        };

        // Candidates: vertices that can have positive closeness at all.
        let candidates: Vec<VertexId> = g
            .vertices()
            .filter(|&v| bounds.comp_size[v as usize] >= 2)
            .collect();
        if candidates.is_empty() {
            return bounds;
        }
        let budget = max_pivots.max(1);

        // Degree seeds: the highest-degree vertices anchor the probable
        // top-k with exact scores (ties broken by lower id).
        let mut by_degree = candidates.clone();
        by_degree.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
        let mut is_pivot = vec![false; cap];
        let mut rows: Vec<Vec<u32>> = Vec::new();
        // Min distance to any existing pivot, for the k-center fill.
        let mut mind = vec![INF; cap];
        let add_pivot = |v: VertexId,
                         is_pivot: &mut Vec<bool>,
                         rows: &mut Vec<Vec<u32>>,
                         mind: &mut Vec<u32>,
                         bounds: &mut StructuralBounds| {
            if is_pivot[v as usize] {
                return;
            }
            is_pivot[v as usize] = true;
            let row = algo::dijkstra(g, v);
            for (t, &d) in row.iter().enumerate() {
                if d < mind[t] {
                    mind[t] = d;
                }
            }
            bounds.pivots.push(v);
            rows.push(row);
        };
        for &v in by_degree.iter().take(seed_count.min(budget)) {
            add_pivot(v, &mut is_pivot, &mut rows, &mut mind, &mut bounds);
        }
        // Component cover: every component of size ≥ 2 gets its lowest-id
        // vertex as a pivot if the degree seeds missed it. Coverage is what
        // makes `ub_sum` nonzero component-wide, so it may exceed the
        // k-center budget (bounded by the component count, not by n).
        let mut covered = vec![false; comp_count];
        for &p in &bounds.pivots.clone() {
            if let Some(c) = covered.get_mut(comp_of[p as usize]) {
                *c = true;
            }
        }
        for &v in &candidates {
            let comp = comp_of[v as usize];
            if !covered.get(comp).copied().unwrap_or(true) {
                covered[comp] = true;
                add_pivot(v, &mut is_pivot, &mut rows, &mut mind, &mut bounds);
            }
        }
        // Greedy k-center fill: repeatedly take the vertex farthest from
        // every existing pivot (ties by lower id) until the budget is spent.
        while bounds.pivots.len() < budget {
            let mut best: Option<(u64, VertexId)> = None;
            for &v in &candidates {
                if is_pivot[v as usize] {
                    continue;
                }
                let d = u64::from(mind[v as usize]);
                if d == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bd, _)) => d > bd,
                };
                if better {
                    best = Some((d, v));
                }
            }
            match best {
                Some((_, v)) => add_pivot(v, &mut is_pivot, &mut rows, &mut mind, &mut bounds),
                None => break,
            }
        }

        // Collapse pivot rows into per-vertex distance-sum floors.
        for (i, &p) in bounds.pivots.clone().iter().enumerate() {
            let row = match rows.get(i) {
                Some(r) => r,
                None => continue, // unreachable: rows grows with pivots
            };
            bounds.apply_pivot(p, row, &comp_of, unit);
        }

        // Exploration floors: one bounded Dijkstra per candidate (see the
        // module docs). Scratch state is reused across candidates; only the
        // touched slots are reset between runs.
        let mut dist = vec![INF; cap];
        let mut touched: Vec<VertexId> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
        for &v in &candidates {
            let reach = bounds.comp_size[v as usize].saturating_sub(1);
            dist[v as usize] = 0;
            touched.push(v);
            heap.push(Reverse((0, v)));
            let mut settled = 0u64;
            let mut sum = 0u64;
            let mut last = 0u64;
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > u64::from(dist[u as usize]) {
                    continue; // stale entry
                }
                last = d;
                if u != v {
                    sum += d;
                    settled += 1;
                    if settled >= BALL_CAP as u64 {
                        break;
                    }
                }
                for &(t, w) in g.neighbors(u) {
                    let nd = d + u64::from(w);
                    if nd < u64::from(dist[t as usize]) {
                        if dist[t as usize] == INF {
                            touched.push(t);
                        }
                        dist[t as usize] = nd as u32;
                        heap.push(Reverse((nd, t)));
                    }
                }
            }
            // Unsettled component members settle later, hence at d ≥ last.
            let floor = sum + reach.saturating_sub(settled).saturating_mul(last);
            if floor > bounds.ub_sum[v as usize] {
                bounds.ub_sum[v as usize] = floor;
            }
            heap.clear();
            for &t in &touched {
                dist[t as usize] = INF;
            }
            touched.clear();
        }
        bounds
    }

    /// Folds one pivot's exact distance row into the bounds: exact sum for
    /// the pivot, triangle-inequality distance-sum floors for every vertex
    /// of the pivot's component.
    fn apply_pivot(&mut self, p: VertexId, row: &[u32], comp_of: &[usize], unit: u64) {
        let pc = comp_of.get(p as usize).copied().unwrap_or(usize::MAX);
        if pc == usize::MAX {
            return;
        }
        // Members of the pivot's component with their exact pivot distances,
        // sorted by distance for the prefix-sum split below.
        let mut members: Vec<(u64, VertexId)> = row
            .iter()
            .enumerate()
            .filter(|&(t, &d)| d != INF && comp_of.get(t).copied() == Some(pc))
            .map(|(t, &d)| (u64::from(d), t as VertexId))
            .collect();
        members.sort_unstable();
        let n = members.len();
        if n < 2 {
            return;
        }
        let ds: Vec<u64> = members.iter().map(|&(d, _)| d).collect();
        let mut prefix = vec![0u64; n + 1];
        for (i, &d) in ds.iter().enumerate() {
            prefix[i + 1] = prefix[i] + d;
        }
        let total_sum = prefix[n];

        // Pivot's own closeness is exact: its row is an exact SSSP tree.
        let exact = total_sum; // d(p, p) = 0 contributes nothing
        self.exact_sum[p as usize] = exact;

        for &(x, v) in &members {
            // Σ_t |d(p,t) − x| via a prefix split at x.
            let le = ds.partition_point(|&d| d <= x);
            let (cnt_le, sum_le) = (le as u64, prefix[le]);
            let abs_total =
                (cnt_le * x - sum_le) + ((total_sum - sum_le) - (n as u64 - cnt_le) * x);
            // Raise every pair closer than one minimum edge weight to that
            // floor: near range is d ∈ (x − unit, x + unit).
            let lo = ds.partition_point(|&d| d + unit <= x);
            let hi = ds.partition_point(|&d| d < x + unit);
            let le_c = le.clamp(lo, hi);
            let near_le = (le_c - lo) as u64 * x - (prefix[le_c] - prefix[lo]);
            let near_gt = (prefix[hi] - prefix[le_c]) - (hi - le_c) as u64 * x;
            let abs_near = near_le + near_gt;
            let cnt_near = (hi - lo) as u64;
            // The vertex itself sits in the near range at |Δ| = 0 and must
            // not count as a target; drop its raised `unit` contribution.
            let s = (abs_total + (cnt_near * unit - abs_near)).saturating_sub(unit);
            if s > self.ub_sum[v as usize] {
                self.ub_sum[v as usize] = s;
            }
        }
        // The pivot's floor is its exact sum (the formula above already
        // yields it, since every other member is ≥ unit away).
        if exact > self.ub_sum[p as usize] {
            self.ub_sum[p as usize] = exact;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_graph::generators;

    /// Brute-force version of the prefix-sum floor for one pivot.
    fn brute_floor(row: &[u32], comp_of: &[usize], pc: usize, v: usize, unit: u64) -> u64 {
        let x = u64::from(row[v]);
        row.iter()
            .enumerate()
            .filter(|&(t, &d)| t != v && d != INF && comp_of[t] == pc)
            .map(|(_, &d)| u64::from(d).abs_diff(x).max(unit))
            .sum()
    }

    #[test]
    fn pivot_floor_matches_brute_force() {
        for seed in [3u64, 17, 99] {
            let g = generators::erdos_renyi_gnm(60, 120, 5, seed);
            let (comp_of, _) = algo::connected_components(&g);
            let b = StructuralBounds::build(&g, 0, 0, 4, 8);
            let p = b.pivots[0];
            let row = algo::dijkstra(&g, p);
            let pc = comp_of[p as usize];
            let mut single = StructuralBounds {
                epoch: 0,
                state_version: 0,
                w_max: b.w_max,
                comp_size: b.comp_size.clone(),
                ub_sum: vec![0; g.capacity()],
                exact_sum: vec![u64::MAX; g.capacity()],
                pivots: vec![p],
            };
            let mut unit = u64::MAX;
            for (_, _, w) in g.edges() {
                unit = unit.min(u64::from(w));
            }
            let unit = unit.max(1);
            single.apply_pivot(p, &row, &comp_of, unit);
            for v in g.vertices() {
                if comp_of[v as usize] != pc {
                    continue;
                }
                assert_eq!(
                    single.ub_sum[v as usize],
                    brute_floor(&row, &comp_of, pc, v as usize, unit),
                    "seed {seed} vertex {v}"
                );
            }
        }
    }

    #[test]
    fn floors_never_exceed_true_sums() {
        for seed in [7u64, 21, 42] {
            let g = generators::barabasi_albert(70, 2, 6, seed);
            let b = StructuralBounds::build(&g, 0, 0, 8, 16);
            let dist = algo::apsp_dijkstra(&g);
            for v in g.vertices() {
                let true_sum: u64 = dist[v as usize]
                    .iter()
                    .enumerate()
                    .filter(|&(t, &d)| t != v as usize && d != INF)
                    .map(|(_, &d)| u64::from(d))
                    .sum();
                assert!(
                    b.ub_sum[v as usize] <= true_sum,
                    "seed {seed} vertex {v}: floor {} > true {}",
                    b.ub_sum[v as usize],
                    true_sum
                );
            }
        }
    }

    #[test]
    fn pivot_sums_are_exact() {
        let g = generators::watts_strogatz(50, 3, 0.2, 4, 11);
        let b = StructuralBounds::build(&g, 0, 0, 5, 10);
        assert!(!b.pivots.is_empty());
        for &p in &b.pivots {
            let row = algo::dijkstra(&g, p);
            let true_sum: u64 = row
                .iter()
                .enumerate()
                .filter(|&(t, &d)| t != p as usize && d != INF)
                .map(|(_, &d)| u64::from(d))
                .sum();
            assert_eq!(b.exact_sum[p as usize], true_sum);
            assert_eq!(b.ub_sum[p as usize], true_sum);
            assert!(b.is_pivot(p));
        }
    }

    #[test]
    fn every_component_gets_a_pivot() {
        let mut g = generators::path(6);
        g.remove_edge(2, 3); // two components of size 3
        let b = StructuralBounds::build(&g, 0, 0, 1, 2);
        let (comp_of, _) = algo::connected_components(&g);
        for v in g.vertices() {
            assert!(
                b.ub_sum[v as usize] > 0,
                "vertex {v} (comp {}) has no floor",
                comp_of[v as usize]
            );
        }
    }

    #[test]
    fn isolated_and_dead_slots_have_no_bounds() {
        let mut g = generators::path(5);
        g.remove_vertex(4); // 3 is now the path end; 4 dead
        let mut g2 = g;
        let _ = g2.add_vertex(); // fresh isolated vertex
        let b = StructuralBounds::build(&g2, 0, 0, 4, 8);
        assert_eq!(b.comp_size[4], 0, "dead slot");
        assert_eq!(b.ub_sum[4], 0);
        let iso = 5;
        assert_eq!(b.comp_size[iso], 1, "isolated vertex");
        assert_eq!(b.ub_sum[iso], 0);
        assert!(!b.is_pivot(iso as VertexId));
    }

    #[test]
    fn degree_seeds_come_first() {
        let g = generators::star(12);
        let b = StructuralBounds::build(&g, 0, 0, 3, 6);
        assert_eq!(b.pivots[0], 0, "star center has the highest degree");
    }
}
