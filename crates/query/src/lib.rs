#![forbid(unsafe_code)]
//! Anytime top-k closeness queries over the running engine.
//!
//! Production traffic asks "who are the k most central vertices?", not
//! "dump all n closeness values". The paper's anytime property makes that
//! question answerable *mid-computation*: every in-flight distance estimate
//! is an upper bound on a true distance, so every partially-filled row
//! yields a sound **lower bound** on its vertex's closeness, and a few exact
//! pivot Dijkstras yield sound **upper bounds** (see [`pivots`]). A vertex
//! whose upper bound cannot beat the current k-th lower bound can never
//! enter the top-k of this graph generation — it is pruned without ever
//! waiting for its row to converge.
//!
//! [`TopKTracker`] is the first consumer that reads engine state
//! *incrementally across supersteps* rather than from a terminal snapshot:
//! it observes published [`SnapshotFrame`]s plus the engine's
//! [`BoundDelta`] feed (which rows moved, and whether a deletion voided
//! previous bounds), retightens only the rows that changed, and answers
//! [`TopKAnswer`]s whose [`Confidence`] states precisely how settled the
//! ranking is:
//!
//! * [`Confidence::Exact`] — the members *are* the true top-k of the
//!   current graph, bit-for-bit what the brute-force oracle would return.
//!   Reported when the frame is fresh (converged, nothing in flight,
//!   nobody down), or earlier, when every surviving candidate outside the
//!   members is pruned and every member's score is pivot-exact.
//! * [`Confidence::Anytime`] — the true top-k is guaranteed to be a subset
//!   of {members ∪ unresolved candidates}; `kth_bound_gap` says how far the
//!   best unresolved challenger's upper bound still sits above the k-th
//!   member's lower bound.
//!
//! ## Soundness under dynamics and faults
//!
//! Lower bounds derive from the anytime invariant `d̂(v,t) ≥ d(v,t)`, which
//! the engine maintains through additions (only shorten true distances),
//! deletions (invalidate-and-reseed before serving), crash recovery
//! (checkpoints stamped with the invalidation epoch; stale ones are
//! rejected), and down ranks (frozen rows are pre-crash estimates for the
//! same epoch, and deletions rewrite even frozen state). Upper bounds are
//! structural per generation; any graph change bumps the frame's
//! `(epoch, state_version)` stamp and the tracker rebuilds them before
//! trusting anything. Pruning compares *integer distance sums*, never
//! floats, so there is no epsilon to get wrong.

pub mod pivots;

use aa_core::{BoundDelta, Snapshot, SnapshotFrame, SnapshotMeta};
use aa_graph::{Graph, VertexId};
use aa_obs::MetricsRegistry;
use pivots::StructuralBounds;
use std::sync::Arc;

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKConfig {
    /// The k the tracker keys its pruning metrics to. [`TopKTracker::answer`]
    /// still serves any k on demand.
    pub k: usize,
    /// Pivot budget for the structural upper bounds (degree seeds +
    /// component cover + greedy k-center fill). More pivots prune harder at
    /// `O(m log n)` build cost each per generation.
    pub max_pivots: usize,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            k: 8,
            max_pivots: 16,
        }
    }
}

/// How settled a [`TopKAnswer`] is.
#[derive(Debug, Clone, PartialEq)]
pub enum Confidence {
    /// The members are the true top-k of the current graph, in the exact
    /// order (score descending, ties by lower vertex id) the brute-force
    /// oracle would produce.
    Exact,
    /// The ranking is still in flight. The true top-k is a subset of
    /// {members ∪ the unresolved candidates}.
    Anytime {
        /// How far the best unresolved challenger's closeness upper bound
        /// sits above the k-th member's lower bound (0 when the member
        /// *set* is resolved but member scores are not yet exact).
        kth_bound_gap: f64,
        /// Candidates outside the members that are not yet pruned.
        unresolved_candidates: usize,
    },
}

/// An answer to "who are the k most central vertices right now?".
#[derive(Debug, Clone, PartialEq)]
pub struct TopKAnswer {
    /// The k that was asked for (members may be fewer if the graph has
    /// fewer vertices with positive closeness).
    pub k: usize,
    /// Members, best first. Scores are exact closeness values when
    /// `confidence` is [`Confidence::Exact`]; otherwise they are the
    /// members' sound lower bounds (they converge to the exact values).
    pub members: Vec<(VertexId, f64)>,
    /// How settled the ranking is.
    pub confidence: Confidence,
    /// Consistency stamp of the snapshot frame the answer was derived from.
    pub meta: SnapshotMeta,
}

impl TopKAnswer {
    /// Whether the answer is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self.confidence, Confidence::Exact)
    }

    /// Member vertex ids, best first.
    pub fn ids(&self) -> Vec<VertexId> {
        self.members.iter().map(|&(v, _)| v).collect()
    }
}

/// Internal result of ranking candidates by their bound state.
struct Ranking {
    /// `(lb denominator, id)` of the members, best (smallest denominator)
    /// first.
    members: Vec<(u64, VertexId)>,
    /// Denominator of the k-th member (`u64::MAX` when fewer than k
    /// candidates exist — then nothing is prunable).
    kth_den: u64,
    /// Candidates with positive possible closeness.
    candidates: usize,
    /// Non-members whose upper bound cannot beat the k-th lower bound.
    pruned: Vec<VertexId>,
    /// Non-members still in the running.
    unresolved: Vec<VertexId>,
    /// Largest closeness upper bound among the unresolved (0 when none).
    max_unresolved_ub: f64,
    /// Every member's lower bound equals its pivot-exact sum.
    members_exact: bool,
}

/// Maintains sound per-vertex closeness bounds from published snapshot
/// frames and the engine's bound-delta feed, and answers anytime top-k
/// queries. See the crate docs for the bound derivation.
#[derive(Debug, Clone, Default)]
pub struct TopKTracker {
    config: TopKConfig,
    structural: Option<StructuralBounds>,
    /// Upper bound on the final distance sum per id slot (`u64::MAX` =
    /// nothing known yet); `1/lb_den` is the closeness lower bound.
    lb_den: Vec<u64>,
    /// The last observed frame, for answer metadata and the fresh path.
    last: Option<Arc<SnapshotFrame>>,
    observes: u64,
    rebuilds: u64,
    rows_updated: u64,
    /// First rc_step of the current generation at which the configured-k
    /// answer became exact.
    resolution_step: Option<u64>,
    last_candidates: usize,
    last_pruned: usize,
    last_unresolved: usize,
    last_gap: f64,
    last_exact: bool,
}

impl TopKTracker {
    /// A tracker with the given configuration.
    pub fn new(config: TopKConfig) -> TopKTracker {
        TopKTracker {
            config,
            ..TopKTracker::default()
        }
    }

    /// The configuration.
    pub fn config(&self) -> TopKConfig {
        self.config
    }

    /// Folds one published frame (and the bound deltas drained since the
    /// previous observation) into the tracker. On a new graph generation —
    /// the frame's `(epoch, state_version)` moved, or a widened delta
    /// arrived — all structural bounds are rebuilt from the graph and every
    /// row is retightened; otherwise only the rows the deltas name (plus
    /// rows the frame flags as still moving) are touched.
    pub fn observe(&mut self, frame: &Arc<SnapshotFrame>, graph: &Graph, deltas: &[BoundDelta]) {
        self.observes += 1;
        let meta = frame.meta;
        let gen_changed = !self
            .structural
            .as_ref()
            .is_some_and(|s| s.epoch == meta.epoch && s.state_version == meta.state_version);
        let widened = deltas.iter().any(|d| d.widened);
        let overflowed = deltas.iter().any(|d| d.full);
        if gen_changed || widened {
            let s = StructuralBounds::build(
                graph,
                meta.epoch,
                meta.state_version,
                self.config.k,
                self.config.max_pivots,
            );
            let mut lb_den = vec![u64::MAX; graph.capacity()];
            for &p in &s.pivots {
                if let (Some(slot), Some(&exact)) =
                    (lb_den.get_mut(p as usize), s.exact_sum.get(p as usize))
                {
                    *slot = exact;
                }
            }
            self.lb_den = lb_den;
            self.structural = Some(s);
            self.resolution_step = None;
            self.rebuilds += 1;
        }
        let snap = &frame.snapshot;
        if gen_changed || widened || overflowed {
            for v in graph.vertices() {
                self.update_row(v, snap);
            }
        } else {
            let mut rows: Vec<VertexId> = deltas
                .iter()
                .flat_map(|d| d.changed.iter().copied())
                .collect();
            for (v, &q) in snap.row_quiescent.iter().enumerate() {
                if !q {
                    rows.push(v as VertexId);
                }
            }
            rows.sort_unstable();
            rows.dedup();
            for v in rows {
                self.update_row(v, snap);
            }
        }
        self.last = Some(Arc::clone(frame));

        // Refresh the configured-k pruning metrics.
        let fresh = meta.fresh;
        match self.rank(self.config.k) {
            Some(r) => {
                self.last_candidates = r.candidates;
                self.last_pruned = r.pruned.len();
                self.last_unresolved = r.unresolved.len();
                let kth_lb = den_to_score(r.kth_den);
                self.last_gap = if r.unresolved.is_empty() {
                    0.0
                } else {
                    (r.max_unresolved_ub - kth_lb).max(0.0)
                };
                self.last_exact = fresh || (r.unresolved.is_empty() && r.members_exact);
            }
            None => {
                self.last_candidates = 0;
                self.last_pruned = 0;
                self.last_unresolved = 0;
                self.last_gap = 0.0;
                self.last_exact = fresh;
            }
        }
        if self.last_exact && self.resolution_step.is_none() {
            self.resolution_step = Some(meta.rc_step as u64);
        }
    }

    /// Retightens one row's closeness lower bound from the snapshot's
    /// integer distance sum: unreached-but-reachable targets are padded with
    /// the component's distance ceiling `(|comp| − 1) · w_max`. The
    /// denominator is monotone non-increasing within a generation, so the
    /// smaller of old and new is always the tightest sound bound.
    fn update_row(&mut self, v: VertexId, snap: &Snapshot) {
        let Some(s) = &self.structural else { return };
        let i = v as usize;
        let cs = s.comp_size.get(i).copied().unwrap_or(0);
        if cs < 2 {
            return;
        }
        let reach = cs - 1;
        let dist_sum = snap.dist_sum.get(i).copied().unwrap_or(0);
        let finite = u64::from(snap.finite_targets.get(i).copied().unwrap_or(0));
        let missing = reach.saturating_sub(finite);
        let ceiling = reach.saturating_mul(s.w_max);
        let den = dist_sum
            .saturating_add(missing.saturating_mul(ceiling))
            .max(1);
        if let Some(slot) = self.lb_den.get_mut(i) {
            if den < *slot {
                *slot = den;
            }
            self.rows_updated += 1;
        }
    }

    /// Ranks candidates by lower bound and applies the pruning rule. `None`
    /// before the first observation.
    fn rank(&self, k: usize) -> Option<Ranking> {
        let s = self.structural.as_ref()?;
        let mut cands: Vec<(u64, VertexId)> = Vec::new();
        for (i, &cs) in s.comp_size.iter().enumerate() {
            if cs >= 2 {
                let den = self.lb_den.get(i).copied().unwrap_or(u64::MAX);
                cands.push((den, i as VertexId));
            }
        }
        // Best lower bound first: smaller denominator = larger closeness;
        // ties by lower id, matching the snapshot/oracle ordering.
        cands.sort_unstable();
        let members: Vec<(u64, VertexId)> = cands.iter().take(k).copied().collect();
        let kth_den = if members.len() < k {
            u64::MAX
        } else {
            members.last().map(|&(d, _)| d).unwrap_or(u64::MAX)
        };
        let mut pruned = Vec::new();
        let mut unresolved = Vec::new();
        let mut max_ub = 0.0f64;
        for &(_, v) in cands.iter().skip(k) {
            let floor = s.ub_sum.get(v as usize).copied().unwrap_or(0);
            // Prune iff UB(v) < kth lower bound, as integers: the floor on
            // v's final distance sum strictly exceeds the k-th member's
            // denominator. `floor == 0` means "no structural bound".
            if floor > kth_den && kth_den != u64::MAX {
                pruned.push(v);
            } else {
                unresolved.push(v);
                let ub = if floor == 0 { 1.0 } else { den_to_score(floor) };
                if ub > max_ub {
                    max_ub = ub;
                }
            }
        }
        let members_exact = members.iter().all(|&(den, v)| {
            s.exact_sum
                .get(v as usize)
                .is_some_and(|&e| e != u64::MAX && e == den)
        });
        Some(Ranking {
            kth_den,
            candidates: cands.len(),
            pruned,
            unresolved,
            max_unresolved_ub: max_ub,
            members_exact,
            members,
        })
    }

    /// The current top-k answer for any `k`, from the last observed frame.
    /// `None` until the first [`TopKTracker::observe`].
    pub fn answer(&self, k: usize) -> Option<TopKAnswer> {
        let frame = self.last.as_ref()?;
        let meta = frame.meta;
        if meta.fresh {
            // The frame is exact (converged, nothing in flight, nobody
            // down): the snapshot's own ranking is the oracle's.
            return Some(TopKAnswer {
                k,
                members: frame.snapshot.top_k(k),
                confidence: Confidence::Exact,
                meta,
            });
        }
        let r = self.rank(k)?;
        let exact = r.unresolved.is_empty() && r.members_exact;
        let mut members: Vec<(VertexId, f64)> = r
            .members
            .iter()
            .map(|&(den, v)| (v, den_to_score(den)))
            .filter(|&(_, score)| score > 0.0)
            .collect();
        // Present in the oracle's order: score descending, ties by id.
        members.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let confidence = if exact {
            Confidence::Exact
        } else {
            let kth_lb = den_to_score(r.kth_den);
            Confidence::Anytime {
                kth_bound_gap: if r.unresolved.is_empty() {
                    0.0
                } else {
                    (r.max_unresolved_ub - kth_lb).max(0.0)
                },
                unresolved_candidates: r.unresolved.len(),
            }
        };
        Some(TopKAnswer {
            k,
            members,
            confidence,
            meta,
        })
    }

    /// Identity-level partition of the candidates for `k`: `(members,
    /// unresolved, pruned)` vertex ids. The soundness contract — checked
    /// every superstep by the differential harness — is that the true top-k
    /// is a subset of members ∪ unresolved, i.e. a pruned vertex can never
    /// re-enter the true top-k within this generation. `None` before the
    /// first observation.
    pub fn partition(&self, k: usize) -> Option<(Vec<VertexId>, Vec<VertexId>, Vec<VertexId>)> {
        let r = self.rank(k)?;
        Some((
            r.members.iter().map(|&(_, v)| v).collect(),
            r.unresolved,
            r.pruned,
        ))
    }

    /// Fraction of candidates outside the members already pruned for the
    /// configured k (0 when there is nothing to prune).
    pub fn pruned_fraction(&self) -> f64 {
        let outside = self.last_candidates.saturating_sub(self.config.k);
        if outside == 0 {
            0.0
        } else {
            self.last_pruned as f64 / outside as f64
        }
    }

    /// Unresolved candidates for the configured k at the last observation.
    pub fn unresolved_candidates(&self) -> usize {
        self.last_unresolved
    }

    /// Whether the configured-k answer was exact at the last observation.
    pub fn is_exact(&self) -> bool {
        self.last_exact
    }

    /// First rc_step of the current generation at which the configured-k
    /// answer became exact.
    pub fn resolution_step(&self) -> Option<u64> {
        self.resolution_step
    }

    /// Pivots of the current generation (empty before the first observe).
    pub fn pivots(&self) -> &[VertexId] {
        self.structural
            .as_ref()
            .map(|s| s.pivots.as_slice())
            .unwrap_or(&[])
    }

    /// Exports tracker state as `aa_topk_*` metrics.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set_help("aa_topk_observes_total", "Snapshot frames observed");
        r.set_help(
            "aa_topk_rebuilds_total",
            "Structural bound rebuilds (one per graph generation)",
        );
        r.set_help(
            "aa_topk_rows_updated_total",
            "Row lower-bound retightenings applied",
        );
        r.set_help("aa_topk_pivots", "Pivots in the current generation");
        r.set_help(
            "aa_topk_pruned_fraction",
            "Fraction of non-member candidates pruned by bounds",
        );
        r.set_help(
            "aa_topk_kth_bound_gap",
            "Best unresolved upper bound minus the k-th lower bound",
        );
        r.set_help(
            "aa_topk_unresolved_candidates",
            "Candidates neither member nor pruned",
        );
        r.set_help(
            "aa_topk_exact",
            "1 when the configured-k answer is provably exact",
        );
        r.set_help(
            "aa_topk_resolution_step",
            "rc_step at which the answer became exact this generation (-1 while unresolved)",
        );
        r.inc_counter("aa_topk_observes_total", &[], self.observes);
        r.inc_counter("aa_topk_rebuilds_total", &[], self.rebuilds);
        r.inc_counter("aa_topk_rows_updated_total", &[], self.rows_updated);
        r.set_gauge("aa_topk_pivots", &[], self.pivots().len() as f64);
        r.set_gauge("aa_topk_pruned_fraction", &[], self.pruned_fraction());
        r.set_gauge("aa_topk_kth_bound_gap", &[], self.last_gap);
        r.set_gauge(
            "aa_topk_unresolved_candidates",
            &[],
            self.last_unresolved as f64,
        );
        r.set_gauge(
            "aa_topk_exact",
            &[],
            if self.last_exact { 1.0 } else { 0.0 },
        );
        r.set_gauge(
            "aa_topk_resolution_step",
            &[],
            self.resolution_step.map(|s| s as f64).unwrap_or(-1.0),
        );
        r
    }
}

/// Converts an integer distance-sum denominator to a closeness score.
fn den_to_score(den: u64) -> f64 {
    if den == 0 || den == u64::MAX {
        0.0
    } else {
        1.0 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::{AnytimeEngine, EngineConfig};
    use aa_graph::{algo, generators};

    fn engine(n: usize, p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(n, 2, 4, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    fn oracle_top_k(g: &Graph, k: usize) -> Vec<VertexId> {
        let c = algo::exact_closeness(g);
        let mut ranked: Vec<(VertexId, f64)> = c
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x > 0.0)
            .map(|(v, &x)| (v as VertexId, x))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked.iter().map(|&(v, _)| v).collect()
    }

    #[test]
    fn converged_engine_yields_exact_answer_matching_oracle() {
        let mut e = engine(80, 4, 7);
        e.enable_bound_feed();
        let mut t = TopKTracker::new(TopKConfig {
            k: 5,
            max_pivots: 8,
        });
        e.run_to_convergence(64);
        let frame = e.publish_snapshot();
        let deltas = e.drain_bound_deltas();
        t.observe(&frame, e.graph(), &deltas);
        let ans = t.answer(5).unwrap();
        assert!(ans.is_exact());
        assert_eq!(ans.ids(), oracle_top_k(e.graph(), 5));
        assert_eq!(ans.members, frame.snapshot.top_k(5));
        assert!(t.is_exact());
        assert!(t.resolution_step().is_some());
    }

    #[test]
    fn anytime_invariant_holds_every_superstep() {
        let mut e = engine(100, 5, 13);
        e.enable_bound_feed();
        let mut t = TopKTracker::new(TopKConfig {
            k: 4,
            max_pivots: 8,
        });
        let truth = oracle_top_k(e.graph(), 4);
        for _ in 0..64 {
            let converged = e.rc_step();
            let frame = e.publish_snapshot();
            let deltas = e.drain_bound_deltas();
            t.observe(&frame, e.graph(), &deltas);
            let ans = t.answer(4).unwrap();
            // True top-k ⊆ members ∪ unresolved: every true member is
            // either reported or not yet pruned.
            let ids = ans.ids();
            let unresolved = match ans.confidence {
                Confidence::Exact => 0,
                Confidence::Anytime {
                    unresolved_candidates,
                    ..
                } => unresolved_candidates,
            };
            for &v in &truth {
                if !ids.contains(&v) {
                    assert!(
                        unresolved > 0,
                        "true member {v} missing with nothing unresolved"
                    );
                }
            }
            // Member scores are sound lower bounds.
            let exact = algo::exact_closeness(e.graph());
            if !ans.is_exact() {
                for &(v, score) in &ans.members {
                    assert!(
                        score <= exact[v as usize] + 1e-12,
                        "lb {score} above exact {} for {v}",
                        exact[v as usize]
                    );
                }
            }
            if converged {
                break;
            }
        }
        e.run_to_convergence(64);
        let frame = e.publish_snapshot();
        let deltas = e.drain_bound_deltas();
        t.observe(&frame, e.graph(), &deltas);
        assert_eq!(t.answer(4).unwrap().ids(), truth);
    }

    #[test]
    fn deletion_invalidates_and_tracker_recovers() {
        let mut e = engine(70, 4, 21);
        e.enable_bound_feed();
        let mut t = TopKTracker::new(TopKConfig::default());
        e.run_to_convergence(64);
        let frame = e.publish_snapshot();
        let deltas = e.drain_bound_deltas();
        t.observe(&frame, e.graph(), &deltas);
        assert!(t.answer(8).unwrap().is_exact());

        let (u, v, _) = e.graph().edges().next().unwrap();
        assert!(e.delete_edge(u, v));
        let frame = e.publish_snapshot();
        let deltas = e.drain_bound_deltas();
        assert!(deltas.iter().any(|d| d.widened));
        t.observe(&frame, e.graph(), &deltas);
        let mid = t.answer(8).unwrap();
        assert!(!mid.is_exact(), "post-deletion frame cannot be exact");

        e.run_to_convergence(64);
        let frame = e.publish_snapshot();
        let deltas = e.drain_bound_deltas();
        t.observe(&frame, e.graph(), &deltas);
        let ans = t.answer(8).unwrap();
        assert!(ans.is_exact());
        assert_eq!(ans.ids(), oracle_top_k(e.graph(), 8));
    }

    #[test]
    fn pruning_bites_before_convergence_on_larger_graphs() {
        let mut e = engine(300, 6, 33);
        e.enable_bound_feed();
        let mut t = TopKTracker::new(TopKConfig {
            k: 5,
            max_pivots: 24,
        });
        // Observe the very first published frame, before any rc_step.
        let frame = e.publish_snapshot();
        let deltas = e.drain_bound_deltas();
        t.observe(&frame, e.graph(), &deltas);
        let truth = oracle_top_k(e.graph(), 5);
        let mut peak = 0.0f64;
        for _ in 0..64 {
            let converged = e.rc_step();
            let frame = e.publish_snapshot();
            let deltas = e.drain_bound_deltas();
            t.observe(&frame, e.graph(), &deltas);
            peak = peak.max(t.pruned_fraction());
            // Pruned vertices never include true members.
            let ans = t.answer(5).unwrap();
            let unresolved = match ans.confidence {
                Confidence::Exact => 0,
                Confidence::Anytime {
                    unresolved_candidates,
                    ..
                } => unresolved_candidates,
            };
            for &v in &truth {
                assert!(
                    ans.ids().contains(&v) || unresolved > 0,
                    "true member {v} pruned"
                );
            }
            if converged {
                break;
            }
        }
        assert!(
            peak > 0.0,
            "bounds never pruned anyone on a 300-vertex graph"
        );
    }

    #[test]
    fn answer_serves_arbitrary_k_and_empty_graphs() {
        let g = Graph::with_vertices(3); // no edges: everyone has C = 0
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 2,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(8);
        let mut t = TopKTracker::new(TopKConfig::default());
        assert!(t.answer(3).is_none(), "no observation yet");
        let frame = e.publish_snapshot();
        t.observe(&frame, e.graph(), &[]);
        let ans = t.answer(3).unwrap();
        assert!(ans.members.is_empty());
        assert!(ans.is_exact());
    }

    #[test]
    fn metrics_export_families() {
        let mut e = engine(60, 3, 5);
        e.enable_bound_feed();
        let mut t = TopKTracker::new(TopKConfig::default());
        e.run_to_convergence(64);
        let frame = e.publish_snapshot();
        let deltas = e.drain_bound_deltas();
        t.observe(&frame, e.graph(), &deltas);
        let r = t.metrics_registry();
        assert_eq!(r.counter_value("aa_topk_observes_total", &[]), 1);
        assert_eq!(r.counter_value("aa_topk_rebuilds_total", &[]), 1);
        assert_eq!(r.gauge_value("aa_topk_exact", &[]), Some(1.0));
        assert!(r.gauge_value("aa_topk_pivots", &[]).unwrap_or(0.0) > 0.0);
        let prom = r.to_prometheus_text();
        assert!(prom.contains("aa_topk_pruned_fraction"));
    }
}
