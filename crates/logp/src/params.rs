//! LogP/LogGP model parameters.

/// LogP parameters with the LogGP long-message extension.
///
/// All times are in microseconds. A transfer of `b` bytes is split into
/// `ceil(b / max_msg_bytes)` messages (the papers bound every message by a
/// size `M` "chosen such that the network remains lightly loaded"). The
/// sender is busy for `o + (k-1)·g` plus the per-byte injection cost `b·G`;
/// the last byte arrives `L` later and the receiver spends another `o`.
/// ```
/// use aa_logp::LogPParams;
/// let net = LogPParams::ethernet_1gbe();
/// // an 8 KiB distance-vector row takes ~125 µs end to end on 1 GbE
/// let t = net.transfer_us(8 * 1024);
/// assert!(t > 60.0 && t < 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogPParams {
    /// `L`: network latency per message (µs).
    pub latency_us: f64,
    /// `o`: CPU overhead to send or receive one message (µs).
    pub overhead_us: f64,
    /// `g`: minimum gap between consecutive message injections (µs).
    pub gap_us: f64,
    /// `G` (LogGP): per-byte injection cost (µs/byte) — the reciprocal
    /// bandwidth for long messages.
    pub gap_per_byte_us: f64,
    /// `M`: maximum bytes per message.
    pub max_msg_bytes: usize,
}

impl LogPParams {
    /// A 1 Gb/s Ethernet cluster like the papers' testbed: ~50 µs latency,
    /// ~5 µs send/receive overhead, 125 MB/s ⇒ 0.008 µs per byte, 64 KiB
    /// messages.
    pub fn ethernet_1gbe() -> Self {
        LogPParams {
            latency_us: 50.0,
            overhead_us: 5.0,
            gap_us: 10.0,
            gap_per_byte_us: 0.008,
            max_msg_bytes: 64 * 1024,
        }
    }

    /// An InfiniBand-like fast interconnect: ~2 µs latency, 0.5 µs overhead,
    /// ~10 GB/s. Used by ablations to show how the strategy crossovers move
    /// with network speed.
    pub fn infiniband() -> Self {
        LogPParams {
            latency_us: 2.0,
            overhead_us: 0.5,
            gap_us: 1.0,
            gap_per_byte_us: 0.0001,
            max_msg_bytes: 1024 * 1024,
        }
    }

    /// Number of model messages needed for a `bytes`-byte transfer.
    pub fn message_count(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1 // an empty message still costs a header
        } else {
            bytes.div_ceil(self.max_msg_bytes)
        }
    }

    /// Time the *sender's* CPU/NIC is occupied injecting `bytes` (µs).
    pub fn sender_busy_us(&self, bytes: usize) -> f64 {
        let k = self.message_count(bytes) as f64;
        self.overhead_us + (k - 1.0) * self.gap_us + bytes as f64 * self.gap_per_byte_us
    }

    /// End-to-end time from send start until the receiver has the data (µs):
    /// sender busy + wire latency + receive overhead.
    pub fn transfer_us(&self, bytes: usize) -> f64 {
        self.sender_busy_us(bytes) + self.latency_us + self.overhead_us
    }
}

impl Default for LogPParams {
    fn default() -> Self {
        Self::ethernet_1gbe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_count_rounds_up() {
        let p = LogPParams {
            max_msg_bytes: 100,
            ..LogPParams::ethernet_1gbe()
        };
        assert_eq!(p.message_count(0), 1);
        assert_eq!(p.message_count(1), 1);
        assert_eq!(p.message_count(100), 1);
        assert_eq!(p.message_count(101), 2);
        assert_eq!(p.message_count(1000), 10);
    }

    #[test]
    fn costs_monotone_in_bytes() {
        let p = LogPParams::ethernet_1gbe();
        let mut last = 0.0;
        for bytes in [0usize, 1, 1024, 64 * 1024, 640 * 1024] {
            let t = p.transfer_us(bytes);
            assert!(t >= last, "transfer_us must be monotone");
            last = t;
        }
    }

    #[test]
    fn empty_message_costs_header_only() {
        let p = LogPParams::ethernet_1gbe();
        assert_eq!(
            p.transfer_us(0),
            p.overhead_us + p.latency_us + p.overhead_us
        );
    }

    #[test]
    fn big_transfer_dominated_by_bandwidth() {
        let p = LogPParams::ethernet_1gbe();
        let bytes = 10 * 1024 * 1024;
        let t = p.transfer_us(bytes);
        let bandwidth_part = bytes as f64 * p.gap_per_byte_us;
        assert!(bandwidth_part / t > 0.9, "per-byte term should dominate");
    }

    #[test]
    fn infiniband_faster_than_ethernet() {
        let e = LogPParams::ethernet_1gbe();
        let i = LogPParams::infiniband();
        for bytes in [64usize, 4096, 1 << 20] {
            assert!(i.transfer_us(bytes) < e.transfer_us(bytes));
        }
    }
}
