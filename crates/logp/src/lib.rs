#![forbid(unsafe_code)]
//! LogP/LogGP cost model and communication schedules.
//!
//! The papers analyze their algorithms in the LogP model (Culler et al.) and
//! run on a 1 Gb/s Ethernet cluster. This crate is the reproduction's
//! replacement for that hardware: every message the simulated runtime moves is
//! charged to per-processor virtual clocks under explicit LogP parameters
//! (latency `L`, per-message overhead `o`, inter-message gap `g`, plus the
//! LogGP per-byte gap `G` for long messages, and the paper's bounded message
//! size `M`).
//!
//! Two communication schedules from the papers are provided:
//!
//! * [`schedule::serialized_all_to_all`] — the paper's personalized all-to-all
//!   schedule that "ensures only one message traverses the network at any
//!   given time" (Θ(P²) sequential transfers, flood-free);
//! * [`schedule::one_factorization`] — the classic round-based alternative
//!   (P−1 rounds, pairwise exchanges) used in ablations;
//! * [`schedule::tree_broadcast`] — the binomial-tree broadcast used for
//!   distance-vector row distribution during edge additions.

pub mod clocks;
pub mod ledger;
pub mod params;
pub mod schedule;

pub use clocks::VirtualClocks;
pub use ledger::{CostLedger, Phase, PhaseStats};
pub use params::LogPParams;
