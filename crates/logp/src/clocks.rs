//! Per-processor virtual clocks under the LogP model.
//!
//! The simulated cluster advances one clock per processor plus a shared
//! network clock. Compute is charged to a single processor; transfers occupy
//! the sender, the (serialized) network, and the receiver per the LogP
//! parameters. The *makespan* — the maximum clock — is the reproduction's
//! "cluster time", the quantity the paper's figures plot in minutes.

use crate::params::LogPParams;

/// Virtual clocks for `P` processors and one serialized network.
#[derive(Debug, Clone)]
pub struct VirtualClocks {
    proc_us: Vec<f64>,
    network_us: f64,
}

impl VirtualClocks {
    /// Creates clocks for `p` processors, all at time 0.
    pub fn new(p: usize) -> Self {
        VirtualClocks {
            proc_us: vec![0.0; p],
            network_us: 0.0,
        }
    }

    /// Number of processors.
    pub fn proc_count(&self) -> usize {
        self.proc_us.len()
    }

    /// Current time of processor `p` (µs).
    pub fn proc_time_us(&self, p: usize) -> f64 {
        self.proc_us[p]
    }

    /// Charges `us` microseconds of local computation to processor `p`.
    pub fn compute(&mut self, p: usize, us: f64) {
        debug_assert!(us >= 0.0);
        self.proc_us[p] += us;
    }

    /// Charges a `bytes`-byte transfer from `src` to `dst` over the
    /// *serialized* network (the paper's schedule: one message in flight at a
    /// time). The transfer starts when both the sender is free and the
    /// network is idle.
    pub fn transfer_serialized(&mut self, src: usize, dst: usize, bytes: usize, p: &LogPParams) {
        let start = self.proc_us[src].max(self.network_us);
        let sender_busy = p.sender_busy_us(bytes);
        self.proc_us[src] = start + sender_busy;
        // The network is occupied while bytes are in flight.
        self.network_us = start + sender_busy + p.latency_us;
        let arrival = start + sender_busy + p.latency_us + p.overhead_us;
        self.proc_us[dst] = self.proc_us[dst].max(arrival);
    }

    /// Charges a transfer that does **not** contend on the shared network
    /// (round-based schedules where each processor talks to one distinct
    /// partner; links are independent).
    pub fn transfer_concurrent(&mut self, src: usize, dst: usize, bytes: usize, p: &LogPParams) {
        let start = self.proc_us[src];
        let sender_busy = p.sender_busy_us(bytes);
        self.proc_us[src] = start + sender_busy;
        let arrival = start + sender_busy + p.latency_us + p.overhead_us;
        self.proc_us[dst] = self.proc_us[dst].max(arrival);
    }

    /// Barrier: all processors (and the network) advance to the global max.
    pub fn barrier(&mut self) {
        let max = self.makespan_us();
        for t in &mut self.proc_us {
            *t = max;
        }
        self.network_us = self.network_us.max(max);
    }

    /// The cluster makespan: maximum processor clock (µs).
    pub fn makespan_us(&self) -> f64 {
        self.proc_us.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all processor clocks (µs): total busy+wait time, a resource-
    /// usage metric.
    pub fn total_us(&self) -> f64 {
        self.proc_us.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LogPParams {
        LogPParams {
            latency_us: 10.0,
            overhead_us: 1.0,
            gap_us: 2.0,
            gap_per_byte_us: 0.01,
            max_msg_bytes: 1000,
        }
    }

    #[test]
    fn compute_advances_one_proc() {
        let mut c = VirtualClocks::new(3);
        c.compute(1, 5.0);
        assert_eq!(c.proc_time_us(0), 0.0);
        assert_eq!(c.proc_time_us(1), 5.0);
        assert_eq!(c.makespan_us(), 5.0);
        assert_eq!(c.total_us(), 5.0);
    }

    #[test]
    fn serialized_transfers_contend_on_network() {
        let p = params();
        let mut c = VirtualClocks::new(4);
        // Two transfers from different senders must serialize.
        c.transfer_serialized(0, 1, 100, &p);
        let net_after_first = c.proc_time_us(1);
        c.transfer_serialized(2, 3, 100, &p);
        // Second sender was free at t=0 but network was busy.
        assert!(
            c.proc_time_us(3) > net_after_first,
            "second transfer must wait for the network"
        );
    }

    #[test]
    fn concurrent_transfers_do_not_contend() {
        let p = params();
        let mut c1 = VirtualClocks::new(4);
        c1.transfer_concurrent(0, 1, 100, &p);
        c1.transfer_concurrent(2, 3, 100, &p);
        // Both receivers see the same arrival time.
        assert_eq!(c1.proc_time_us(1), c1.proc_time_us(3));
    }

    #[test]
    fn receiver_waits_for_arrival_not_before() {
        let p = params();
        let mut c = VirtualClocks::new(2);
        c.compute(1, 1000.0); // receiver already busy past arrival
        c.transfer_serialized(0, 1, 10, &p);
        assert_eq!(c.proc_time_us(1), 1000.0, "arrival before busy end is free");
    }

    #[test]
    fn barrier_levels_clocks() {
        let mut c = VirtualClocks::new(3);
        c.compute(0, 3.0);
        c.compute(2, 9.0);
        c.barrier();
        for p in 0..3 {
            assert_eq!(c.proc_time_us(p), 9.0);
        }
    }

    #[test]
    fn multi_message_transfer_charges_gaps() {
        let p = params(); // 1000-byte messages
        let mut c = VirtualClocks::new(2);
        c.transfer_serialized(0, 1, 2500, &p); // 3 messages
        let expected_sender = p.overhead_us + 2.0 * p.gap_us + 2500.0 * p.gap_per_byte_us;
        assert!((c.proc_time_us(0) - expected_sender).abs() < 1e-9);
        let expected_arrival = expected_sender + p.latency_us + p.overhead_us;
        assert!((c.proc_time_us(1) - expected_arrival).abs() < 1e-9);
    }
}
