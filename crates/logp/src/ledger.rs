//! Cost accounting: messages, bytes and virtual time per algorithm phase.

use std::fmt;

/// Algorithm phases, matching the papers' decomposition plus the dynamic-
/// update activities measured in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Domain decomposition (graph partitioning + distribution).
    DomainDecomposition,
    /// Initial approximation (local APSP via Dijkstra).
    InitialApproximation,
    /// Recombination steps (boundary DV exchange + refinement).
    Recombination,
    /// Dynamic update incorporation (vertex/edge additions/deletions).
    DynamicUpdate,
    /// Partial-result migration during repartitioning.
    Migration,
    /// Failure detection and repair: checkpoint writes/restores, replacement
    /// reseeds and the survivors' reaction to a detected crash.
    Recovery,
}

impl Phase {
    /// All phases in reporting order.
    pub const ALL: [Phase; 6] = [
        Phase::DomainDecomposition,
        Phase::InitialApproximation,
        Phase::Recombination,
        Phase::DynamicUpdate,
        Phase::Migration,
        Phase::Recovery,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::DomainDecomposition => "domain-decomposition",
            Phase::InitialApproximation => "initial-approximation",
            Phase::Recombination => "recombination",
            Phase::DynamicUpdate => "dynamic-update",
            Phase::Migration => "migration",
            Phase::Recovery => "recovery",
        };
        f.write_str(s)
    }
}

/// Accumulated costs for one phase.
///
/// `messages`/`bytes` count *all* network traffic, including transfers the
/// fault-injection layer dropped or duplicated (the network was occupied
/// either way); the `dropped_*`/`dup_*` counters additionally single out the
/// faulted subset, so they are always ≤ the corresponding totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Number of model messages sent.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Virtual compute time charged (µs, summed over processors).
    pub compute_us: f64,
    /// Model messages lost to injected network faults.
    pub dropped_messages: u64,
    /// Payload bytes lost to injected network faults.
    pub dropped_bytes: u64,
    /// Model messages injected as duplicates.
    pub dup_messages: u64,
    /// Payload bytes injected as duplicates.
    pub dup_bytes: u64,
    /// Failure-detector heartbeat messages (a subset of `messages`).
    pub heartbeat_messages: u64,
    /// Failure-detector heartbeat bytes (a subset of `bytes`).
    pub heartbeat_bytes: u64,
}

/// Ledger of communication and computation per phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostLedger {
    stats: [PhaseStats; Phase::ALL.len()],
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    // aa-lint: allow(AA07, Phase::ALL enumerates every variant so the position lookup cannot miss)
    fn idx(phase: Phase) -> usize {
        Phase::ALL
            .iter()
            .position(|&p| p == phase)
            // aa-lint: allow(AA01, Phase::ALL lists every Phase variant by definition)
            .unwrap()
    }

    /// Records `messages` model messages carrying `bytes` payload bytes.
    pub fn record_transfer(&mut self, phase: Phase, messages: u64, bytes: u64) {
        let s = &mut self.stats[Self::idx(phase)];
        s.messages += messages;
        s.bytes += bytes;
    }

    /// Records `us` microseconds of compute.
    pub fn record_compute(&mut self, phase: Phase, us: f64) {
        self.stats[Self::idx(phase)].compute_us += us;
    }

    /// Records a transfer lost to injected network faults. Only the fault
    /// counters are touched: the lost transfer's share of `messages`/`bytes`
    /// is charged by the normal [`CostLedger::record_transfer`] path, since
    /// a dropped message still occupies the network.
    pub fn record_drop(&mut self, phase: Phase, messages: u64, bytes: u64) {
        let s = &mut self.stats[Self::idx(phase)];
        s.dropped_messages += messages;
        s.dropped_bytes += bytes;
    }

    /// Records an injected duplicate copy of a transfer (fault counters
    /// only; the copy's traffic is charged via
    /// [`CostLedger::record_transfer`] like any other transfer).
    pub fn record_duplicate(&mut self, phase: Phase, messages: u64, bytes: u64) {
        let s = &mut self.stats[Self::idx(phase)];
        s.dup_messages += messages;
        s.dup_bytes += bytes;
    }

    /// Records failure-detector heartbeat traffic (detector counters only;
    /// the heartbeats' traffic is charged via
    /// [`CostLedger::record_transfer`] like any other transfer).
    pub fn record_heartbeat(&mut self, phase: Phase, messages: u64, bytes: u64) {
        let s = &mut self.stats[Self::idx(phase)];
        s.heartbeat_messages += messages;
        s.heartbeat_bytes += bytes;
    }

    /// Stats for one phase.
    pub fn phase(&self, phase: Phase) -> PhaseStats {
        self.stats[Self::idx(phase)]
    }

    /// Totals across all phases.
    pub fn totals(&self) -> PhaseStats {
        let mut t = PhaseStats::default();
        for s in &self.stats {
            t.messages += s.messages;
            t.bytes += s.bytes;
            t.compute_us += s.compute_us;
            t.dropped_messages += s.dropped_messages;
            t.dropped_bytes += s.dropped_bytes;
            t.dup_messages += s.dup_messages;
            t.dup_bytes += s.dup_bytes;
            t.heartbeat_messages += s.heartbeat_messages;
            t.heartbeat_bytes += s.heartbeat_bytes;
        }
        t
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        for (i, s) in other.stats.iter().enumerate() {
            self.stats[i].messages += s.messages;
            self.stats[i].bytes += s.bytes;
            self.stats[i].compute_us += s.compute_us;
            self.stats[i].dropped_messages += s.dropped_messages;
            self.stats[i].dropped_bytes += s.dropped_bytes;
            self.stats[i].dup_messages += s.dup_messages;
            self.stats[i].dup_bytes += s.dup_bytes;
            self.stats[i].heartbeat_messages += s.heartbeat_messages;
            self.stats[i].heartbeat_bytes += s.heartbeat_bytes;
        }
    }

    /// A human-readable multi-line report. The fault columns (`dropped_b`,
    /// `dup_b`) stay all-zero unless network fault injection is active.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "phase                      messages        bytes   compute_ms    dropped_b        dup_b\n",
        );
        let mut row = |name: &str, s: PhaseStats| {
            out.push_str(&format!(
                "{:<24} {:>10} {:>12} {:>12.2} {:>12} {:>12}\n",
                name,
                s.messages,
                s.bytes,
                s.compute_us / 1000.0,
                s.dropped_bytes,
                s.dup_bytes
            ));
        };
        for &p in &Phase::ALL {
            row(&p.to_string(), self.phase(p));
        }
        row("total", self.totals());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = CostLedger::new();
        l.record_transfer(Phase::Recombination, 3, 300);
        l.record_transfer(Phase::Recombination, 2, 200);
        l.record_compute(Phase::Recombination, 50.0);
        let s = l.phase(Phase::Recombination);
        assert_eq!(s.messages, 5);
        assert_eq!(s.bytes, 500);
        assert_eq!(s.compute_us, 50.0);
        assert_eq!(l.phase(Phase::Migration), PhaseStats::default());
    }

    #[test]
    fn totals_span_phases() {
        let mut l = CostLedger::new();
        l.record_transfer(Phase::DomainDecomposition, 1, 10);
        l.record_transfer(Phase::DynamicUpdate, 2, 20);
        l.record_compute(Phase::InitialApproximation, 7.0);
        let t = l.totals();
        assert_eq!(t.messages, 3);
        assert_eq!(t.bytes, 30);
        assert_eq!(t.compute_us, 7.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = CostLedger::new();
        a.record_transfer(Phase::Migration, 1, 100);
        let mut b = CostLedger::new();
        b.record_transfer(Phase::Migration, 2, 50);
        b.record_compute(Phase::Migration, 1.5);
        a.merge(&b);
        let s = a.phase(Phase::Migration);
        assert_eq!((s.messages, s.bytes), (3, 150));
        assert_eq!(s.compute_us, 1.5);
    }

    #[test]
    fn report_contains_every_phase() {
        let l = CostLedger::new();
        let r = l.report();
        for p in Phase::ALL {
            assert!(r.contains(&p.to_string()), "missing {p}");
        }
        assert!(r.contains("total"));
        assert!(r.contains("dropped_b") && r.contains("dup_b"));
    }

    #[test]
    fn fault_counters_accumulate_merge_and_total() {
        let mut a = CostLedger::new();
        a.record_transfer(Phase::Recombination, 4, 400);
        a.record_drop(Phase::Recombination, 1, 100);
        a.record_duplicate(Phase::Recombination, 2, 50);
        let s = a.phase(Phase::Recombination);
        assert_eq!((s.dropped_messages, s.dropped_bytes), (1, 100));
        assert_eq!((s.dup_messages, s.dup_bytes), (2, 50));
        // record_drop/record_duplicate never touch the traffic totals.
        assert_eq!((s.messages, s.bytes), (4, 400));
        let mut b = CostLedger::new();
        b.record_drop(Phase::DynamicUpdate, 3, 30);
        a.merge(&b);
        let t = a.totals();
        assert_eq!((t.dropped_messages, t.dropped_bytes), (4, 130));
        assert_eq!((t.dup_messages, t.dup_bytes), (2, 50));
    }

    #[test]
    fn heartbeat_counters_accumulate_merge_and_total() {
        let mut a = CostLedger::new();
        a.record_transfer(Phase::Recombination, 6, 6);
        a.record_heartbeat(Phase::Recombination, 6, 6);
        let s = a.phase(Phase::Recombination);
        assert_eq!((s.heartbeat_messages, s.heartbeat_bytes), (6, 6));
        // Heartbeat counters never touch the traffic totals on their own.
        assert_eq!((s.messages, s.bytes), (6, 6));
        let mut b = CostLedger::new();
        b.record_heartbeat(Phase::Recovery, 2, 2);
        a.merge(&b);
        let t = a.totals();
        assert_eq!((t.heartbeat_messages, t.heartbeat_bytes), (8, 8));
    }

    #[test]
    fn recovery_phase_is_reported() {
        let mut l = CostLedger::new();
        l.record_transfer(Phase::Recovery, 1, 64);
        assert_eq!(l.phase(Phase::Recovery).bytes, 64);
        assert!(l.report().contains("recovery"));
    }
}
