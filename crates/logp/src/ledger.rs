//! Cost accounting: messages, bytes and virtual time per algorithm phase.

use std::fmt;

/// Algorithm phases, matching the papers' decomposition plus the dynamic-
/// update activities measured in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Domain decomposition (graph partitioning + distribution).
    DomainDecomposition,
    /// Initial approximation (local APSP via Dijkstra).
    InitialApproximation,
    /// Recombination steps (boundary DV exchange + refinement).
    Recombination,
    /// Dynamic update incorporation (vertex/edge additions/deletions).
    DynamicUpdate,
    /// Partial-result migration during repartitioning.
    Migration,
}

impl Phase {
    /// All phases in reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::DomainDecomposition,
        Phase::InitialApproximation,
        Phase::Recombination,
        Phase::DynamicUpdate,
        Phase::Migration,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::DomainDecomposition => "domain-decomposition",
            Phase::InitialApproximation => "initial-approximation",
            Phase::Recombination => "recombination",
            Phase::DynamicUpdate => "dynamic-update",
            Phase::Migration => "migration",
        };
        f.write_str(s)
    }
}

/// Accumulated costs for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Number of model messages sent.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Virtual compute time charged (µs, summed over processors).
    pub compute_us: f64,
}

/// Ledger of communication and computation per phase.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    stats: [PhaseStats; Phase::ALL.len()],
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(phase: Phase) -> usize {
        Phase::ALL.iter().position(|&p| p == phase).unwrap()
    }

    /// Records `messages` model messages carrying `bytes` payload bytes.
    pub fn record_transfer(&mut self, phase: Phase, messages: u64, bytes: u64) {
        let s = &mut self.stats[Self::idx(phase)];
        s.messages += messages;
        s.bytes += bytes;
    }

    /// Records `us` microseconds of compute.
    pub fn record_compute(&mut self, phase: Phase, us: f64) {
        self.stats[Self::idx(phase)].compute_us += us;
    }

    /// Stats for one phase.
    pub fn phase(&self, phase: Phase) -> PhaseStats {
        self.stats[Self::idx(phase)]
    }

    /// Totals across all phases.
    pub fn totals(&self) -> PhaseStats {
        let mut t = PhaseStats::default();
        for s in &self.stats {
            t.messages += s.messages;
            t.bytes += s.bytes;
            t.compute_us += s.compute_us;
        }
        t
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        for (i, s) in other.stats.iter().enumerate() {
            self.stats[i].messages += s.messages;
            self.stats[i].bytes += s.bytes;
            self.stats[i].compute_us += s.compute_us;
        }
    }

    /// A human-readable multi-line report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("phase                      messages        bytes   compute_ms\n");
        for &p in &Phase::ALL {
            let s = self.phase(p);
            out.push_str(&format!(
                "{:<24} {:>10} {:>12} {:>12.2}\n",
                p.to_string(),
                s.messages,
                s.bytes,
                s.compute_us / 1000.0
            ));
        }
        let t = self.totals();
        out.push_str(&format!(
            "{:<24} {:>10} {:>12} {:>12.2}\n",
            "total",
            t.messages,
            t.bytes,
            t.compute_us / 1000.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut l = CostLedger::new();
        l.record_transfer(Phase::Recombination, 3, 300);
        l.record_transfer(Phase::Recombination, 2, 200);
        l.record_compute(Phase::Recombination, 50.0);
        let s = l.phase(Phase::Recombination);
        assert_eq!(s.messages, 5);
        assert_eq!(s.bytes, 500);
        assert_eq!(s.compute_us, 50.0);
        assert_eq!(l.phase(Phase::Migration), PhaseStats::default());
    }

    #[test]
    fn totals_span_phases() {
        let mut l = CostLedger::new();
        l.record_transfer(Phase::DomainDecomposition, 1, 10);
        l.record_transfer(Phase::DynamicUpdate, 2, 20);
        l.record_compute(Phase::InitialApproximation, 7.0);
        let t = l.totals();
        assert_eq!(t.messages, 3);
        assert_eq!(t.bytes, 30);
        assert_eq!(t.compute_us, 7.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = CostLedger::new();
        a.record_transfer(Phase::Migration, 1, 100);
        let mut b = CostLedger::new();
        b.record_transfer(Phase::Migration, 2, 50);
        b.record_compute(Phase::Migration, 1.5);
        a.merge(&b);
        let s = a.phase(Phase::Migration);
        assert_eq!((s.messages, s.bytes), (3, 150));
        assert_eq!(s.compute_us, 1.5);
    }

    #[test]
    fn report_contains_every_phase() {
        let l = CostLedger::new();
        let r = l.report();
        for p in Phase::ALL {
            assert!(r.contains(&p.to_string()), "missing {p}");
        }
        assert!(r.contains("total"));
    }
}
