//! Communication schedules.
//!
//! The papers use a *personalized all-to-all* schedule in which "only one
//! message traverses the network at any given time … Although our
//! communication schedule takes Θ(P²) steps for P processors, it mitigates
//! network flooding." [`serialized_all_to_all`] reproduces that schedule.
//! [`one_factorization`] is the classic P−1-round tournament alternative used
//! in ablations, and [`tree_broadcast`] is the binomial-tree broadcast used to
//! distribute distance-vector rows during edge additions.

/// The paper's serialized personalized all-to-all: every ordered pair `(src,
/// dst)` with `src != dst`, in an order that cycles senders so no processor
/// monopolizes the network. Exactly `P·(P−1)` transfers; at most one in
/// flight at a time.
pub fn serialized_all_to_all(p: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(p.saturating_sub(1) * p);
    for offset in 1..p {
        for src in 0..p {
            out.push((src, (src + offset) % p));
        }
    }
    out
}

/// Round-based pairwise exchange via the circle method (round-robin
/// tournament): `P−1` rounds for even `P`, `P` rounds (one bye each) for odd
/// `P`. In each round every processor is in at most one pair, and over all
/// rounds every unordered pair meets exactly once. Each pair performs a
/// bidirectional exchange within its round.
pub fn one_factorization(p: usize) -> Vec<Vec<(usize, usize)>> {
    if p < 2 {
        return Vec::new();
    }
    // Circle method on n = p (even) or p+1 (odd, extra index = bye).
    let n = if p.is_multiple_of(2) { p } else { p + 1 };
    let mut rounds = Vec::with_capacity(n - 1);
    let mut ring: Vec<usize> = (1..n).collect(); // index 0 is fixed
    for _ in 0..n - 1 {
        let mut pairs = Vec::with_capacity(n / 2);
        let a = 0usize;
        let b = ring[n - 2];
        if a < p && b < p {
            pairs.push((a.min(b), a.max(b)));
        }
        for i in 0..(n / 2 - 1) {
            let x = ring[i];
            let y = ring[n - 3 - i];
            if x < p && y < p {
                pairs.push((x.min(y), x.max(y)));
            }
        }
        rounds.push(pairs);
        ring.rotate_right(1);
    }
    rounds
}

/// Binomial-tree broadcast from `root`: returns rounds of `(src, dst)`
/// transfers; in round `r` every processor that already holds the data and
/// has a partner `2^r` away (in root-relative rank space) forwards it.
/// `ceil(log2 P)` rounds.
pub fn tree_broadcast(p: usize, root: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(root < p, "root {root} out of range for {p} processors");
    let mut rounds = Vec::new();
    let mut span = 1usize;
    while span < p {
        let mut pairs = Vec::new();
        for rank in 0..span.min(p) {
            let dst_rank = rank + span;
            if dst_rank < p {
                pairs.push(((rank + root) % p, (dst_rank + root) % p));
            }
        }
        rounds.push(pairs);
        span *= 2;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn serialized_covers_all_ordered_pairs_once() {
        for p in [2usize, 3, 4, 7, 16] {
            let sched = serialized_all_to_all(p);
            assert_eq!(sched.len(), p * (p - 1));
            let set: HashSet<_> = sched.iter().copied().collect();
            assert_eq!(set.len(), p * (p - 1), "duplicates for p={p}");
            assert!(sched.iter().all(|&(s, d)| s != d && s < p && d < p));
        }
    }

    #[test]
    fn serialized_trivial_cases() {
        assert!(serialized_all_to_all(0).is_empty());
        assert!(serialized_all_to_all(1).is_empty());
    }

    #[test]
    fn one_factorization_is_valid() {
        for p in [2usize, 3, 4, 5, 8, 16, 17] {
            let rounds = one_factorization(p);
            let expected_rounds = if p % 2 == 0 { p - 1 } else { p };
            assert_eq!(rounds.len(), expected_rounds, "p={p}");
            let mut seen = HashSet::new();
            for round in &rounds {
                let mut used = HashSet::new();
                for &(a, b) in round {
                    assert!(a < b && b < p);
                    assert!(used.insert(a), "p={p}: {a} busy twice in a round");
                    assert!(used.insert(b), "p={p}: {b} busy twice in a round");
                    assert!(seen.insert((a, b)), "p={p}: pair ({a},{b}) repeated");
                }
            }
            assert_eq!(seen.len(), p * (p - 1) / 2, "p={p}: pairs missing");
        }
    }

    #[test]
    fn tree_broadcast_reaches_everyone() {
        for p in [1usize, 2, 3, 8, 13, 16] {
            for root in [0, p - 1] {
                let rounds = tree_broadcast(p, root);
                let mut have: HashSet<usize> = HashSet::from([root]);
                for round in &rounds {
                    let snapshot = have.clone();
                    for &(s, d) in round {
                        assert!(snapshot.contains(&s), "p={p}: {s} sends before it has data");
                        assert!(!snapshot.contains(&d), "p={p}: {d} receives twice");
                        have.insert(d);
                    }
                }
                assert_eq!(have.len(), p, "p={p} root={root}: broadcast incomplete");
                let log2 = (p as f64).log2().ceil() as usize;
                assert_eq!(rounds.len(), log2, "p={p}: round count");
            }
        }
    }

    #[test]
    fn tree_broadcast_parallelism() {
        // In every round no processor appears in more than one pair.
        let rounds = tree_broadcast(16, 5);
        for round in rounds {
            let mut used = HashSet::new();
            for (s, d) in round {
                assert!(used.insert(s));
                assert!(used.insert(d));
            }
        }
    }
}
