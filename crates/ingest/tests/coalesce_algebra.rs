//! Property tests for the coalescing algebra.
//!
//! The coalescer folds an op sequence into a per-key transfer function
//! ([`EdgeNet`]). Two laws make that sound:
//!
//! 1. **Order-respecting**: for any interleaving of add/delete/reweight ops
//!    on a key and any pre-state, evaluating the folded net equals applying
//!    the ops one at a time with engine semantics (duplicate add, delete of
//!    a missing edge, and reweight of a missing edge are no-ops).
//! 2. **Idempotent**: materializing the net against a pre-state and folding
//!    the materialized ops back in reproduces the same outcome, and a second
//!    materialization round is a fixpoint (re-coalescing changes nothing).

use aa_ingest::{EdgeKey, EdgeNet};
use proptest::prelude::*;

/// One op against a single edge key.
#[derive(Debug, Clone, Copy, PartialEq)]
enum KeyOp {
    Add(u32),
    Delete,
    Reweight(u32),
}

/// Engine semantics, one op at a time.
fn seq_apply(state: Option<u32>, op: KeyOp) -> Option<u32> {
    match op {
        KeyOp::Add(w) => match state {
            None => Some(w),
            present => present,
        },
        KeyOp::Delete => None,
        KeyOp::Reweight(w) => state.map(|_| w),
    }
}

fn fold(net: &mut EdgeNet, op: KeyOp) {
    match op {
        KeyOp::Add(w) => net.then_add(w),
        KeyOp::Delete => net.then_delete(),
        KeyOp::Reweight(w) => net.then_reweight(w),
    }
}

/// The single op the net boils down to for a concrete pre-state, if any.
fn materialize(pre: Option<u32>, post: Option<u32>) -> Option<KeyOp> {
    match (pre, post) {
        (None, Some(w)) => Some(KeyOp::Add(w)),
        (Some(_), None) => Some(KeyOp::Delete),
        (Some(w0), Some(w)) if w0 != w => Some(KeyOp::Reweight(w)),
        _ => None,
    }
}

fn arb_op() -> impl Strategy<Value = KeyOp> {
    (0u8..3, 1u32..9).prop_map(|(kind, w)| match kind {
        0 => KeyOp::Add(w),
        1 => KeyOp::Delete,
        _ => KeyOp::Reweight(w),
    })
}

/// Pre-state: absent, or present with a small weight.
fn arb_pre() -> impl Strategy<Value = Option<u32>> {
    (0u32..9).prop_map(|w| if w == 0 { None } else { Some(w) })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn coalesce_is_order_respecting(
        pre in arb_pre(),
        ops in proptest::collection::vec(arb_op(), 0..12),
    ) {
        let mut net = EdgeNet::identity();
        let mut state = pre;
        for &op in &ops {
            fold(&mut net, op);
            state = seq_apply(state, op);
        }
        prop_assert_eq!(net.eval(pre), state,
            "net {:?} disagrees with sequential application of {:?} from {:?}",
            net, ops, pre);
    }

    #[test]
    fn coalesce_is_idempotent(
        pre in arb_pre(),
        ops in proptest::collection::vec(arb_op(), 0..12),
    ) {
        let mut net = EdgeNet::identity();
        for &op in &ops {
            fold(&mut net, op);
        }
        let post = net.eval(pre);
        // Fold the materialized op back into a fresh net: same outcome.
        let mut renet = EdgeNet::identity();
        if let Some(op) = materialize(pre, post) {
            fold(&mut renet, op);
        }
        prop_assert_eq!(renet.eval(pre), post);
        // And the second round is a fixpoint: nothing left to materialize.
        prop_assert_eq!(materialize(post, renet.eval(post)), None);
    }
}

/// The canonical conflicting interleavings, pinned as table tests so the
/// contract in the docs stays executable even without the proptest sweep.
#[test]
fn conflicting_interleavings_net_out() {
    let key = EdgeKey::new(7, 3);
    assert_eq!((key.lo, key.hi), (3, 7), "keys canonicalize endpoint order");

    // add then delete cancels.
    let mut net = EdgeNet::identity();
    net.then_add(5);
    net.then_delete();
    assert_eq!(net.eval(None), None);
    // ... and still deletes a pre-existing edge.
    assert_eq!(net.eval(Some(2)), None);

    // delete then add nets to a reweight on a present edge.
    let mut net = EdgeNet::identity();
    net.then_delete();
    net.then_add(4);
    assert_eq!(net.eval(Some(9)), Some(4));
    assert_eq!(net.eval(None), Some(4));

    // repeated reweights are last-wins.
    let mut net = EdgeNet::identity();
    net.then_reweight(2);
    net.then_reweight(8);
    net.then_reweight(3);
    assert_eq!(net.eval(Some(1)), Some(3));
    assert_eq!(
        net.eval(None),
        None,
        "reweight of an absent edge is a no-op"
    );

    // duplicate add keeps the first weight only when the edge was absent,
    // and never clobbers a pre-existing weight.
    let mut net = EdgeNet::identity();
    net.then_add(6);
    net.then_add(2);
    assert_eq!(net.eval(None), Some(6));
    assert_eq!(net.eval(Some(1)), Some(1));
}
