//! Pluggable batch drain policies.

use std::fmt;

/// When the scheduler flushes the coalescing buffer into the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DrainPolicy {
    /// Flush once the queue holds at least this many raw ops.
    SizeTriggered(usize),
    /// Flush whenever at least this many RC steps have completed since the
    /// last flush (and something is buffered) — updates ride the natural
    /// recombination cadence.
    RcStepInterleaved(usize),
    /// Flush when the engine's outstanding-row pressure (the
    /// `Snapshot::outstanding_rows` gauge) has drained to at most
    /// `max_outstanding`, i.e. the cluster has spare capacity; `max_pending`
    /// bounds staleness by forcing a flush regardless of pressure.
    Adaptive {
        /// Flush when `outstanding_rows` is at or below this.
        max_outstanding: usize,
        /// Force a flush once this many raw ops are buffered.
        max_pending: usize,
    },
}

impl DrainPolicy {
    /// Validates policy parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            DrainPolicy::SizeTriggered(0) => {
                Err("size-triggered drain needs a batch target of at least 1".to_string())
            }
            DrainPolicy::RcStepInterleaved(0) => {
                Err("rc-step-interleaved drain needs a step interval of at least 1".to_string())
            }
            DrainPolicy::Adaptive { max_pending: 0, .. } => {
                Err("adaptive drain needs a max_pending bound of at least 1".to_string())
            }
            _ => Ok(()),
        }
    }

    /// Decides whether to flush given the current queue depth, RC steps
    /// since the last flush, and outstanding-row pressure. A flush is never
    /// requested with an empty buffer.
    pub fn should_flush(
        &self,
        pending: usize,
        steps_since_flush: usize,
        outstanding: usize,
    ) -> bool {
        if pending == 0 {
            return false;
        }
        match *self {
            DrainPolicy::SizeTriggered(n) => pending >= n,
            DrainPolicy::RcStepInterleaved(k) => steps_since_flush >= k,
            DrainPolicy::Adaptive {
                max_outstanding,
                max_pending,
            } => outstanding <= max_outstanding || pending >= max_pending,
        }
    }

    /// Metric label for flushes this policy triggers.
    pub fn trigger_label(&self) -> &'static str {
        match self {
            DrainPolicy::SizeTriggered(_) => "size",
            DrainPolicy::RcStepInterleaved(_) => "steps",
            DrainPolicy::Adaptive { .. } => "adaptive",
        }
    }
}

impl fmt::Display for DrainPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainPolicy::SizeTriggered(n) => write!(f, "size:{n}"),
            DrainPolicy::RcStepInterleaved(k) => write!(f, "steps:{k}"),
            DrainPolicy::Adaptive {
                max_outstanding,
                max_pending,
            } => write!(f, "adaptive:{max_outstanding}:{max_pending}"),
        }
    }
}
