//! Update operations accepted by the ingestion pipeline.

use aa_graph::{VertexId, Weight};

/// One streaming update, expressed against engine vertex ids.
///
/// Vertex ids named by an op must be *projected-alive*: alive in the engine's
/// graph, or created by an earlier [`UpdateOp::AddVertex`] still buffered in
/// the pipeline (predicted ids are handed out at push time), and not deleted
/// by a buffered [`UpdateOp::DeleteVertex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Add an undirected edge `(u, v)` with weight `w >= 1`.
    AddEdge(VertexId, VertexId, Weight),
    /// Delete the undirected edge `(u, v)`.
    DeleteEdge(VertexId, VertexId),
    /// Change the weight of the existing edge `(u, v)` to `w >= 1`.
    Reweight(VertexId, VertexId, Weight),
    /// Add one vertex with weighted edges to the listed anchor vertices.
    /// The assigned id is predictable (ids are never reused): it is returned
    /// by `push` and may be referenced by later ops in the same batch.
    AddVertex {
        /// `(anchor vertex, edge weight)` pairs; dead anchors are skipped
        /// with a warning, matching unbatched stream semantics.
        anchors: Vec<(VertexId, Weight)>,
    },
    /// Delete a vertex and all incident edges. Subsumes any buffered edge
    /// ops incident to the vertex.
    DeleteVertex(VertexId),
}

/// Canonical (undirected) edge key: endpoints stored low-to-high so that
/// `(u, v)` and `(v, u)` coalesce onto the same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Smaller endpoint.
    pub lo: VertexId,
    /// Larger endpoint.
    pub hi: VertexId,
}

impl EdgeKey {
    /// Builds the canonical key for an endpoint pair. Callers must have
    /// rejected self-loops already.
    pub fn new(u: VertexId, v: VertexId) -> Self {
        if u <= v {
            EdgeKey { lo: u, hi: v }
        } else {
            EdgeKey { lo: v, hi: u }
        }
    }

    /// True if either endpoint equals `v`.
    pub fn touches(&self, v: VertexId) -> bool {
        self.lo == v || self.hi == v
    }
}
