//! The ingestion pipeline: admission → coalescing → scheduled batch flush.
//!
//! [`IngestPipeline`] sits between update producers and an
//! [`AnytimeEngine`]. Producers call [`IngestPipeline::push`] with
//! [`UpdateOp`]s and receive an [`Admission`] decision plus any warnings;
//! the driver calls [`IngestPipeline::maybe_flush`] at its serving cadence
//! (and [`IngestPipeline::flush`] at barriers such as `converge` or end of
//! stream). A flush drains the coalescing buffer through the engine's
//! *batched* kernels — one `add_vertices`, one `delete_edges`, one
//! `add_edges`, then per-edge relaxing reweights and per-vertex deletions —
//! so a burst of updates pays one IA/RC disturbance per batch instead of
//! per change.
//!
//! Exactness contract: as long as no op is [`Admission::Shed`], flushing any
//! prefix schedule and converging yields exactly the distances of the same
//! ops applied one at a time (see `tests/ingest_differential.rs` at the
//! workspace root).

use crate::coalesce::Coalescer;
use crate::op::UpdateOp;
use crate::policy::DrainPolicy;
use crate::queue::{Admission, IngestQueue};
use aa_core::{AdditionStrategy, AnytimeEngine, Endpoint, VertexBatch};
use aa_graph::{VertexId, Weight};
use aa_obs::MetricsRegistry;

/// Configuration for an [`IngestPipeline`].
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Hard queue capacity; ops beyond it are shed.
    pub queue_cap: usize,
    /// Throttling threshold; pushes above it are admitted but `Throttled`.
    pub high_watermark: usize,
    /// When the scheduler drains the buffer.
    pub policy: DrainPolicy,
    /// Processor-assignment strategy for flushed vertex additions.
    pub strategy: AdditionStrategy,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_cap: 4096,
            high_watermark: 3072,
            policy: DrainPolicy::SizeTriggered(64),
            strategy: AdditionStrategy::CutEdgePs,
        }
    }
}

/// Result of one accepted (or shed) push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushOutcome {
    /// Backpressure decision. No-ops (duplicate adds, deletes of missing
    /// edges) are reported `Accepted` without consuming queue space.
    pub admission: Admission,
    /// Human-readable warnings, phrased exactly like the unbatched stream
    /// path so both share output expectations.
    pub warnings: Vec<String>,
    /// Predicted id for an admitted [`UpdateOp::AddVertex`]; later ops in
    /// the same batch may reference it.
    pub new_vertex: Option<VertexId>,
    /// Whether the op actually entered the buffer. False for no-ops (they
    /// change nothing and need no durability) and for shed ops; the durable
    /// serve path only write-ahead-logs ops with `enqueued == true`.
    pub enqueued: bool,
}

/// Counters accumulated over the pipeline's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Ops admitted below the high watermark.
    pub accepted: u64,
    /// Ops admitted above the high watermark.
    pub throttled: u64,
    /// Ops dropped at hard capacity.
    pub shed: u64,
    /// Ops that were valid but had no effect (never enqueued).
    pub noops: u64,
    /// Ops rejected with an error.
    pub rejected: u64,
    /// Buffered ops discarded by [`IngestPipeline::abort_pending`] after a
    /// failed durability commit.
    pub aborted: u64,
    /// Batch flushes performed.
    pub flushes: u64,
    /// Raw ops drained by flushes.
    pub raw_in: u64,
    /// Materialized engine actions produced by flushes.
    pub actions_out: u64,
}

impl IngestStats {
    /// Fraction of drained raw ops absorbed by coalescing — 0 when nothing
    /// has been flushed, and never negative because each raw op materializes
    /// at most one coalesced action.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.raw_in == 0 {
            0.0
        } else {
            1.0 - self.actions_out as f64 / self.raw_in as f64
        }
    }
}

/// What one flush did, in both op counts and cluster time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushReport {
    /// Which policy (or barrier) triggered the flush.
    pub trigger: &'static str,
    /// Raw ops drained from the queue.
    pub raw_ops: usize,
    /// Vertices created (one batched `add_vertices` call).
    pub vertex_adds: usize,
    /// Edges inserted (includes the re-add half of weight increases).
    pub edge_adds: usize,
    /// Edges removed (includes the delete half of weight increases).
    pub edge_deletes: usize,
    /// Pure relaxing weight decreases.
    pub reweights: usize,
    /// Vertices deleted.
    pub vertex_deletes: usize,
    /// Coalesced actions materialized (each edge key and vertex op once).
    pub actions: usize,
    /// LogP cluster time the flush consumed, in virtual microseconds.
    pub makespan_us: f64,
}

/// Streaming ingestion pipeline; see the module docs.
#[derive(Debug, Clone)]
pub struct IngestPipeline {
    config: IngestConfig,
    queue: IngestQueue,
    coalescer: Coalescer,
    stats: IngestStats,
    metrics: MetricsRegistry,
    /// RC-step counter at the last flush; `None` until the pipeline first
    /// observes the engine (the step cadence arms itself then, so a
    /// long-running engine doesn't trigger an immediate flush).
    last_flush_rc_step: Option<usize>,
}

impl IngestPipeline {
    /// Builds a pipeline, validating queue and policy parameters.
    pub fn new(config: IngestConfig) -> Result<Self, String> {
        config.policy.validate()?;
        let queue = IngestQueue::new(config.queue_cap, config.high_watermark)?;
        let mut metrics = MetricsRegistry::new();
        metrics.set_help(
            "aa_ingest_ops_total",
            "Ops pushed into the ingest pipeline, by admission outcome",
        );
        metrics.set_help(
            "aa_ingest_flushes_total",
            "Coalesced batch flushes, by drain trigger",
        );
        metrics.set_help(
            "aa_ingest_applied_total",
            "Materialized engine operations, by kind",
        );
        metrics.set_help(
            "aa_ingest_queue_depth",
            "Raw ops buffered since the last flush",
        );
        metrics.set_help(
            "aa_ingest_coalesce_ratio",
            "Fraction of drained raw ops absorbed by coalescing",
        );
        metrics.set_help("aa_ingest_batch_size", "Raw ops drained per flush");
        metrics.declare_histogram(
            "aa_ingest_batch_size",
            &[
                1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
            ],
        );
        metrics.set_help(
            "aa_ingest_apply_latency_us",
            "End-to-end enqueue-to-applied latency in LogP virtual microseconds",
        );
        metrics.declare_histogram(
            "aa_ingest_apply_latency_us",
            &[10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8],
        );
        Ok(IngestPipeline {
            config,
            queue,
            coalescer: Coalescer::new(),
            stats: IngestStats::default(),
            metrics,
            last_flush_rc_step: None,
        })
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Raw ops buffered since the last flush.
    pub fn pending_ops(&self) -> usize {
        self.queue.depth()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Snapshot of the pipeline's metrics (counters, gauges, histograms),
    /// ready to `merge` with the engine's `metrics_registry()`.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.metrics.clone()
    }

    /// Pushes one update. Invalid ops (dead endpoints, self-loops, zero
    /// weights) return `Err` and buffer nothing; valid no-ops return
    /// warnings without consuming queue space; everything else is subject
    /// to admission control and, if admitted, folded into the coalescing
    /// buffer.
    pub fn push(&mut self, engine: &AnytimeEngine, op: UpdateOp) -> Result<PushOutcome, String> {
        let res = self.push_inner(engine, op);
        if res.is_err() {
            self.stats.rejected += 1;
            self.metrics
                .inc_counter("aa_ingest_ops_total", &[("outcome", "rejected")], 1);
        }
        res
    }

    fn push_inner(&mut self, engine: &AnytimeEngine, op: UpdateOp) -> Result<PushOutcome, String> {
        match op {
            UpdateOp::AddEdge(u, v, w) => {
                self.check_vertex(engine, u)?;
                self.check_vertex(engine, v)?;
                if u == v {
                    return Err(format!("self-loop ({u},{u}) is not a valid edge"));
                }
                if w == 0 {
                    return Err(format!("edge ({u},{v}) weight must be at least 1"));
                }
                if self.projected_weight(engine, u, v).is_some() {
                    return Ok(self.noop(vec![format!("warning: edge ({u},{v}) already present")]));
                }
                Ok(self.admit_fold(engine, |c| c.add_edge(u, v, w)))
            }
            UpdateOp::DeleteEdge(u, v) => {
                self.check_vertex(engine, u)?;
                self.check_vertex(engine, v)?;
                if self.projected_weight(engine, u, v).is_none() {
                    return Ok(self.noop(vec![format!("warning: edge ({u},{v}) not found")]));
                }
                Ok(self.admit_fold(engine, |c| c.delete_edge(u, v)))
            }
            UpdateOp::Reweight(u, v, w) => {
                self.check_vertex(engine, u)?;
                self.check_vertex(engine, v)?;
                if w == 0 {
                    return Err(format!("edge ({u},{v}) weight must be at least 1"));
                }
                match self.projected_weight(engine, u, v) {
                    Some(w0) if w0 != w => Ok(self.admit_fold(engine, |c| c.reweight(u, v, w))),
                    _ => Ok(self.noop(vec![format!(
                        "warning: weight change on ({u},{v}) was a no-op"
                    )])),
                }
            }
            UpdateOp::DeleteVertex(v) => {
                if !self.projected_alive(engine, v) {
                    return Ok(self.noop(vec![format!("warning: vertex {v} not alive")]));
                }
                Ok(self.admit_fold(engine, |c| c.delete_vertex(v)))
            }
            UpdateOp::AddVertex { anchors } => {
                let mut kept: Vec<(VertexId, Weight)> = Vec::new();
                let mut dropped: Vec<VertexId> = Vec::new();
                for (a, w) in anchors {
                    if w == 0 {
                        return Err(format!("anchor edge to {a} must have weight at least 1"));
                    }
                    if !self.projected_alive(engine, a) {
                        dropped.push(a);
                    } else if !kept.iter().any(|&(k, _)| k == a) {
                        kept.push((a, w));
                    }
                }
                let id = (engine.graph().capacity() + self.coalescer.pending_vertices().len())
                    as VertexId;
                let mut outcome = self.admit_fold(engine, |c| c.add_vertex(id, kept));
                if outcome.admission.is_admitted() {
                    outcome.new_vertex = Some(id);
                }
                if !dropped.is_empty() {
                    outcome
                        .warnings
                        .push(format!("warning: dead anchors skipped: {dropped:?}"));
                }
                Ok(outcome)
            }
        }
    }

    /// Flushes now if the drain policy asks for it.
    pub fn maybe_flush(
        &mut self,
        engine: &mut AnytimeEngine,
    ) -> Result<Option<FlushReport>, String> {
        let base = *self.last_flush_rc_step.get_or_insert(engine.rc_steps());
        let steps_since = engine.rc_steps().saturating_sub(base);
        let due = self.config.policy.should_flush(
            self.queue.depth(),
            steps_since,
            engine.outstanding_rows(),
        );
        if due {
            let trigger = self.config.policy.trigger_label();
            Ok(Some(self.flush_inner(engine, trigger)?))
        } else {
            Ok(None)
        }
    }

    /// Unconditionally drains the buffer (a barrier flush). Returns `None`
    /// when nothing was buffered.
    pub fn flush(&mut self, engine: &mut AnytimeEngine) -> Result<Option<FlushReport>, String> {
        if self.queue.depth() == 0 && self.coalescer.is_empty() {
            return Ok(None);
        }
        Ok(Some(self.flush_inner(engine, "barrier")?))
    }

    fn flush_inner(
        &mut self,
        engine: &mut AnytimeEngine,
        trigger: &'static str,
    ) -> Result<FlushReport, String> {
        let t0 = engine.makespan_us();
        let base_cap = engine.graph().capacity();

        // Phase 1: vertex additions, one batched call, ids verified against
        // the predictions handed out at push time.
        let pending = self.coalescer.pending_vertices();
        let vertex_adds = pending.len();
        if vertex_adds > 0 {
            let mut batch = VertexBatch::new(vertex_adds);
            for (i, p) in pending.iter().enumerate() {
                if p.id as usize != base_cap + i {
                    return Err(format!(
                        "stale predicted vertex id {} (engine capacity is {base_cap}): \
                         the engine was mutated outside the ingest pipeline",
                        p.id
                    ));
                }
                for &(a, w) in &p.anchors {
                    let ep = if (a as usize) < base_cap {
                        Endpoint::Existing(a)
                    } else {
                        Endpoint::New(a as usize - base_cap)
                    };
                    batch.connect(i, ep, w);
                }
            }
            batch.validate(base_cap)?;
            let ids = engine.add_vertices(&batch, self.config.strategy);
            for (i, &id) in ids.iter().enumerate() {
                if id as usize != base_cap + i {
                    return Err(format!(
                        "engine assigned vertex id {id} where {} was predicted",
                        base_cap + i
                    ));
                }
            }
        }

        // Phase 2: edge nets resolved against the post-addition graph, then
        // applied through the batched kernels: deletes first (one combined
        // invalidation sweep), inserts second, relaxing decreases last.
        let resolved = self.coalescer.resolve(engine.graph());
        if !resolved.deletes.is_empty() {
            engine.delete_edges(&resolved.deletes);
        }
        if !resolved.adds.is_empty() {
            engine.add_edges(&resolved.adds);
        }
        for &(u, v, w) in &resolved.decreases {
            engine.change_edge_weight(u, v, w);
        }

        // Phase 3: vertex deletions (each one quiesces, invalidates, and
        // reseeds; incident edge work was subsumed at push time).
        let vertex_deletes: Vec<VertexId> = self.coalescer.pending_deletes().collect();
        for &v in &vertex_deletes {
            engine.delete_vertex(v);
        }

        // Bookkeeping: drain timestamps, update counters and gauges.
        let drained = self.queue.drain();
        let raw_ops = drained.len();
        let actions = resolved.actions + vertex_adds + vertex_deletes.len();
        let t1 = engine.makespan_us();
        self.coalescer.clear();
        self.last_flush_rc_step = Some(engine.rc_steps());

        self.stats.flushes += 1;
        self.stats.raw_in += raw_ops as u64;
        self.stats.actions_out += actions as u64;
        self.metrics
            .inc_counter("aa_ingest_flushes_total", &[("trigger", trigger)], 1);
        self.metrics
            .observe("aa_ingest_batch_size", &[], raw_ops as f64);
        for ts in drained {
            self.metrics
                .observe("aa_ingest_apply_latency_us", &[], (t1 - ts).max(0.0));
        }
        let kinds: [(&str, usize); 5] = [
            ("vertex-add", vertex_adds),
            ("edge-delete", resolved.deletes.len()),
            ("edge-add", resolved.adds.len()),
            ("reweight", resolved.decreases.len()),
            ("vertex-delete", vertex_deletes.len()),
        ];
        for (kind, n) in kinds {
            if n > 0 {
                self.metrics
                    .inc_counter("aa_ingest_applied_total", &[("kind", kind)], n as u64);
            }
        }
        self.metrics.set_gauge("aa_ingest_queue_depth", &[], 0.0);
        self.metrics
            .set_gauge("aa_ingest_coalesce_ratio", &[], self.stats.coalesce_ratio());

        Ok(FlushReport {
            trigger,
            raw_ops,
            vertex_adds,
            edge_adds: resolved.adds.len(),
            edge_deletes: resolved.deletes.len(),
            reweights: resolved.decreases.len(),
            vertex_deletes: vertex_deletes.len(),
            actions,
            makespan_us: t1 - t0,
        })
    }

    /// Projected-state liveness: alive in the engine and not
    /// pending-deleted, or a buffered addition's predicted id.
    fn projected_alive(&self, engine: &AnytimeEngine, v: VertexId) -> bool {
        if self.coalescer.is_pending_delete(v) {
            return false;
        }
        if (v as usize) < engine.graph().capacity() {
            engine.graph().is_alive(v)
        } else {
            self.coalescer.is_pending_vertex(v)
        }
    }

    fn check_vertex(&self, engine: &AnytimeEngine, v: VertexId) -> Result<(), String> {
        if self.projected_alive(engine, v) {
            Ok(())
        } else {
            Err(format!("vertex {v} is out of range or not alive"))
        }
    }

    fn projected_weight(&self, engine: &AnytimeEngine, u: VertexId, v: VertexId) -> Option<Weight> {
        self.coalescer.projected_weight(engine.graph(), u, v)
    }

    /// Records a valid-but-effectless op: warnings only, no queue traffic.
    fn noop(&mut self, warnings: Vec<String>) -> PushOutcome {
        self.stats.noops += 1;
        self.metrics
            .inc_counter("aa_ingest_ops_total", &[("outcome", "noop")], 1);
        PushOutcome {
            admission: Admission::Accepted,
            warnings,
            new_vertex: None,
            enqueued: false,
        }
    }

    /// Runs admission control and, if admitted, folds the op into the
    /// coalescing buffer via `fold`.
    fn admit_fold<F: FnOnce(&mut Coalescer)>(
        &mut self,
        engine: &AnytimeEngine,
        fold: F,
    ) -> PushOutcome {
        let admission = self.queue.admit(engine.makespan_us());
        let outcome_label = match admission {
            Admission::Accepted => {
                self.stats.accepted += 1;
                "accepted"
            }
            Admission::Throttled { .. } => {
                self.stats.throttled += 1;
                "throttled"
            }
            Admission::Shed => {
                self.stats.shed += 1;
                "shed"
            }
        };
        self.metrics
            .inc_counter("aa_ingest_ops_total", &[("outcome", outcome_label)], 1);
        if admission.is_admitted() {
            fold(&mut self.coalescer);
        }
        self.metrics
            .set_gauge("aa_ingest_queue_depth", &[], self.queue.depth() as f64);
        PushOutcome {
            enqueued: admission.is_admitted(),
            admission,
            warnings: Vec::new(),
            new_vertex: None,
        }
    }

    /// Discards every buffered (not yet flushed) op: queue entries and the
    /// coalesced nets they folded into. The durable serve path calls this
    /// when a WAL group commit fails — the buffered ops were never
    /// acknowledged, so dropping them keeps the engine consistent with what
    /// clients were promised. Returns the number of raw ops discarded.
    pub fn abort_pending(&mut self) -> usize {
        let dropped = self.queue.drain().len();
        self.coalescer.clear();
        self.stats.aborted += dropped as u64;
        self.metrics
            .inc_counter("aa_ingest_aborted_total", &[], dropped as u64);
        self.metrics.set_gauge("aa_ingest_queue_depth", &[], 0.0);
        dropped
    }
}
