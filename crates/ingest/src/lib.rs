//! `aa-ingest` — deterministic streaming update ingestion for the anytime
//! engine.
//!
//! The paper's "anywhere" property folds dynamic changes into the running
//! computation; this crate makes that affordable under sustained update
//! traffic by sitting between producers and [`aa_core::AnytimeEngine`]:
//!
//! 1. a **bounded admission queue** with an explicit backpressure contract
//!    ([`Admission::Accepted`] / [`Admission::Throttled`] /
//!    [`Admission::Shed`]);
//! 2. a **coalescing buffer** ([`Coalescer`]) that folds each run of
//!    updates into its net effect per edge key — add-then-delete cancels,
//!    repeated reweights are last-wins, vertex-adds are ordered before
//!    their incident edge-adds, and delete-vertex subsumes buffered
//!    incident edge ops;
//! 3. a **batch scheduler** with pluggable [`DrainPolicy`]s (size-triggered,
//!    RC-step-interleaved, adaptive to outstanding-row pressure) that
//!    flushes coalesced batches through the engine's batched kernels.
//!
//! Everything is deterministic: ordered containers, virtual LogP time for
//! latency accounting, no wall clocks and no randomness.

#![forbid(unsafe_code)]

mod coalesce;
mod op;
mod pipeline;
mod policy;
mod queue;

pub use coalesce::{Coalescer, EdgeNet, PendingVertex, PresentNet, ResolvedBatch};
pub use op::{EdgeKey, UpdateOp};
pub use pipeline::{FlushReport, IngestConfig, IngestPipeline, IngestStats, PushOutcome};
pub use policy::DrainPolicy;
pub use queue::{Admission, IngestQueue};

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::{AnytimeEngine, EngineConfig};
    use aa_graph::generators;

    fn engine(n: usize, procs: usize) -> AnytimeEngine {
        let g = generators::barabasi_albert(n, 2, 1, 7);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: procs,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(16 * procs + 64);
        e
    }

    /// First `k` vertex pairs with no edge between them, in id order.
    fn absent_pairs(e: &AnytimeEngine, k: usize) -> Vec<(u32, u32)> {
        let n = e.graph().capacity() as u32;
        let mut out = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if e.graph().edge_weight(u, v).is_none() {
                    out.push((u, v));
                    if out.len() == k {
                        return out;
                    }
                }
            }
        }
        out
    }

    fn pipeline_with(policy: DrainPolicy, cap: usize, hwm: usize) -> IngestPipeline {
        IngestPipeline::new(IngestConfig {
            queue_cap: cap,
            high_watermark: hwm,
            policy,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn add_then_delete_cancels_to_nothing() {
        let mut e = engine(30, 3);
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(64), 128, 96);
        let (u, v) = absent_pairs(&e, 1)[0];
        let before_edges = e.graph().edge_count();
        let before_us = e.makespan_us();
        assert_eq!(
            p.push(&e, UpdateOp::AddEdge(u, v, 3)).unwrap().admission,
            Admission::Accepted
        );
        p.push(&e, UpdateOp::DeleteEdge(u, v)).unwrap();
        let report = p.flush(&mut e).unwrap().unwrap();
        assert_eq!(report.raw_ops, 2);
        assert_eq!(report.actions, 0, "net effect is empty: {report:?}");
        assert_eq!(e.graph().edge_count(), before_edges);
        // A fully-cancelled batch costs no IA/RC disturbance.
        assert!(e.makespan_us() - before_us < 1.0);
        assert!(p.stats().coalesce_ratio() > 0.99);
    }

    #[test]
    fn reweights_are_last_wins() {
        let mut e = engine(30, 3);
        let (u, v, w0) = e.graph().edges().next().unwrap();
        let target = if w0 == 9 { 8 } else { 9 };
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(64), 128, 96);
        p.push(&e, UpdateOp::Reweight(u, v, w0 + 1)).unwrap();
        p.push(&e, UpdateOp::Reweight(u, v, w0 + 4)).unwrap();
        p.push(&e, UpdateOp::Reweight(u, v, target)).unwrap();
        let report = p.flush(&mut e).unwrap().unwrap();
        assert_eq!(report.actions, 1);
        assert_eq!(e.graph().edge_weight(u, v), Some(target));
    }

    #[test]
    fn delete_vertex_subsumes_pending_edge_ops() {
        let mut e = engine(30, 3);
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(64), 128, 96);
        p.push(&e, UpdateOp::AddEdge(5, 20, 2)).unwrap();
        p.push(&e, UpdateOp::DeleteVertex(5)).unwrap();
        // Edge ops on the pending-deleted vertex are now rejected.
        let err = p.push(&e, UpdateOp::AddEdge(5, 6, 1)).unwrap_err();
        assert!(err.contains("not alive"), "{err}");
        let report = p.flush(&mut e).unwrap().unwrap();
        assert_eq!(report.edge_adds, 0, "subsumed: {report:?}");
        assert_eq!(report.vertex_deletes, 1);
        assert!(!e.graph().is_alive(5));
        e.run_to_convergence(256);
        e.check_invariants().unwrap();
    }

    #[test]
    fn pending_vertex_ids_are_predicted_and_usable() {
        let mut e = engine(30, 3);
        let cap = e.graph().capacity() as u32;
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(64), 128, 96);
        let got = p
            .push(
                &e,
                UpdateOp::AddVertex {
                    anchors: vec![(0, 1)],
                },
            )
            .unwrap();
        assert_eq!(got.new_vertex, Some(cap));
        // The predicted id is immediately addressable, including by a
        // second pending vertex anchoring onto it.
        let got2 = p
            .push(
                &e,
                UpdateOp::AddVertex {
                    anchors: vec![(cap, 2)],
                },
            )
            .unwrap();
        assert_eq!(got2.new_vertex, Some(cap + 1));
        p.push(&e, UpdateOp::AddEdge(cap + 1, 3, 5)).unwrap();
        let report = p.flush(&mut e).unwrap().unwrap();
        assert_eq!(report.vertex_adds, 2);
        assert_eq!(e.graph().edge_weight(cap, cap + 1), Some(2));
        assert_eq!(e.graph().edge_weight(cap + 1, 3), Some(5));
        e.run_to_convergence(256);
        e.check_invariants().unwrap();
    }

    #[test]
    fn backpressure_contract_transitions() {
        let e = engine(30, 3);
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(1024), 4, 2);
        let pairs = absent_pairs(&e, 5);
        let mk = |i: usize| UpdateOp::AddEdge(pairs[i].0, pairs[i].1, 1);
        assert_eq!(p.push(&e, mk(0)).unwrap().admission, Admission::Accepted);
        assert_eq!(p.push(&e, mk(1)).unwrap().admission, Admission::Accepted);
        assert_eq!(
            p.push(&e, mk(2)).unwrap().admission,
            Admission::Throttled { retry_after: 1 }
        );
        assert_eq!(
            p.push(&e, mk(3)).unwrap().admission,
            Admission::Throttled { retry_after: 2 }
        );
        // Hard cap: shed, not buffered.
        assert_eq!(p.push(&e, mk(4)).unwrap().admission, Admission::Shed);
        assert_eq!(p.pending_ops(), 4);
        let s = p.stats();
        assert_eq!((s.accepted, s.throttled, s.shed), (2, 2, 1));
    }

    #[test]
    fn noops_and_errors_consume_no_queue_space() {
        let e = engine(30, 3);
        let (u, v, w) = e.graph().edges().next().unwrap();
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(64), 8, 8);
        let out = p.push(&e, UpdateOp::AddEdge(u, v, w)).unwrap();
        assert!(out.warnings[0].contains("already present"));
        let out = p.push(&e, UpdateOp::DeleteEdge(0, 29)).unwrap();
        assert!(out.warnings.is_empty() || out.warnings[0].contains("not found"));
        assert!(p.push(&e, UpdateOp::AddEdge(0, 0, 1)).is_err());
        assert!(p.push(&e, UpdateOp::AddEdge(0, 4000, 1)).is_err());
        assert!(p.push(&e, UpdateOp::Reweight(u, v, 0)).is_err());
        assert!(p.pending_ops() <= 1);
        assert!(p.stats().rejected == 3);
    }

    #[test]
    fn drain_policies_trigger_as_documented() {
        let mut e = engine(30, 3);
        let pairs = absent_pairs(&e, 4);
        // Size-triggered.
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(2), 64, 48);
        p.push(&e, UpdateOp::AddEdge(pairs[0].0, pairs[0].1, 1))
            .unwrap();
        assert!(p.maybe_flush(&mut e).unwrap().is_none());
        p.push(&e, UpdateOp::AddEdge(pairs[1].0, pairs[1].1, 1))
            .unwrap();
        let r = p.maybe_flush(&mut e).unwrap().unwrap();
        assert_eq!((r.trigger, r.raw_ops), ("size", 2));
        // RC-step-interleaved.
        let mut p = pipeline_with(DrainPolicy::RcStepInterleaved(2), 64, 48);
        p.push(&e, UpdateOp::AddEdge(pairs[2].0, pairs[2].1, 1))
            .unwrap();
        assert!(p.maybe_flush(&mut e).unwrap().is_none());
        e.rc_step();
        e.rc_step();
        assert_eq!(p.maybe_flush(&mut e).unwrap().unwrap().trigger, "steps");
        // Adaptive: converged engine has zero outstanding rows, so pressure
        // is low and one buffered op flushes immediately.
        e.run_to_convergence(256);
        let mut p = pipeline_with(
            DrainPolicy::Adaptive {
                max_outstanding: 0,
                max_pending: 32,
            },
            64,
            48,
        );
        p.push(&e, UpdateOp::AddEdge(pairs[3].0, pairs[3].1, 1))
            .unwrap();
        assert_eq!(p.maybe_flush(&mut e).unwrap().unwrap().trigger, "adaptive");
    }

    #[test]
    fn metrics_registry_reports_ingest_series() {
        let mut e = engine(30, 3);
        let mut p = pipeline_with(DrainPolicy::SizeTriggered(64), 128, 96);
        let pairs = absent_pairs(&e, 2);
        p.push(&e, UpdateOp::AddEdge(pairs[0].0, pairs[0].1, 2))
            .unwrap();
        p.push(&e, UpdateOp::DeleteEdge(pairs[0].0, pairs[0].1))
            .unwrap();
        p.push(&e, UpdateOp::AddEdge(pairs[1].0, pairs[1].1, 2))
            .unwrap();
        p.flush(&mut e).unwrap().unwrap();
        let m = p.metrics_registry();
        assert_eq!(
            m.counter_value("aa_ingest_ops_total", &[("outcome", "accepted")]),
            3
        );
        assert_eq!(
            m.counter_value("aa_ingest_flushes_total", &[("trigger", "barrier")]),
            1
        );
        assert_eq!(
            m.counter_value("aa_ingest_applied_total", &[("kind", "edge-add")]),
            1
        );
        assert_eq!(m.gauge_value("aa_ingest_queue_depth", &[]), Some(0.0));
        // Ingest series merge cleanly into the engine's registry.
        let mut all = e.metrics_registry();
        all.merge(&m);
        let json = all.to_json();
        assert!(json.contains("aa_ingest_apply_latency_us"));
        assert!(json.contains("aa_rc_steps_total"));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(IngestPipeline::new(IngestConfig {
            queue_cap: 0,
            ..Default::default()
        })
        .is_err());
        assert!(IngestPipeline::new(IngestConfig {
            queue_cap: 8,
            high_watermark: 9,
            ..Default::default()
        })
        .is_err());
        assert!(IngestPipeline::new(IngestConfig {
            policy: DrainPolicy::SizeTriggered(0),
            ..Default::default()
        })
        .is_err());
    }
}
