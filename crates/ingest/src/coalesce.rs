//! The coalescing buffer: folds a run of updates into their *net effect*.
//!
//! Per undirected edge key the buffer keeps a symbolic transfer function
//! ([`EdgeNet`]) from the edge's pre-flush state to its post-flush state,
//! rather than a list of ops. Folding an op composes it onto the function,
//! which gives the contract semantics for free:
//!
//! - add-then-delete of the same edge cancels (the net maps absent → absent);
//! - repeated reweights are last-wins (`Set(w)` overwrites `Set(w0)`);
//! - duplicate adds are no-ops (add on a present edge keeps its weight,
//!   matching the unbatched engine API);
//! - delete-then-add nets out to a single reweight when the edge existed.
//!
//! Because the net is a function of the pre-state, resolution at flush time
//! against the live graph is exact for *any* interleaving — the buffer never
//! needs to know whether the edge currently exists when an op arrives.

use crate::op::EdgeKey;
use aa_graph::{Graph, VertexId, Weight};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome for an edge that existed (with some weight `w0`) before the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresentNet {
    /// Edge survives with its original weight.
    Keep,
    /// Edge is removed.
    Remove,
    /// Edge survives with the given weight.
    Set(Weight),
}

/// Net effect of all buffered ops on one edge key, as a transfer function
/// from pre-flush state to post-flush state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeNet {
    /// Post-state if the edge was absent before the batch: `Some(w)` means
    /// it ends up present with weight `w`, `None` means still absent.
    pub if_absent: Option<Weight>,
    /// Post-state if the edge was present before the batch.
    pub if_present: PresentNet,
}

impl EdgeNet {
    /// The identity net: no buffered op touches this edge.
    pub fn identity() -> Self {
        EdgeNet {
            if_absent: None,
            if_present: PresentNet::Keep,
        }
    }

    /// True if the net leaves every pre-state unchanged.
    pub fn is_identity(&self) -> bool {
        self.if_absent.is_none() && self.if_present == PresentNet::Keep
    }

    /// Composes an `AddEdge(w)` onto the net (applied after everything
    /// already folded). Adding an already-present edge is a no-op, matching
    /// `AnytimeEngine::add_edge`.
    pub fn then_add(&mut self, w: Weight) {
        if self.if_absent.is_none() {
            self.if_absent = Some(w);
        }
        if self.if_present == PresentNet::Remove {
            self.if_present = PresentNet::Set(w);
        }
    }

    /// Composes a `DeleteEdge` onto the net. Deleting an absent edge is a
    /// no-op, so both branches simply end absent.
    pub fn then_delete(&mut self) {
        self.if_absent = None;
        self.if_present = PresentNet::Remove;
    }

    /// Composes a `Reweight(w)` onto the net. Reweighting an absent edge is
    /// a no-op, matching `AnytimeEngine::change_edge_weight`.
    pub fn then_reweight(&mut self, w: Weight) {
        if self.if_absent.is_some() {
            self.if_absent = Some(w);
        }
        match self.if_present {
            PresentNet::Keep | PresentNet::Set(_) => self.if_present = PresentNet::Set(w),
            PresentNet::Remove => {}
        }
    }

    /// Evaluates the net against a concrete pre-state.
    pub fn eval(&self, pre: Option<Weight>) -> Option<Weight> {
        match pre {
            None => self.if_absent,
            Some(w0) => match self.if_present {
                PresentNet::Keep => Some(w0),
                PresentNet::Remove => None,
                PresentNet::Set(w) => Some(w),
            },
        }
    }
}

/// One buffered vertex addition. The id was predicted (and handed to the
/// producer) at push time; anchors may be stripped later by a subsuming
/// vertex deletion.
#[derive(Debug, Clone)]
pub struct PendingVertex {
    /// The id this vertex will receive at flush time.
    pub id: VertexId,
    /// `(anchor, weight)` edges created together with the vertex.
    pub anchors: Vec<(VertexId, Weight)>,
}

/// Concrete ops an [`EdgeNet`] resolves to against a live graph, in flush
/// order. Weight increases are expressed as delete + re-add because that is
/// what the engine's `change_edge_weight` does internally, and the delete
/// half then shares the single batched invalidation sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolvedBatch {
    /// Edges to remove via `delete_edges` (includes the delete half of
    /// weight increases).
    pub deletes: Vec<(VertexId, VertexId)>,
    /// Edges to insert via `add_edges` (includes the re-add half of weight
    /// increases).
    pub adds: Vec<(VertexId, VertexId, Weight)>,
    /// Pure weight decreases, applied via `change_edge_weight` (a relaxation
    /// with no invalidation cost).
    pub decreases: Vec<(VertexId, VertexId, Weight)>,
    /// Number of edge keys that resolved to any action at all. A weight
    /// increase lands in both `deletes` and `adds` but counts once here.
    pub actions: usize,
}

impl ResolvedBatch {
    /// Total number of materialized edge operations.
    pub fn len(&self) -> usize {
        self.deletes.len() + self.adds.len() + self.decreases.len()
    }

    /// True when the batch resolves to nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The coalescing buffer: per-edge nets plus ordered vertex-level pending
/// work. All containers are ordered (`BTreeMap`/`BTreeSet`) so drains are
/// deterministic regardless of insertion history.
#[derive(Debug, Clone, Default)]
pub struct Coalescer {
    nets: BTreeMap<EdgeKey, EdgeNet>,
    pending_vertices: Vec<PendingVertex>,
    pending_deletes: BTreeSet<VertexId>,
}

impl Coalescer {
    /// An empty buffer.
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty() && self.pending_vertices.is_empty() && self.pending_deletes.is_empty()
    }

    /// Number of distinct edge keys with a non-identity net.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Buffered vertex additions, in push order.
    pub fn pending_vertices(&self) -> &[PendingVertex] {
        &self.pending_vertices
    }

    /// Buffered vertex deletions (ascending id order).
    pub fn pending_deletes(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.pending_deletes.iter().copied()
    }

    /// True if `v` is scheduled for deletion.
    pub fn is_pending_delete(&self, v: VertexId) -> bool {
        self.pending_deletes.contains(&v)
    }

    /// True if `v` is a predicted id of a buffered vertex addition.
    pub fn is_pending_vertex(&self, v: VertexId) -> bool {
        self.pending_vertices.iter().any(|p| p.id == v)
    }

    /// Folds an edge addition into the buffer.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.nets
            .entry(EdgeKey::new(u, v))
            .or_insert_with(EdgeNet::identity)
            .then_add(w);
        self.prune(EdgeKey::new(u, v));
    }

    /// Folds an edge deletion into the buffer.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) {
        self.nets
            .entry(EdgeKey::new(u, v))
            .or_insert_with(EdgeNet::identity)
            .then_delete();
        self.prune(EdgeKey::new(u, v));
    }

    /// Folds a reweight into the buffer.
    pub fn reweight(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.nets
            .entry(EdgeKey::new(u, v))
            .or_insert_with(EdgeNet::identity)
            .then_reweight(w);
        self.prune(EdgeKey::new(u, v));
    }

    /// Records a vertex addition whose id was predicted by the caller.
    pub fn add_vertex(&mut self, id: VertexId, anchors: Vec<(VertexId, Weight)>) {
        self.pending_vertices.push(PendingVertex { id, anchors });
    }

    /// Records a vertex deletion and subsumes buffered work incident to it:
    /// edge nets touching `v` are dropped, and anchor edges onto `v` are
    /// stripped from buffered vertex additions. If `v` is itself a buffered
    /// addition its creation is kept (id assignment must match unbatched
    /// replay, which also consumes the id) but its anchors are stripped, so
    /// it is created isolated and then deleted.
    pub fn delete_vertex(&mut self, v: VertexId) {
        self.nets.retain(|k, _| !k.touches(v));
        for p in &mut self.pending_vertices {
            if p.id == v {
                p.anchors.clear();
            } else {
                p.anchors.retain(|&(a, _)| a != v);
            }
        }
        self.pending_deletes.insert(v);
    }

    /// The buffer's view of edge `(u, v)` given the live `graph`: the base
    /// state (graph edge, or a buffered anchor edge when an endpoint is a
    /// pending vertex) passed through the buffered net.
    pub fn projected_weight(&self, graph: &Graph, u: VertexId, v: VertexId) -> Option<Weight> {
        let key = EdgeKey::new(u, v);
        let base = if (key.hi as usize) < graph.capacity() {
            graph.edge_weight(key.lo, key.hi)
        } else {
            // `hi` is a pending vertex; its only base edges are its anchors.
            self.pending_vertices
                .iter()
                .find(|p| p.id == key.hi)
                .and_then(|p| p.anchors.iter().find(|&&(a, _)| a == key.lo))
                .map(|&(_, w)| w)
        };
        match self.nets.get(&key) {
            Some(net) => net.eval(base),
            None => base,
        }
    }

    /// Resolves every buffered edge net against the live graph (which must
    /// already contain the batch's vertex additions). Keys resolve in
    /// ascending order, so output order is deterministic.
    pub fn resolve(&self, graph: &Graph) -> ResolvedBatch {
        let mut out = ResolvedBatch::default();
        for (key, net) in &self.nets {
            let pre = graph.edge_weight(key.lo, key.hi);
            match (pre, net.eval(pre)) {
                (Some(_), None) => {
                    out.deletes.push((key.lo, key.hi));
                    out.actions += 1;
                }
                (Some(w0), Some(w)) if w < w0 => {
                    out.decreases.push((key.lo, key.hi, w));
                    out.actions += 1;
                }
                (Some(w0), Some(w)) if w > w0 => {
                    out.deletes.push((key.lo, key.hi));
                    out.adds.push((key.lo, key.hi, w));
                    out.actions += 1;
                }
                (None, Some(w)) => {
                    out.adds.push((key.lo, key.hi, w));
                    out.actions += 1;
                }
                // Unchanged weight or still-absent: nothing to do.
                _ => {}
            }
        }
        out
    }

    /// Clears all buffered state (after a flush has applied it).
    pub fn clear(&mut self) {
        self.nets.clear();
        self.pending_vertices.clear();
        self.pending_deletes.clear();
    }

    /// Drops a net that composed back to the identity, so `net_count` and
    /// resolution skip keys whose ops fully cancelled.
    fn prune(&mut self, key: EdgeKey) {
        if self.nets.get(&key).is_some_and(|n| n.is_identity()) {
            self.nets.remove(&key);
        }
    }
}
