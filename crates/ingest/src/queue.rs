//! Bounded admission queue with explicit backpressure.
//!
//! The queue tracks the *raw* (pre-coalescing) ops admitted since the last
//! flush: its depth is what admission control and the backpressure contract
//! are defined over, and its per-op enqueue timestamps (LogP virtual
//! microseconds) feed the end-to-end apply-latency histogram.

use std::collections::VecDeque;

/// Admission decision for one pushed op — the backpressure contract.
///
/// - [`Admission::Accepted`]: op is buffered and will be applied at the next
///   flush.
/// - [`Admission::Throttled`]: op is buffered, but the queue is above its
///   high watermark; the producer should back off until roughly
///   `retry_after` ops have drained (at least one flush).
/// - [`Admission::Shed`]: the queue is at hard capacity and the op was
///   **dropped**. Shedding trades exactness for liveness; producers that
///   need the replayed state to match must re-submit shed ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Buffered below the high watermark.
    Accepted,
    /// Buffered above the high watermark; advisory back-off.
    Throttled {
        /// How many buffered ops must drain before the queue drops back
        /// below the high watermark.
        retry_after: u64,
    },
    /// Dropped at hard capacity.
    Shed,
}

impl Admission {
    /// True unless the op was dropped.
    pub fn is_admitted(&self) -> bool {
        !matches!(self, Admission::Shed)
    }
}

/// Bounded queue bookkeeping: depth, watermarks, enqueue timestamps.
#[derive(Debug, Clone)]
pub struct IngestQueue {
    cap: usize,
    high_watermark: usize,
    /// Enqueue makespan (LogP µs) of each admitted, not-yet-flushed op.
    enqueued_at_us: VecDeque<f64>,
}

impl IngestQueue {
    /// Builds a queue; `high_watermark` must not exceed `cap` and `cap`
    /// must be positive.
    pub fn new(cap: usize, high_watermark: usize) -> Result<Self, String> {
        if cap == 0 {
            return Err("ingest queue capacity must be positive".to_string());
        }
        if high_watermark > cap {
            return Err(format!(
                "ingest high watermark {high_watermark} exceeds queue capacity {cap}"
            ));
        }
        Ok(IngestQueue {
            cap,
            high_watermark,
            enqueued_at_us: VecDeque::new(),
        })
    }

    /// Raw ops admitted since the last flush.
    pub fn depth(&self) -> usize {
        self.enqueued_at_us.len()
    }

    /// Hard capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Throttling threshold.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Admits one op stamped with the current cluster makespan, or sheds it
    /// if the queue is full. Never stores anything on `Shed`.
    pub fn admit(&mut self, now_us: f64) -> Admission {
        if self.enqueued_at_us.len() >= self.cap {
            return Admission::Shed;
        }
        self.enqueued_at_us.push_back(now_us);
        let depth = self.enqueued_at_us.len() as u64;
        let hwm = self.high_watermark as u64;
        if depth > hwm {
            Admission::Throttled {
                retry_after: depth - hwm,
            }
        } else {
            Admission::Accepted
        }
    }

    /// Drains all enqueue timestamps (the flush path), returning them in
    /// admission order.
    pub fn drain(&mut self) -> Vec<f64> {
        self.enqueued_at_us.drain(..).collect()
    }
}
