//! Anytime snapshots of closeness centrality.

use aa_graph::VertexId;

/// An anytime snapshot of the running analysis: closeness estimates derived
/// from the current (possibly partial) distance vectors.
///
/// Estimates are computed with the papers' definition
/// `C(v) = 1 / Σ_{u reachable} d(v, u)` plus the harmonic variant
/// `H(v) = Σ 1/d(v, u)`, which is robust when the partial state has not yet
/// connected all components.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Recombination step at which the snapshot was taken.
    pub rc_step: usize,
    /// Virtual cluster time when the snapshot was taken (µs).
    pub makespan_us: f64,
    /// Closeness estimate per vertex id slot (0.0 for dead/isolated slots).
    pub closeness: Vec<f64>,
    /// Harmonic closeness estimate per vertex id slot.
    pub harmonic: Vec<f64>,
    /// Sum of the finite non-self distance estimates per vertex id slot —
    /// the exact integer denominator behind `closeness` (0 for dead or
    /// fully-unreached slots). Bound consumers need the integer sum, not the
    /// lossy `1/sum` float.
    pub dist_sum: Vec<u64>,
    /// Number of finite non-self targets per vertex id slot: how many
    /// vertices this row has found *some* path to so far.
    pub finite_targets: Vec<u32>,
    /// Per vertex id slot: the row has no scheduled (dirty) or in-flight
    /// (unacknowledged send) refinement work and its owner is up. Unlike the
    /// frame-global `max_overestimate_bound`, this lets a bound consumer
    /// widen only the rows that are actually still moving instead of
    /// widening every row whenever anything in the cluster is busy.
    pub row_quiescent: Vec<bool>,
    /// Per vertex id slot: whether the estimate is served from the frozen
    /// state of a currently-down processor (graceful degradation — still a
    /// valid upper-bound-derived estimate for the graph as it stood, but not
    /// being refined until the rank recovers).
    pub stale: Vec<bool>,
    /// Row sends in flight (sent but unacknowledged) when the snapshot was
    /// taken. Non-zero means the convergence test cannot pass yet — this is
    /// the figure the engine consults internally, surfaced so callers stop
    /// reaching into engine internals for it.
    pub outstanding_rows: usize,
    /// Processors up when the snapshot was taken.
    pub live_ranks: usize,
    /// Processors down when the snapshot was taken (every `stale` flag is
    /// owned by one of them).
    pub down_ranks: usize,
}

impl Snapshot {
    /// The `k` vertices with the highest closeness, descending (ties broken
    /// by lower vertex id for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, f64)> {
        let mut ranked: Vec<(VertexId, f64)> = self
            .closeness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0.0)
            .map(|(v, &c)| (v as VertexId, c))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The `k` vertices with the highest harmonic closeness, descending.
    pub fn top_k_harmonic(&self, k: usize) -> Vec<(VertexId, f64)> {
        let mut ranked: Vec<(VertexId, f64)> = self
            .harmonic
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0.0)
            .map(|(v, &c)| (v as VertexId, c))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Whether any estimate in the snapshot is stale (a rank was down when
    /// it was taken).
    pub fn any_stale(&self) -> bool {
        self.stale.iter().any(|&s| s)
    }

    /// Rows with no pending or in-flight refinement work on a live rank.
    pub fn quiescent_rows(&self) -> usize {
        self.row_quiescent.iter().filter(|&&q| q).count()
    }

    /// Mean absolute closeness error against a reference (e.g. the exact
    /// oracle), over slots live in the reference.
    pub fn mean_abs_error(&self, reference: &[f64]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (&got, &want) in self.closeness.iter().zip(reference) {
            if want > 0.0 {
                sum += (got - want).abs();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(closeness: Vec<f64>) -> Snapshot {
        Snapshot {
            rc_step: 0,
            makespan_us: 0.0,
            harmonic: closeness.clone(),
            stale: vec![false; closeness.len()],
            dist_sum: vec![0; closeness.len()],
            finite_targets: vec![0; closeness.len()],
            row_quiescent: vec![true; closeness.len()],
            closeness,
            outstanding_rows: 0,
            live_ranks: 1,
            down_ranks: 0,
        }
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let s = snap(vec![0.1, 0.5, 0.0, 0.5, 0.3]);
        let top = s.top_k(3);
        assert_eq!(top, vec![(1, 0.5), (3, 0.5), (4, 0.3)]);
        assert_eq!(s.top_k_harmonic(1), vec![(1, 0.5)]);
    }

    #[test]
    fn top_k_excludes_zero_scores() {
        let s = snap(vec![0.0, 0.2]);
        assert_eq!(s.top_k(10).len(), 1);
    }

    #[test]
    fn quiescent_rows_counts_flags() {
        let mut s = snap(vec![0.1, 0.2, 0.3]);
        assert_eq!(s.quiescent_rows(), 3);
        s.row_quiescent[1] = false;
        assert_eq!(s.quiescent_rows(), 2);
    }

    #[test]
    fn mean_abs_error_over_live_reference() {
        let s = snap(vec![0.1, 0.4, 0.0]);
        let reference = vec![0.2, 0.4, 0.0]; // slot 2 dead in reference
        assert!((s.mean_abs_error(&reference) - 0.05).abs() < 1e-12);
        assert_eq!(s.mean_abs_error(&[0.0, 0.0, 0.0]), 0.0);
    }
}
