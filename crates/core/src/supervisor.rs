//! Self-healing supervision: heartbeat failure detection, periodic per-rank
//! checkpoints, and the checkpoint-assisted recovery ladder.
//!
//! Where [`crate::resilience`] provides *manual* crash injection and
//! recovery, this module closes the loop: [`crate::config::ProcFaultConfig`]
//! schedules fail-stop crashes and stragglers, the recombination step
//! piggybacks one-byte heartbeats on every exchange, a
//! [`FailureDetector`](aa_runtime::FailureDetector) turns silence into
//! suspicion, and suspicion triggers the recovery ladder — without any
//! manual `fail_and_recover_processor` call:
//!
//! 1. **Checkpoint restore.** Every `checkpoint_interval` recombination
//!    steps each live rank serializes its rows (same CRC32-footed envelope
//!    as the whole-engine checkpoint, magic `AARK`) to its stable store. A
//!    replacement rank restores those rows — exact upper bounds of the
//!    pre-crash state — and reseeds only rows the checkpoint misses. One
//!    full boundary re-flood later the cluster is caught up: restored rows
//!    cannot improve, so no extra correction rounds flow.
//! 2. **SSSP reseed.** When the checkpoint is missing, fails its CRC, or
//!    predates a deletion (the `invalidation_epoch` changed — deletions are
//!    the one mutation that makes old rows unsafe lower-side), recovery
//!    falls back to the local initial-approximation reseed of
//!    [`crate::resilience`]. Reseeded rows improve after the inbound
//!    boundary flood, so extra delta rounds flow before reconvergence.
//! 3. **Baseline restart.** The measurable worst case: throw everything
//!    away and rerun the static pipeline
//!    ([`AdditionStrategy::BaselineRestart`](crate::AdditionStrategy)).
//!
//! The ladder is ordered by recombination bytes moved: 1 < 2 < 3 (asserted
//! by the `selfheal` integration tests).

use crate::checkpoint::{bad, read_framed, read_u32, read_u64, write_framed};
use crate::engine::AnytimeEngine;
use crate::proc_state::ProcState;
use crate::resilience::{RecoveryError, RecoveryReport};
use aa_graph::{VertexId, Weight};
use aa_logp::Phase;
use aa_runtime::{FailureDetector, RankHealth};
use std::io;

/// Per-rank checkpoint envelope: magic `AARK`, version 2 (declared body
/// length + CRC32 footer) —
/// the same framing as the whole-engine `AACP` checkpoint.
const RANK_MAGIC: &[u8; 4] = b"AARK";
const RANK_VERSION: u32 = 2;

/// Modeled cost of serializing/deserializing a checkpoint to the rank's
/// stable store, in microseconds per byte (~2 GB/s, an NVMe-class medium).
const CHECKPOINT_US_PER_BYTE: f64 = 5e-4;

/// One recovery performed by the supervisor (or [`AnytimeEngine::recover_rank`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Recombination step at which the recovery ran.
    pub step: u64,
    /// What was rebuilt and how.
    pub report: RecoveryReport,
}

/// Cluster health as the failure detector sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Recombination step the report describes.
    pub rc_step: usize,
    /// Per-rank verdict.
    pub statuses: Vec<RankHealth>,
    /// Ranks currently confirmed down.
    pub down_ranks: Vec<usize>,
    /// Ranks currently flagged as stragglers.
    pub stragglers: Vec<usize>,
    /// Total recoveries performed so far.
    pub recoveries: usize,
}

/// Supervision state carried by the engine: the failure detector, the
/// per-rank checkpoint store, and the recovery log.
#[derive(Debug, Clone)]
pub(crate) struct Supervision {
    pub(crate) detector: FailureDetector,
    /// Latest checkpoint blob per rank (in-memory stand-in for each rank's
    /// stable store).
    pub(crate) checkpoints: Vec<Option<Vec<u8>>>,
    pub(crate) log: Vec<RecoveryEvent>,
}

impl Supervision {
    pub(crate) fn new(p: usize, cfg: &crate::config::SupervisorConfig) -> Self {
        Supervision {
            detector: FailureDetector::new(
                p,
                cfg.detector_timeout,
                cfg.straggler_factor,
                cfg.straggler_floor_us,
                cfg.straggler_patience,
            ),
            checkpoints: vec![None; p],
            log: Vec::new(),
        }
    }
}

/// A decoded per-rank checkpoint.
pub(crate) struct RankCheckpoint {
    pub(crate) epoch: u64,
    pub(crate) rows: Vec<(VertexId, Vec<Weight>)>,
}

/// Serializes `rank`'s distance-vector rows into the framed per-rank
/// checkpoint format: rank, step and invalidation epoch, then each row.
pub(crate) fn encode_rank_checkpoint(
    ps: &ProcState,
    rank: usize,
    rc_step: u64,
    epoch: u64,
) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&(rank as u32).to_le_bytes());
    body.extend_from_slice(&rc_step.to_le_bytes());
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(&(ps.dv.row_count() as u64).to_le_bytes());
    for &v in ps.dv.vertices() {
        let row = ps.dv.row(v);
        body.extend_from_slice(&v.to_le_bytes());
        body.extend_from_slice(&(row.len() as u64).to_le_bytes());
        for &d in row {
            body.extend_from_slice(&d.to_le_bytes());
        }
    }
    write_framed(RANK_MAGIC, RANK_VERSION, &body)
}

/// Validates and decodes a per-rank checkpoint blob. Corruption (bit flips,
/// truncation), the wrong rank, or malformed structure all surface as
/// `InvalidData`-style errors — the recovery ladder treats any error as
/// "no usable checkpoint" and falls back to the SSSP reseed.
pub(crate) fn decode_rank_checkpoint(bytes: &[u8], rank: usize) -> io::Result<RankCheckpoint> {
    let body = read_framed(bytes, RANK_MAGIC, RANK_VERSION)?;
    let r = &mut &body[..];
    if read_u32(r)? as usize != rank {
        return Err(bad("checkpoint belongs to a different rank"));
    }
    let _rc_step = read_u64(r)?;
    let epoch = read_u64(r)?;
    let row_count = read_u64(r)? as usize;
    let mut rows = Vec::with_capacity(row_count.min(1 << 20));
    for _ in 0..row_count {
        let v = read_u32(r)?;
        let len = read_u64(r)? as usize;
        if len > body.len() {
            return Err(bad("row longer than the checkpoint"));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(read_u32(r)? as Weight);
        }
        rows.push((v, row));
    }
    if !r.is_empty() {
        return Err(bad("checkpoint has trailing bytes"));
    }
    Ok(RankCheckpoint { epoch, rows })
}

impl AnytimeEngine {
    /// The failure detector's current per-rank verdicts plus recovery stats.
    pub fn health_report(&self) -> HealthReport {
        let now = self.rc_steps_done as u64;
        let p = self.config.num_procs;
        let statuses: Vec<RankHealth> = (0..p)
            .map(|r| self.supervision.detector.health(r, now))
            .collect();
        HealthReport {
            rc_step: self.rc_steps_done,
            down_ranks: (0..p)
                .filter(|&r| statuses[r] == RankHealth::Down)
                .collect(),
            stragglers: (0..p)
                .filter(|&r| statuses[r] == RankHealth::Straggling)
                .collect(),
            recoveries: self.supervision.log.len(),
            statuses,
        }
    }

    /// Every recovery the supervisor (or [`Self::recover_rank`]) performed,
    /// in order.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.supervision.log
    }

    /// Deletions (and weight increases, which route through deletion) since
    /// engine creation — per-rank checkpoints from an older epoch are
    /// unusable, because deletion is the one mutation that can make old
    /// distance rows underestimates.
    pub fn invalidation_epoch(&self) -> u64 {
        self.invalidation_epoch
    }

    /// Schedules a fail-stop crash of `rank` at recombination step `step`
    /// (absolute step count, see [`Self::rc_steps`]). The crash fires inside
    /// `rc_step` with no further calls; the heartbeat detector notices the
    /// silence and the supervisor recovers the rank.
    pub fn schedule_crash(&mut self, step: u64, rank: usize) {
        assert!(rank < self.config.num_procs, "rank {rank} out of range");
        let pf = self.config.proc_fault.get_or_insert_with(Default::default);
        pf.crashes.push((step, rank));
        if let Some(plan) = self.cluster.fault_plan_mut() {
            plan.schedule_crash(step, rank);
        } else {
            let plan = self.config.build_fault_plan();
            self.cluster.set_fault_plan(plan);
        }
    }

    /// Makes `rank` a straggler: its compute runs `scale`× slower from now
    /// on (`scale` 1.0 clears the fault). The straggler detector flags it in
    /// [`Self::health_report`] once the slowdown shows for
    /// `straggler_patience` consecutive steps.
    pub fn set_straggler(&mut self, rank: usize, scale: f64) {
        assert!(rank < self.config.num_procs, "rank {rank} out of range");
        let pf = self.config.proc_fault.get_or_insert_with(Default::default);
        pf.stragglers.retain(|&(r, _)| r != rank);
        // aa-lint: allow(AA03, scale 1.0 is the exact user-set "no straggler" sentinel, not a computed estimate)
        if scale != 1.0 {
            pf.stragglers.push((rank, scale));
        }
        if let Some(plan) = self.cluster.fault_plan_mut() {
            plan.clear_straggler(rank);
            // aa-lint: allow(AA03, scale 1.0 is the exact user-set "no straggler" sentinel, not a computed estimate)
            if scale != 1.0 {
                plan.set_straggler(rank, scale);
            }
            self.cluster.refresh_stragglers();
        } else {
            let plan = self.config.build_fault_plan();
            self.cluster.set_fault_plan(plan);
        }
    }

    /// Manually runs the recovery ladder for `rank` (checkpoint restore when
    /// a valid same-epoch checkpoint exists, SSSP reseed otherwise). The
    /// automatic path — heartbeat timeout inside `rc_step` — calls the same
    /// ladder; this entry point exists for supervision policies with
    /// `auto_recover` off.
    pub fn recover_rank(&mut self, rank: usize) -> Result<RecoveryReport, RecoveryError> {
        if !self.initialized {
            return Err(RecoveryError::NotInitialized);
        }
        if rank >= self.config.num_procs {
            return Err(RecoveryError::InvalidRank {
                rank,
                num_procs: self.config.num_procs,
            });
        }
        Ok(self.recover_rank_ladder(rank, self.rc_steps_done as u64))
    }

    /// Whether a periodic checkpoint is currently stored for `rank`.
    pub fn has_rank_checkpoint(&self, rank: usize) -> bool {
        self.supervision.checkpoints[rank].is_some()
    }

    /// Test hook: mutable access to `rank`'s stored checkpoint blob, for
    /// corruption-injection tests (bit flips, truncation). Not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn rank_checkpoint_mut(&mut self, rank: usize) -> Option<&mut Vec<u8>> {
        self.supervision.checkpoints[rank].as_mut()
    }

    /// Takes the periodic per-rank checkpoints due at step `now` (live ranks
    /// only), charging the serialization to each rank's clock as modeled
    /// stable-store I/O under [`Phase::Recovery`].
    pub(crate) fn take_periodic_checkpoints(&mut self, now: u64) {
        let interval = self.config.supervision.checkpoint_interval;
        if interval == 0 || !now.is_multiple_of(interval as u64) {
            return;
        }
        for rank in 0..self.config.num_procs {
            if self.cluster.is_down(rank) {
                continue;
            }
            let blob =
                encode_rank_checkpoint(&self.procs[rank], rank, now, self.invalidation_epoch);
            self.cluster.compute_modeled(
                rank,
                Phase::Recovery,
                blob.len() as f64 * CHECKPOINT_US_PER_BYTE,
            );
            self.supervision.checkpoints[rank] = Some(blob);
        }
    }

    /// The recovery ladder: restore `rank` from its last checkpoint when the
    /// blob decodes, belongs to the current invalidation epoch, and has rows
    /// to offer; otherwise fall back to the SSSP reseed. Brings the rank
    /// back up in the cluster and the detector, and logs the recovery.
    pub(crate) fn recover_rank_ladder(&mut self, rank: usize, now: u64) -> RecoveryReport {
        let recovery_span = self.span_open();
        // Rows whose owner moved since the checkpoint (repartitioning) are
        // dropped here and reseeded by `replace_rank`.
        let usable: Option<Vec<(VertexId, Vec<Weight>)>> = self.supervision.checkpoints[rank]
            .as_ref()
            .and_then(|blob| match decode_rank_checkpoint(blob, rank) {
                Ok(cp) if cp.epoch == self.invalidation_epoch => Some(
                    cp.rows
                        .into_iter()
                        .filter(|(v, _)| self.partition.part_of(*v) == Some(rank))
                        .collect(),
                ),
                _ => None,
            });
        let blob_len = self.supervision.checkpoints[rank]
            .as_ref()
            .map_or(0, |b| b.len());
        self.cluster.mark_up(rank);
        let report = match usable {
            Some(rows) => {
                // Reading the checkpoint back from the rank's stable store
                // is local I/O, not network traffic.
                self.cluster.compute_modeled(
                    rank,
                    Phase::Recovery,
                    blob_len as f64 * CHECKPOINT_US_PER_BYTE,
                );
                self.replace_rank(rank, Some(rows))
            }
            None => self.replace_rank(rank, None),
        };
        self.supervision.detector.mark_up(rank, now);
        self.supervision
            .log
            .push(RecoveryEvent { step: now, report });
        self.obs.note_recovery();
        self.span_close(
            recovery_span,
            "recovery",
            format!("{} rank={rank}", report.method),
        );
        report
    }
}
