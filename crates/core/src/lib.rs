#![forbid(unsafe_code)]
//! Anytime-anywhere closeness centrality for large and dynamic graphs.
//!
//! This crate is the reproduction of the papers' contribution: a
//! parallel/distributed algorithm for closeness centrality (all-pairs
//! shortest paths) that is
//!
//! * **anytime** — interruptible after any recombination step with partial
//!   results whose distance estimates only ever improve, and
//! * **anywhere** — able to fold dynamic graph changes (edge additions and
//!   deletions, vertex additions and deletions) into the running computation
//!   instead of restarting it.
//!
//! The pipeline follows the papers' three phases:
//!
//! 1. **Domain decomposition** ([`EngineConfig::partitioner`]) — the graph is
//!    split into `P` balanced sub-graphs minimizing cut edges;
//! 2. **Initial approximation** — every virtual processor computes all-pairs
//!    shortest paths *within its local sub-graph* by multithreaded Dijkstra;
//! 3. **Recombination** ([`AnytimeEngine::rc_step`]) — processors repeatedly
//!    exchange the distance vectors of boundary vertices over the papers'
//!    personalized all-to-all schedule and relax their local vectors until no
//!    processor has updates.
//!
//! Dynamic **vertex additions** go through a [`AdditionStrategy`]:
//! round-robin assignment, cut-edge-optimizing assignment, whole-graph
//! repartitioning that reuses partial results, or a baseline restart.
//!
//! ```
//! use aa_core::{AnytimeEngine, EngineConfig};
//! use aa_graph::generators;
//!
//! let g = generators::barabasi_albert(200, 2, 1, 7);
//! let mut engine = AnytimeEngine::new(g, EngineConfig { num_procs: 4, ..Default::default() });
//! engine.initialize();                  // domain decomposition + initial approximation
//! let steps = engine.run_to_convergence(64);
//! assert!(steps <= 10);                 // a handful of steps on small-world graphs
//! let snapshot = engine.snapshot();
//! let (top, _score) = snapshot.top_k(1)[0];
//! assert!(engine.graph().is_alive(top));
//! ```

// Per-rank engine loops index `self.procs[rank]` while also borrowing the
// cluster for cost charging; the iterator form the lint suggests cannot
// express that without splitting borrows.
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod cliques;
pub mod closeness;
pub mod config;
pub mod dv;
pub mod dynamic;
pub mod engine;
pub mod feed;
pub mod measures;
pub mod obs;
pub mod proc_state;
pub mod publish;
pub mod rebalance;
pub mod resilience;
pub mod strategy;
pub mod supervisor;

pub use aa_obs::{
    decode_jsonl, encode_jsonl, kendall_tau, MetricsRegistry, ProgressSample, SpanLog, SpanRecord,
};
pub use aa_runtime::RankHealth;
pub use closeness::Snapshot;
pub use config::{
    EngineConfig, FaultConfig, IaAlgorithm, PartitionerKind, ProcFaultConfig, Refinement,
    RepartitionMode, SupervisorConfig,
};
pub use dynamic::{Endpoint, VertexBatch};
pub use engine::AnytimeEngine;
pub use feed::BoundDelta;
pub use publish::{SnapshotFrame, SnapshotMeta};
pub use rebalance::ImbalanceReport;
pub use resilience::{RecoveryError, RecoveryMethod, RecoveryReport};
pub use strategy::AdditionStrategy;
pub use supervisor::{HealthReport, RecoveryEvent};
