//! Double-buffered snapshot publication for resident (serving) processes.
//!
//! A batch CLI takes a [`Snapshot`] when it wants one; a resident server
//! takes one *per read*, and most reads arrive between state changes. This
//! module gives the engine a publication cache: [`AnytimeEngine::
//! publish_snapshot`] returns an [`Arc`]-shared [`SnapshotFrame`] — the
//! snapshot plus a [`SnapshotMeta`] stamp (invalidation epoch, freshness,
//! quiescent-row fraction, max-overestimate bound) — and rebuilds it only
//! when the engine's observable state has actually moved. Re-published
//! frames are allocation-stable: the same `Arc` is handed out, no per-read
//! deep copy of the estimate vectors, and no cluster gather is re-charged.
//!
//! The cache key covers every input a snapshot is derived from: the RC-step
//! counter, the invalidation epoch (deletions / weight increases), the
//! mutation/recovery state version maintained by [`EngineObs`], in-flight
//! row counts, down-rank count, and the convergence flag. A reader can
//! therefore never observe a torn frame: either the key matched and the
//! frame is byte-identical to the previous publication, or the whole frame
//! was rebuilt from quiesced engine state in one place.

use crate::closeness::Snapshot;
use crate::engine::AnytimeEngine;
use std::sync::Arc;

/// Everything that can change what a snapshot would contain. Two equal keys
/// guarantee the published frame is still exact for the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PublishKey {
    rc_step: usize,
    epoch: u64,
    state_version: u64,
    outstanding: usize,
    down: usize,
    converged: bool,
}

/// The cached publication: the key it was built under plus the shared frame.
#[derive(Debug, Clone)]
pub(crate) struct PublishedFrame {
    pub(crate) key: PublishKey,
    pub(crate) frame: Arc<SnapshotFrame>,
}

/// Consistency stamp published with every served snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotMeta {
    /// Invalidation epoch the frame was built under. Deletions and weight
    /// increases bump it; a reader comparing two frames with equal epochs
    /// may treat their estimates as upper bounds on the *same* graph.
    pub epoch: u64,
    /// Recombination step at publication.
    pub rc_step: usize,
    /// Monotone mutation/recovery version at publication (bumped by every
    /// graph mutation and every recovery-ladder run). Two frames with equal
    /// `(epoch, state_version)` were built over the identical world graph —
    /// the stamp a consumer keys *structural* caches (pivot rows, component
    /// membership) on, where the epoch alone misses additions.
    pub state_version: u64,
    /// Virtual cluster time at publication (µs).
    pub published_at_us: f64,
    /// Whether the engine had declared convergence.
    pub converged: bool,
    /// Row sends in flight at publication; non-zero forbids freshness.
    pub outstanding_rows: usize,
    /// Ranks down at publication (their rows are served frozen, stale).
    pub down_ranks: usize,
    /// The frame is exact: converged, nothing in flight, nobody down.
    pub fresh: bool,
    /// Fraction of owned rows with no scheduled or in-flight refinement work
    /// and not frozen on a down rank — the engine's cheap converged-row
    /// proxy (exact row convergence needs the oracle probe).
    pub quiescent_row_fraction: f64,
    /// Upper bound on how far any finite distance estimate in the frame can
    /// sit above the true distance. Zero when fresh; otherwise the
    /// structural bound `(live vertices − 1) · w_max − 1` (a finite estimate
    /// is the length of a real path, and a true distance is at least 1).
    /// Always finite: degraded service stays bounded.
    pub max_overestimate_bound: f64,
}

/// A published snapshot with its consistency stamp. Shared by `Arc`; cloning
/// the `Arc` never copies the estimate vectors.
#[derive(Debug, Clone)]
pub struct SnapshotFrame {
    /// Consistency stamp.
    pub meta: SnapshotMeta,
    /// The anytime snapshot itself.
    pub snapshot: Snapshot,
}

impl AnytimeEngine {
    /// Publishes the current anytime state as a shared [`SnapshotFrame`],
    /// reusing the previous publication (same `Arc`, no gather charge, no
    /// allocation) when nothing observable has changed since it was built.
    ///
    /// Counted in the metrics registry as
    /// `aa_snapshot_publications_total{kind="fresh"|"reused"}`.
    pub fn publish_snapshot(&mut self) -> Arc<SnapshotFrame> {
        let key = PublishKey {
            rc_step: self.rc_steps_done,
            epoch: self.invalidation_epoch,
            state_version: self.obs.state_version,
            outstanding: self.outstanding_rows(),
            down: self.cluster.down_ranks().len(),
            converged: self.converged,
        };
        if let Some(published) = &self.obs.published {
            if published.key == key {
                self.obs.publish_reused += 1;
                return Arc::clone(&published.frame);
            }
        }
        let epoch = self.invalidation_epoch;
        let quiescent = self.quiescent_row_fraction();
        let bound = self.overestimate_bound(key.converged, key.outstanding, key.down);
        let snapshot = self.snapshot();
        let meta = SnapshotMeta {
            epoch,
            rc_step: snapshot.rc_step,
            state_version: key.state_version,
            published_at_us: snapshot.makespan_us,
            converged: key.converged,
            outstanding_rows: snapshot.outstanding_rows,
            down_ranks: snapshot.down_ranks,
            fresh: key.converged && key.outstanding == 0 && key.down == 0,
            quiescent_row_fraction: quiescent,
            max_overestimate_bound: bound,
        };
        let frame = Arc::new(SnapshotFrame { meta, snapshot });
        self.obs.publish_fresh += 1;
        self.obs.published = Some(PublishedFrame {
            key,
            frame: Arc::clone(&frame),
        });
        frame
    }

    /// Publications so far as `(fresh, reused)` — the allocation-stability
    /// ledger surfaced to tests and the metrics registry.
    pub fn snapshot_publication_counts(&self) -> (u64, u64) {
        (self.obs.publish_fresh, self.obs.publish_reused)
    }

    /// Fraction of owned rows with no dirty or in-flight refinement work and
    /// not frozen on a down rank.
    fn quiescent_row_fraction(&self) -> f64 {
        let mut rows = 0usize;
        let mut busy = 0usize;
        let down = self.cluster.down_ranks();
        for (rank, ps) in self.procs.iter().enumerate() {
            rows += ps.dv.row_count();
            if down.contains(&rank) {
                busy += ps.dv.row_count();
            } else {
                busy += ps.dirty.len() + ps.outstanding.len();
            }
        }
        if rows == 0 {
            1.0
        } else {
            let quiescent = rows.saturating_sub(busy.min(rows));
            quiescent as f64 / rows as f64
        }
    }

    /// Structural max-overestimate bound for the current graph; zero when
    /// the state is fresh.
    fn overestimate_bound(&self, converged: bool, outstanding: usize, down: usize) -> f64 {
        if converged && outstanding == 0 && down == 0 {
            return 0.0;
        }
        let n = self.world.vertex_count();
        if n < 2 {
            return 0.0;
        }
        let w_max = self
            .world
            .edges()
            .map(|(_, _, w)| u64::from(w))
            .max()
            .unwrap_or(1);
        (((n as u64 - 1) * w_max).saturating_sub(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use aa_graph::generators;

    fn engine(p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(60, 2, 1, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn republish_without_change_reuses_the_same_arc() {
        let mut e = engine(4, 7);
        e.run_to_convergence(64);
        let a = e.publish_snapshot();
        let makespan_after_first = e.makespan_us();
        let b = e.publish_snapshot();
        let c = e.publish_snapshot();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&b, &c));
        assert_eq!(e.snapshot_publication_counts(), (1, 2));
        // Reuse never re-charges the result gather.
        assert_eq!(e.makespan_us(), makespan_after_first);
    }

    #[test]
    fn mutation_and_steps_invalidate_the_publication() {
        let mut e = engine(4, 9);
        e.run_to_convergence(64);
        let a = e.publish_snapshot();
        assert!(a.meta.fresh);
        assert_eq!(a.meta.max_overestimate_bound, 0.0);
        assert_eq!(a.meta.quiescent_row_fraction, 1.0);
        e.add_edge(0, 40, 1);
        let b = e.publish_snapshot();
        assert!(!Arc::ptr_eq(&a, &b), "mutation must force a fresh frame");
        assert!(!b.meta.fresh, "post-mutation frame cannot be fresh");
        assert!(b.meta.max_overestimate_bound.is_finite());
        assert!(b.meta.max_overestimate_bound > 0.0);
        e.run_to_convergence(64);
        let c = e.publish_snapshot();
        assert!(c.meta.fresh);
        assert_eq!(e.snapshot_publication_counts(), (3, 0));
    }

    #[test]
    fn epoch_stamp_tracks_invalidations() {
        let mut e = engine(3, 11);
        e.run_to_convergence(64);
        let before = e.publish_snapshot().meta.epoch;
        let (u, v, _) = e.graph().edges().next().unwrap();
        e.delete_edge(u, v);
        e.run_to_convergence(64);
        let after = e.publish_snapshot().meta.epoch;
        assert!(after > before, "deletion must advance the published epoch");
    }

    #[test]
    fn frames_never_claim_fresh_with_rows_in_flight() {
        let g = generators::barabasi_albert(80, 2, 1, 23);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 4,
                fault: Some(crate::config::FaultConfig {
                    p_drop: 0.3,
                    p_dup: 0.0,
                    reorder: false,
                    seed: 9,
                }),
                ..Default::default()
            },
        );
        e.initialize();
        for _ in 0..6 {
            e.rc_step();
            let f = e.publish_snapshot();
            if f.snapshot.outstanding_rows > 0 {
                assert!(!f.meta.fresh);
                assert!(f.meta.max_overestimate_bound > 0.0);
                assert!(f.meta.quiescent_row_fraction < 1.0);
            }
        }
        e.run_to_convergence(512);
        let f = e.publish_snapshot();
        assert!(f.meta.fresh);
        assert_eq!(f.meta.outstanding_rows, 0);
    }
}
