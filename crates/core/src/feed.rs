//! Bound-delta feed: which rows moved, step by step.
//!
//! A terminal snapshot tells a consumer *where the estimates are*; an
//! incremental consumer (the top-k tracker in `aa-query`) also needs to know
//! *which rows changed since it last looked* so it can retighten bounds for
//! those rows only. The feed is an opt-in ring the engine appends one
//! [`BoundDelta`] to at the end of every recombination step and every dynamic
//! graph operation, listing the vertex rows whose distance entries were
//! touched.
//!
//! Direction matters. Within an invalidation epoch the anytime property makes
//! every row movement a *tightening* (entries only decrease), so a delta with
//! `widened == false` can only improve a consumer's bounds. Deletions and
//! weight increases reset affected entries upward; those ops emit a delta
//! with `widened == true` and a bumped `epoch`, telling the consumer the
//! listed rows' previous bounds are void, without voiding everyone else's.
//!
//! The changed-row list is derived from the per-processor dirty sets, which
//! every row-mutation path already feeds (worklist propagation marks even
//! interior rows dirty). That makes the list a sound over-approximation: a
//! row that changed is always listed; a listed row may turn out not to have
//! changed. Consumers must treat entries as "recheck this", never "this got
//! better".
//!
//! The feed is capped: when more than [`FEED_CAP`] deltas accumulate without
//! a drain, the backlog coalesces into a single conservative delta with
//! `full == true` (recheck everything). A slow consumer loses granularity,
//! never soundness — and an absent consumer costs the engine one Vec that
//! stops growing at the cap.

use crate::engine::AnytimeEngine;
use aa_graph::VertexId;

/// Pending deltas beyond this coalesce into one `full: true` entry.
pub const FEED_CAP: usize = 64;

/// One batch of row-bound movement, emitted at the end of a recombination
/// step or a dynamic graph operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundDelta {
    /// Recombination step counter when the delta was captured.
    pub rc_step: usize,
    /// Invalidation epoch after the event. A higher epoch than the previous
    /// delta means deletions voided some upper-bound structure.
    pub epoch: u64,
    /// Vertex rows whose entries were touched, sorted ascending, deduped.
    /// Empty when `full` is set.
    pub changed: Vec<VertexId>,
    /// The event may have moved entries *upward* (deletion, weight
    /// increase): previous per-row bounds for `changed` are void. When
    /// false, the event only tightened (anytime monotonicity holds).
    pub widened: bool,
    /// Set when the feed overflowed and granularity was lost: treat every
    /// row as changed (and as widened, if `widened` is also set).
    pub full: bool,
}

impl AnytimeEngine {
    /// Turns the bound-delta feed on. Subsequent recombination steps and
    /// dynamic operations append deltas until they are drained. Restored
    /// engines (checkpoint recovery) come back with the feed disabled —
    /// the consumer re-enables it and rebuilds from a snapshot.
    pub fn enable_bound_feed(&mut self) {
        self.obs.feed_enabled = true;
    }

    /// Whether the feed is recording.
    pub fn bound_feed_enabled(&self) -> bool {
        self.obs.feed_enabled
    }

    /// Takes all pending deltas, oldest first, leaving the feed empty.
    pub fn drain_bound_deltas(&mut self) -> Vec<BoundDelta> {
        std::mem::take(&mut self.obs.feed)
    }

    /// Appends one delta covering the rows currently dirty across all
    /// processors. Called at the end of every recombination step
    /// (`widened = false`: anytime tightening) and at the end of every
    /// dynamic operation (`widened = true` for deletions and weight
    /// increases). No-op while the feed is disabled.
    pub(crate) fn feed_capture(&mut self, widened: bool) {
        if !self.obs.feed_enabled {
            return;
        }
        let mut changed: Vec<VertexId> = Vec::new();
        for ps in &self.procs {
            changed.extend(ps.dirty.iter().copied());
        }
        changed.sort_unstable();
        changed.dedup();
        if changed.is_empty() && !widened {
            return;
        }
        let delta = BoundDelta {
            rc_step: self.rc_steps_done,
            epoch: self.invalidation_epoch,
            changed,
            widened,
            full: false,
        };
        self.obs.feed.push(delta);
        if self.obs.feed.len() > FEED_CAP {
            let widened_any = self.obs.feed.iter().any(|d| d.widened);
            let last = match self.obs.feed.last() {
                Some(d) => d,
                None => return, // unreachable: just pushed
            };
            let coalesced = BoundDelta {
                rc_step: last.rc_step,
                epoch: last.epoch,
                changed: Vec::new(),
                widened: widened_any,
                full: true,
            };
            self.obs.feed.clear();
            self.obs.feed.push(coalesced);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use aa_graph::generators;

    fn engine(p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(60, 2, 1, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn feed_disabled_by_default_and_records_once_enabled() {
        let mut e = engine(4, 7);
        e.rc_step();
        assert!(!e.bound_feed_enabled());
        assert!(e.drain_bound_deltas().is_empty());
        e.enable_bound_feed();
        e.rc_step();
        let deltas = e.drain_bound_deltas();
        assert!(!deltas.is_empty(), "an active step must emit a delta");
        for d in &deltas {
            assert!(!d.widened, "fault-free steps only tighten");
            assert!(!d.full);
            assert!(d.changed.windows(2).all(|w| w[0] < w[1]), "sorted+deduped");
        }
    }

    #[test]
    fn drain_empties_the_feed_and_quiescent_steps_stay_silent() {
        let mut e = engine(3, 9);
        e.enable_bound_feed();
        e.run_to_convergence(64);
        assert!(!e.drain_bound_deltas().is_empty());
        assert!(e.drain_bound_deltas().is_empty());
        // Converged engine: stepping moves nothing, feed stays empty.
        e.rc_step();
        assert!(e.drain_bound_deltas().is_empty());
    }

    #[test]
    fn deletion_emits_widened_delta_with_bumped_epoch() {
        let mut e = engine(4, 11);
        e.enable_bound_feed();
        e.run_to_convergence(64);
        e.drain_bound_deltas();
        let (u, v, _) = e.graph().edges().next().unwrap();
        assert!(e.delete_edge(u, v));
        let deltas = e.drain_bound_deltas();
        let widened: Vec<&BoundDelta> = deltas.iter().filter(|d| d.widened).collect();
        assert!(!widened.is_empty(), "deletion must emit a widened delta");
        for d in widened {
            assert_eq!(d.epoch, 1, "deletion bumps the epoch in the delta");
        }
    }

    #[test]
    fn addition_emits_tightening_delta_listing_endpoints() {
        let mut e = engine(4, 13);
        e.enable_bound_feed();
        e.run_to_convergence(64);
        e.drain_bound_deltas();
        e.add_edge(0, 40, 1);
        let deltas = e.drain_bound_deltas();
        assert!(!deltas.is_empty());
        for d in &deltas {
            assert!(!d.widened, "additions only tighten");
        }
        let all: Vec<VertexId> = deltas.iter().flat_map(|d| d.changed.clone()).collect();
        assert!(all.contains(&0) && all.contains(&40));
    }

    #[test]
    fn overflow_coalesces_into_full_delta() {
        let mut e = engine(2, 17);
        e.enable_bound_feed();
        for i in 0..(FEED_CAP as u32 + 8) {
            e.add_edge(i % 50, (i + 3) % 50, 1);
            e.rc_step();
        }
        let deltas = e.drain_bound_deltas();
        assert!(
            deltas.len() <= FEED_CAP,
            "feed must stay capped, got {}",
            deltas.len()
        );
        if deltas.len() == 1 {
            assert!(deltas[0].full);
        }
    }
}
