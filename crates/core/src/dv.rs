//! Distance vectors and the distance matrix owned by one virtual processor.
//!
//! Every processor stores one **distance vector** (DV) per vertex it owns:
//! the current shortest-path estimates from that vertex to *every* vertex id
//! slot in the graph. Estimates start at `INF` and only ever decrease
//! (except during deletion invalidation), which is the anytime property's
//! backbone. Columns grow when vertices are added (the papers' amortized
//! doubling analysis applies — `Vec` growth is exactly that), and whole rows
//! migrate between processors during repartitioning.

use aa_graph::{VertexId, Weight, INF};

/// Relaxes `dst[t] = min(dst[t], src[t] + offset)` for every column.
/// Returns whether any entry decreased. `INF` saturates.
#[inline]
pub fn relax_row(dst: &mut [Weight], src: &[Weight], offset: Weight) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    let mut changed = false;
    for (d, &s) in dst.iter_mut().zip(src) {
        let cand = s.saturating_add(offset);
        if cand < *d {
            *d = cand;
            changed = true;
        }
    }
    changed
}

/// The distance vectors of one processor's owned vertices.
#[derive(Debug, Clone, Default)]
pub struct DistanceMatrix {
    rows: Vec<Vec<Weight>>,
    /// Global vertex id of each row.
    vertex_of_row: Vec<VertexId>,
    /// Row index of each global vertex id slot (`u32::MAX` if not owned here).
    row_of: Vec<u32>,
    cols: usize,
}

const NO_ROW: u32 = u32::MAX;

impl DistanceMatrix {
    /// Creates an empty matrix with `cols` columns (one per vertex id slot).
    pub fn new(cols: usize) -> Self {
        DistanceMatrix {
            rows: Vec::new(),
            vertex_of_row: Vec::new(),
            row_of: vec![NO_ROW; cols],
            cols,
        }
    }

    /// Number of owned rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (vertex id slots).
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// Whether this matrix owns a row for vertex `v`.
    // aa-lint: allow(AA07, the index is range-checked by the && short-circuit on the same line)
    pub fn has_row(&self, v: VertexId) -> bool {
        (v as usize) < self.row_of.len() && self.row_of[v as usize] != NO_ROW
    }

    /// Adds a row for vertex `v`, initialized to `INF` except `row[v] = 0`.
    ///
    /// # Panics
    /// Panics if `v` already has a row or lies outside the column range.
    // aa-lint: allow(AA07, documented-panic constructor — the asserts above every index state the contract and fire before any index can miss)
    pub fn add_row(&mut self, v: VertexId) {
        assert!((v as usize) < self.cols, "vertex {v} outside column range");
        assert!(!self.has_row(v), "vertex {v} already has a row");
        let mut row = vec![INF; self.cols];
        row[v as usize] = 0;
        // aa-lint: allow(AA05, row count is bounded by the u32 vertex-id space)
        self.row_of[v as usize] = self.rows.len() as u32;
        self.rows.push(row);
        self.vertex_of_row.push(v);
    }

    /// Inserts a row with explicit contents (used for migration).
    // aa-lint: allow(AA07, documented-panic constructor — same assert-first contract as add_row)
    pub fn insert_row(&mut self, v: VertexId, mut row: Vec<Weight>) {
        assert!((v as usize) < self.cols, "vertex {v} outside column range");
        assert!(!self.has_row(v), "vertex {v} already has a row");
        // A migrated row may predate recent column extensions.
        assert!(row.len() <= self.cols, "row longer than column count");
        row.resize(self.cols, INF);
        // aa-lint: allow(AA05, row count is bounded by the u32 vertex-id space)
        self.row_of[v as usize] = self.rows.len() as u32;
        self.rows.push(row);
        self.vertex_of_row.push(v);
    }

    /// Removes and returns the row of vertex `v` (used for migration).
    // aa-lint: allow(AA07, migration path — the NO_ROW assert fires before the swap_remove indexes and row_of covers every id the owning engine hands in)
    pub fn take_row(&mut self, v: VertexId) -> Vec<Weight> {
        let idx = self.row_of[v as usize];
        assert!(idx != NO_ROW, "vertex {v} has no row here");
        let idx = idx as usize;
        let row = self.rows.swap_remove(idx);
        self.vertex_of_row.swap_remove(idx);
        self.row_of[v as usize] = NO_ROW;
        if idx < self.rows.len() {
            let moved = self.vertex_of_row[idx];
            // aa-lint: allow(AA05, idx indexes the row table, bounded by the u32 vertex-id space)
            self.row_of[moved as usize] = idx as u32;
        }
        row
    }

    /// Grows the column space to `new_cols`, filling new entries with `INF`.
    /// No-op if `new_cols <= col_count()`.
    pub fn extend_cols(&mut self, new_cols: usize) {
        if new_cols <= self.cols {
            return;
        }
        for row in &mut self.rows {
            row.resize(new_cols, INF);
        }
        self.row_of.resize(new_cols, NO_ROW);
        self.cols = new_cols;
    }

    /// The distance vector of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` has no row here.
    // aa-lint: allow(AA07, documented-panic accessor — callers hold the has_row/ownership invariant and the assert names the violation)
    pub fn row(&self, v: VertexId) -> &[Weight] {
        let idx = self.row_of[v as usize];
        assert!(idx != NO_ROW, "vertex {v} has no row here");
        &self.rows[idx as usize]
    }

    /// Mutable distance vector of vertex `v`.
    // aa-lint: allow(AA07, documented-panic accessor — same contract as row)
    pub fn row_mut(&mut self, v: VertexId) -> &mut [Weight] {
        let idx = self.row_of[v as usize];
        assert!(idx != NO_ROW, "vertex {v} has no row here");
        &mut self.rows[idx as usize]
    }

    /// Owned vertices in row order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertex_of_row
    }

    /// `dst_row[t] = min(dst_row[t], src_row[t] + offset)` where both rows
    /// live in this matrix. Returns whether anything changed; a self-relax is
    /// a no-op.
    // aa-lint: allow(AA07, both row indices are asserted owned before use; split_at_mut offsets derive from those checked indices)
    pub fn relax_rows(&mut self, dst: VertexId, src: VertexId, offset: Weight) -> bool {
        let di = self.row_of[dst as usize];
        let si = self.row_of[src as usize];
        assert!(di != NO_ROW && si != NO_ROW, "both rows must be owned here");
        if di == si {
            return false;
        }
        let (di, si) = (di as usize, si as usize);
        let (lo, hi, dst_is_lo) = if di < si {
            (di, si, true)
        } else {
            (si, di, false)
        };
        let (a, b) = self.rows.split_at_mut(hi);
        let (dst_row, src_row) = if dst_is_lo {
            (&mut a[lo], &b[0] as &[Weight])
        } else {
            (&mut b[0], &a[lo] as &[Weight])
        };
        relax_row(dst_row, src_row, offset)
    }

    /// Relaxes the row of `dst` against an external row slice.
    pub fn relax_with_external(
        &mut self,
        dst: VertexId,
        src_row: &[Weight],
        offset: Weight,
    ) -> bool {
        relax_row(self.row_mut(dst), src_row, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relax_row_basics() {
        let mut dst = vec![10, INF, 3, INF];
        let src = vec![1, 2, INF, INF];
        assert!(relax_row(&mut dst, &src, 5));
        assert_eq!(dst, vec![6, 7, 3, INF]);
        // Second pass changes nothing.
        assert!(!relax_row(&mut dst, &src, 5));
    }

    #[test]
    fn relax_row_saturates_at_inf() {
        let mut dst = vec![INF];
        let src = vec![INF];
        assert!(!relax_row(&mut dst, &src, 100), "INF + x must stay INF");
        assert_eq!(dst, vec![INF]);
        let mut dst2 = vec![INF];
        // Saturation caps the candidate at INF, which is never an improvement.
        assert!(!relax_row(&mut dst2, &[u32::MAX - 1], 100));
        assert_eq!(dst2, vec![INF]);
    }

    #[test]
    fn add_row_initializes_identity() {
        let mut m = DistanceMatrix::new(4);
        m.add_row(2);
        assert!(m.has_row(2));
        assert_eq!(m.row(2), &[INF, INF, 0, INF]);
        assert_eq!(m.row_count(), 1);
        assert_eq!(m.vertices(), &[2]);
    }

    #[test]
    #[should_panic(expected = "already has a row")]
    fn duplicate_row_rejected() {
        let mut m = DistanceMatrix::new(2);
        m.add_row(0);
        m.add_row(0);
    }

    #[test]
    fn take_row_fixes_swapped_index() {
        let mut m = DistanceMatrix::new(3);
        m.add_row(0);
        m.add_row(1);
        m.add_row(2);
        let r = m.take_row(0); // row 2 swaps into slot 0
        assert_eq!(r[0], 0);
        assert!(!m.has_row(0));
        assert_eq!(m.row(2)[2], 0, "swapped row still reachable");
        assert_eq!(m.row(1)[1], 0);
        assert_eq!(m.row_count(), 2);
    }

    #[test]
    fn migration_roundtrip() {
        let mut a = DistanceMatrix::new(3);
        a.add_row(1);
        a.row_mut(1)[0] = 7;
        let row = a.take_row(1);
        let mut b = DistanceMatrix::new(3);
        b.insert_row(1, row);
        assert_eq!(b.row(1), &[7, 0, INF]);
    }

    #[test]
    fn insert_row_pads_short_rows() {
        let mut m = DistanceMatrix::new(5);
        m.insert_row(0, vec![0, 1, 2]);
        assert_eq!(m.row(0), &[0, 1, 2, INF, INF]);
    }

    #[test]
    fn extend_cols_pads_with_inf() {
        let mut m = DistanceMatrix::new(2);
        m.add_row(1);
        m.extend_cols(4);
        assert_eq!(m.col_count(), 4);
        assert_eq!(m.row(1), &[INF, 0, INF, INF]);
        m.add_row(3);
        assert_eq!(m.row(3)[3], 0);
        m.extend_cols(3); // shrink request is a no-op
        assert_eq!(m.col_count(), 4);
    }

    #[test]
    fn relax_rows_internal() {
        let mut m = DistanceMatrix::new(3);
        m.add_row(0);
        m.add_row(1);
        m.row_mut(1)[2] = 4;
        assert!(m.relax_rows(0, 1, 1)); // d(0,*) <= 1 + d(1,*)
        assert_eq!(m.row(0), &[0, 1, 5]);
        assert!(!m.relax_rows(0, 0, 1), "self relax is a no-op");
        // Reverse direction with the dst stored after src.
        assert!(m.relax_rows(1, 0, 1));
        assert_eq!(m.row(1)[0], 1);
    }

    #[test]
    fn relax_with_external_row() {
        let mut m = DistanceMatrix::new(3);
        m.add_row(0);
        let ext = vec![2, 0, 9];
        assert!(m.relax_with_external(0, &ext, 3));
        assert_eq!(m.row(0), &[0, 3, 12]);
    }
}
