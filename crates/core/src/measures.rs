//! Additional distributed SNA measures on the same simulated cluster.
//!
//! The papers list degree, betweenness, closeness and eigenvector centrality
//! as the key SNA measures and present their framework as general-purpose.
//! Closeness is the main contribution (the engine); this module adds the two
//! measures that distribute naturally over the same sub-graph views and
//! exchange machinery — degree centrality (embarrassingly local) and
//! eigenvector centrality / PageRank (iterative neighbour exchanges) — each
//! validated against its sequential oracle in `aa-graph`.

use crate::engine::AnytimeEngine;
use aa_graph::VertexId;
use aa_logp::Phase;
use aa_obs::Stopwatch;
use aa_runtime::TransferOut;

impl AnytimeEngine {
    /// Distributed degree centrality: each processor scores its owned
    /// vertices; results are gathered to rank 0 (cost charged). Matches
    /// [`aa_graph::centrality::degree_centrality`] exactly.
    pub fn degree_centrality(&mut self) -> Vec<f64> {
        assert!(self.initialized, "call initialize() first");
        let cap = self.world.capacity();
        let n = self.world.vertex_count();
        let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
        let mut out = vec![0.0f64; cap];
        let p = self.config.num_procs;
        let mut gather: Vec<Vec<TransferOut<()>>> = (0..p).map(|_| Vec::new()).collect();
        for (rank, ps) in self.procs.iter().enumerate() {
            let t = Stopwatch::start();
            for &v in ps.dv.vertices() {
                out[v as usize] = ps.adj[v as usize].len() as f64 / denom;
            }
            self.cluster
                .compute_measured(rank, Phase::Recombination, t.elapsed());
            if rank != 0 {
                gather[rank].push(TransferOut {
                    dst: 0,
                    bytes: 12 * ps.dv.row_count(),
                    payload: (),
                });
            }
        }
        self.cluster.exchange(Phase::Recombination, gather);
        out
    }

    /// Distributed eigenvector centrality by shifted power iteration
    /// (`x ← (I + A)x`, normalized): per iteration each processor exchanges
    /// the scores of its boundary vertices with its neighbours and the norm
    /// is agreed by all-reduce. Converges to the same dominant eigenvector as
    /// [`aa_graph::centrality::eigenvector_centrality`].
    pub fn eigenvector_centrality(&mut self, max_iters: usize, tol: f64) -> Vec<f64> {
        assert!(self.initialized, "call initialize() first");
        let cap = self.world.capacity();
        let n = self.world.vertex_count();
        let mut x = vec![0.0f64; cap];
        if n == 0 {
            return x;
        }
        for v in self.world.vertices() {
            x[v as usize] = 1.0 / (n as f64).sqrt();
        }
        // Every processor holds the full x vector here for simplicity of
        // expression; communication is still charged faithfully — only
        // boundary scores move (12 bytes per boundary vertex per neighbour).
        for _ in 0..max_iters {
            self.exchange_boundary_scalars(&x);
            let mut next = vec![0.0f64; cap];
            let mut sq = vec![0.0f64; self.config.num_procs];
            for (rank, ps) in self.procs.iter().enumerate() {
                let t = Stopwatch::start();
                for &v in ps.dv.vertices() {
                    let mut acc = x[v as usize];
                    for &(u, w) in &ps.adj[v as usize] {
                        acc += w as f64 * x[u as usize];
                    }
                    next[v as usize] = acc;
                    sq[rank] += acc * acc;
                }
                self.cluster
                    .compute_measured(rank, Phase::Recombination, t.elapsed());
            }
            let norm = self
                .cluster
                .all_reduce_f64(Phase::Recombination, &sq, |a, b| a + b)
                .sqrt();
            // aa-lint: allow(AA03, exact-zero guard against dividing by a zero norm; any nonzero norm is fine)
            if norm == 0.0 {
                return x;
            }
            let mut max_diff = vec![0.0f64; self.config.num_procs];
            for (rank, ps) in self.procs.iter().enumerate() {
                for &v in ps.dv.vertices() {
                    let value = next[v as usize] / norm;
                    max_diff[rank] = max_diff[rank].max((value - x[v as usize]).abs());
                    x[v as usize] = value;
                }
            }
            let diff = self
                .cluster
                .all_reduce_f64(Phase::Recombination, &max_diff, f64::max);
            if diff < tol {
                break;
            }
        }
        x
    }

    /// Distributed PageRank (push model): each processor pushes its owned
    /// vertices' rank along their edges; contributions crossing a cut are
    /// exchanged, dangling mass and the convergence test are agreed by
    /// all-reduce. Matches [`aa_graph::centrality::pagerank`].
    pub fn pagerank(&mut self, damping: f64, max_iters: usize, tol: f64) -> Vec<f64> {
        assert!(self.initialized, "call initialize() first");
        let cap = self.world.capacity();
        let n = self.world.vertex_count();
        let mut pr = vec![0.0f64; cap];
        if n == 0 {
            return pr;
        }
        for v in self.world.vertices() {
            pr[v as usize] = 1.0 / n as f64;
        }
        let p = self.config.num_procs;
        for _ in 0..max_iters {
            // Push contributions; remote shares travel via the exchange.
            let mut incoming = vec![0.0f64; cap];
            let mut dangling = vec![0.0f64; p];
            type Contributions = Vec<(VertexId, f64)>;
            let mut outbox: Vec<Vec<TransferOut<Contributions>>> =
                (0..p).map(|_| Vec::new()).collect();
            for (rank, ps) in self.procs.iter().enumerate() {
                let t = Stopwatch::start();
                let mut remote: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); p];
                for &v in ps.dv.vertices() {
                    let edges = &ps.adj[v as usize];
                    if edges.is_empty() {
                        dangling[rank] += pr[v as usize];
                        continue;
                    }
                    let total_w: u64 = edges.iter().map(|&(_, w)| w as u64).sum();
                    for &(u, w) in edges {
                        let share = pr[v as usize] * w as f64 / total_w as f64;
                        if ps.is_local[u as usize] {
                            incoming[u as usize] += share;
                        } else {
                            let owner = self.owner_of(u);
                            remote[owner].push((u, share));
                        }
                    }
                }
                for (dst, contributions) in remote.into_iter().enumerate() {
                    if !contributions.is_empty() {
                        outbox[rank].push(TransferOut {
                            dst,
                            bytes: 12 * contributions.len(),
                            payload: contributions,
                        });
                    }
                }
                self.cluster
                    .compute_measured(rank, Phase::Recombination, t.elapsed());
            }
            let inbox = self.cluster.exchange(Phase::Recombination, outbox);
            for received in inbox {
                for (_src, contributions) in received {
                    for (u, share) in contributions {
                        incoming[u as usize] += share;
                    }
                }
            }
            let dangling_total =
                self.cluster
                    .all_reduce_f64(Phase::Recombination, &dangling, |a, b| a + b);
            let teleport = (1.0 - damping) / n as f64 + damping * dangling_total / n as f64;
            let mut deltas = vec![0.0f64; p];
            for (rank, ps) in self.procs.iter().enumerate() {
                for &v in ps.dv.vertices() {
                    let value = teleport + damping * incoming[v as usize];
                    deltas[rank] += (value - pr[v as usize]).abs();
                    pr[v as usize] = value;
                }
            }
            let delta = self
                .cluster
                .all_reduce_f64(Phase::Recombination, &deltas, |a, b| a + b);
            if delta < tol {
                break;
            }
        }
        pr
    }

    /// Charges the boundary-score exchange used by the iterative measures:
    /// 12 bytes (id + f64) per owned boundary vertex per neighbouring rank.
    fn exchange_boundary_scalars(&mut self, _scores: &[f64]) {
        let p = self.config.num_procs;
        let mut outbox: Vec<Vec<TransferOut<()>>> = (0..p).map(|_| Vec::new()).collect();
        for rank in 0..p {
            let mut per_dst = vec![0usize; p];
            for &v in self.procs[rank].dv.vertices() {
                for dst in self.procs[rank].neighbor_ranks(v, &self.partition) {
                    per_dst[dst] += 1;
                }
            }
            for (dst, count) in per_dst.into_iter().enumerate() {
                if count > 0 {
                    outbox[rank].push(TransferOut {
                        dst,
                        bytes: 12 * count,
                        payload: (),
                    });
                }
            }
        }
        self.cluster.exchange(Phase::Recombination, outbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use aa_graph::{centrality, generators};

    fn engine(n: usize, p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(n, 2, 2, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                seed,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn degree_matches_oracle() {
        let mut e = engine(90, 4, 3);
        let got = e.degree_centrality();
        let want = centrality::degree_centrality(e.graph());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn eigenvector_matches_oracle() {
        let mut e = engine(80, 4, 5);
        let got = e.eigenvector_centrality(300, 1e-12);
        let want = centrality::eigenvector_centrality(e.graph(), 300, 1e-12).unwrap();
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-6, "vertex {v}: {g} vs {w}");
        }
    }

    #[test]
    fn pagerank_matches_oracle() {
        let mut e = engine(80, 4, 7);
        let got = e.pagerank(0.85, 200, 1e-12);
        let want = centrality::pagerank(e.graph(), 0.85, 200, 1e-12);
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-8, "vertex {v}: {g} vs {w}");
        }
        assert!((got.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn measures_charge_communication() {
        let mut e = engine(60, 4, 9);
        let before = e.cluster().ledger().totals().bytes;
        e.eigenvector_centrality(10, 1e-9);
        let after = e.cluster().ledger().totals().bytes;
        assert!(after > before, "boundary exchanges must be charged");
    }

    #[test]
    fn measures_work_after_dynamic_updates() {
        let mut e = engine(60, 4, 11);
        e.run_to_convergence(64);
        e.add_edge(0, 30, 1);
        e.run_to_convergence(64);
        let got = e.pagerank(0.85, 200, 1e-12);
        let want = centrality::pagerank(e.graph(), 0.85, 200, 1e-12);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8);
        }
    }

    #[test]
    fn pagerank_with_isolated_vertices() {
        let mut g = generators::path(10);
        g.add_vertex(); // dangling
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 3,
                ..Default::default()
            },
        );
        e.initialize();
        let got = e.pagerank(0.85, 200, 1e-12);
        let want = centrality::pagerank(e.graph(), 0.85, 200, 1e-12);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8);
        }
    }
}
