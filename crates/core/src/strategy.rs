//! Vertex-addition strategies: processor assignment, repartitioning, restart.
//!
//! The vertex-additions paper evaluates four ways to incorporate a batch of
//! new vertices into a running analysis:
//!
//! * [`AdditionStrategy::RoundRobinPs`] — spread the new vertices cyclically
//!   over the processors (perfect count balance, community-oblivious);
//! * [`AdditionStrategy::CutEdgePs`] — treat the batch and its internal edges
//!   as a graph, partition it with the multilevel partitioner (each processor
//!   computes one candidate, the lowest-new-cut candidate wins), and map the
//!   parts onto processors by affinity to existing neighbours;
//! * [`AdditionStrategy::RepartitionS`] — repartition the whole grown graph
//!   and migrate the distance-vector rows of relocated vertices, *reusing*
//!   all partial results (the anytime middle ground; existing rows are not
//!   eagerly updated for the new vertices, so extra recombination steps
//!   follow);
//! * [`AdditionStrategy::BaselineRestart`] — discard everything and rerun the
//!   full pipeline (the comparison baseline).

use crate::dynamic::{Endpoint, VertexBatch};
use crate::engine::AnytimeEngine;
use crate::proc_state::ProcState;
use aa_graph::{Graph, VertexId, Weight};
use aa_logp::Phase;
use aa_obs::Stopwatch;
use aa_partition::{MultilevelKWay, Partitioner};
use aa_runtime::TransferOut;

/// How a batch of new vertices is incorporated into the running analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdditionStrategy {
    /// Round-robin processor assignment (`RoundRobin-PS`).
    RoundRobinPs,
    /// Cut-edge-optimizing processor assignment (`CutEdge-PS`).
    CutEdgePs,
    /// Whole-graph repartitioning with partial-result migration
    /// (`Repartition-S`).
    RepartitionS,
    /// Restart the analysis from scratch (the papers' baseline).
    BaselineRestart,
}

impl std::fmt::Display for AdditionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AdditionStrategy::RoundRobinPs => "RoundRobin-PS",
            AdditionStrategy::CutEdgePs => "CutEdge-PS",
            AdditionStrategy::RepartitionS => "Repartition-S",
            AdditionStrategy::BaselineRestart => "Baseline Restart",
        };
        f.write_str(s)
    }
}

impl AnytimeEngine {
    /// Adds a batch of vertices (and their edges) during the analysis using
    /// the given strategy. Returns the ids assigned to the new vertices, in
    /// batch order. Subsequent recombination steps propagate the changes.
    pub fn add_vertices(
        &mut self,
        batch: &VertexBatch,
        strategy: AdditionStrategy,
    ) -> Vec<VertexId> {
        assert!(self.initialized, "call initialize() first");
        batch
            .validate(self.world.capacity())
            // aa-lint: allow(AA01, caller-contract precondition like the initialize assert above — a malformed batch is a harness bug and must fail loudly at the boundary)
            .expect("invalid vertex batch");
        let span = self.span_open();
        self.obs.note_mutation();
        let ids = match strategy {
            AdditionStrategy::RoundRobinPs => {
                let assign = self.round_robin_assignment(batch.count);
                self.incorporate_incremental(batch, &assign)
            }
            AdditionStrategy::CutEdgePs => {
                let assign = self.cut_edge_assignment(batch);
                self.incorporate_incremental(batch, &assign)
            }
            AdditionStrategy::RepartitionS => self.incorporate_repartition(batch),
            AdditionStrategy::BaselineRestart => self.incorporate_restart(batch),
        };
        self.span_close(
            span,
            "dynamic-update",
            format!("add-vertices n={} {strategy:?}", batch.count),
        );
        ids
    }

    /// Round-robin assignment continuing from a persistent cursor, so
    /// successive batches keep cycling rather than always hammering
    /// processor 0.
    fn round_robin_assignment(&mut self, count: usize) -> Vec<usize> {
        let p = self.config.num_procs;
        (0..count)
            .map(|_| {
                let r = self.rr_cursor % p;
                self.rr_cursor += 1;
                r
            })
            .collect()
    }

    /// CutEdge-PS: every processor computes one candidate multilevel
    /// partition of the batch graph (differently seeded); the candidate
    /// introducing the fewest new cut edges wins. Parts map to processors
    /// greedily by affinity to the existing neighbours of their vertices.
    fn cut_edge_assignment(&mut self, batch: &VertexBatch) -> Vec<usize> {
        let p = self.config.num_procs;
        // The batch graph: new vertices plus the edges *between* them.
        let mut bg = Graph::with_vertices(batch.count);
        for &(i, other, w) in &batch.edges {
            if let Endpoint::New(j) = other {
                bg.add_edge(i as VertexId, j as VertexId, w);
            }
        }
        let mut best: Option<(usize, Vec<usize>)> = None;
        for rank in 0..p {
            let t = Stopwatch::start();
            let candidate = MultilevelKWay {
                seed: self.config.seed ^ (0x9E37 + rank as u64 * 0x51_7C_C1),
                ..MultilevelKWay::default()
            }
            .partition(&bg, p);
            let assign = self.map_parts_to_procs(batch, &candidate, p);
            let score = self.new_cut_edges_for(batch, &assign);
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, assign));
            }
        }
        // Winner announcement: each processor's score to rank 0, decision
        // broadcast back (count bytes of assignments).
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, 0, 4 * batch.count);
        // aa-lint: allow(AA01, num_procs >= 1 is asserted at construction so the scoring loop sets best on its first iteration)
        best.expect("at least one candidate").1
    }

    /// Maps batch-graph parts onto processors by descending affinity (number
    /// of batch edges into existing vertices owned by each processor).
    fn map_parts_to_procs(
        &self,
        batch: &VertexBatch,
        candidate: &aa_partition::Partition,
        p: usize,
    ) -> Vec<usize> {
        let mut affinity = vec![vec![0usize; p]; p]; // [part][proc]
        for &(i, other, _) in &batch.edges {
            if let Endpoint::Existing(x) = other {
                if let (Some(part), Some(owner)) =
                    (candidate.part_of(i as VertexId), self.partition.part_of(x))
                {
                    affinity[part][owner] += 1;
                }
            }
        }
        let mut pairs: Vec<(usize, usize, usize)> = (0..p)
            .flat_map(|part| (0..p).map(move |proc| (part, proc, 0)))
            .map(|(part, proc, _)| (part, proc, affinity[part][proc]))
            .collect();
        pairs.sort_by_key(|&(part, proc, aff)| (std::cmp::Reverse(aff), part, proc));
        let mut part_to_proc = vec![usize::MAX; p];
        let mut proc_used = vec![false; p];
        for (part, proc, _) in pairs {
            if part_to_proc[part] == usize::MAX && !proc_used[proc] {
                part_to_proc[part] = proc;
                proc_used[proc] = true;
            }
        }
        (0..batch.count)
            .map(|i| {
                let part = candidate.part_of(i as VertexId).unwrap_or(0);
                part_to_proc[part]
            })
            .collect()
    }

    /// Number of new cut edges a batch assignment would introduce.
    fn new_cut_edges_for(&self, batch: &VertexBatch, assign: &[usize]) -> usize {
        batch
            .edges
            .iter()
            .filter(|&&(i, other, _)| {
                let pi = assign[i];
                match other {
                    Endpoint::New(j) => pi != assign[j],
                    Endpoint::Existing(x) => Some(pi) != self.partition.part_of(x),
                }
            })
            .count()
    }

    /// The anywhere vertex-addition path shared by RoundRobin-PS and
    /// CutEdge-PS (the paper's Fig. 3): create the vertices, extend every
    /// distance vector, add an owner row each, then attach each new vertex.
    ///
    /// Attachment follows the paper's communication pattern — each incident
    /// edge tree-broadcasts the other endpoint's distance vector, and the new
    /// vertex's own vector is broadcast once — but applies the relaxation in
    /// its "via the new vertex" form: every owned row `x` first derives
    /// `D[x][v] = min_(u,w) (D[x][u] + w)` from its own columns, then relaxes
    /// through `v`'s row once. This is algebraically the same set of
    /// relaxations as the per-edge `D[x][t] > D[x][u] + w + D[v][t]` test,
    /// applied in an order that avoids redundant full-matrix sweeps; any
    /// improvements it leaves for later are picked up by subsequent
    /// recombination steps, exactly as in the paper.
    fn incorporate_incremental(&mut self, batch: &VertexBatch, assign: &[usize]) -> Vec<VertexId> {
        let p = self.config.num_procs;
        let ids: Vec<VertexId> = (0..batch.count).map(|_| self.world.add_vertex()).collect();
        let new_cap = self.world.capacity();
        // Assignment metadata reaches every processor (4 bytes per vertex).
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, 0, 4 * batch.count);
        for rank in 0..self.procs.len() {
            let t = Stopwatch::start();
            self.procs[rank].extend_capacity(new_cap);
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
        for (idx, &id) in ids.iter().enumerate() {
            let owner = assign[idx];
            self.partition.assign(id, owner);
            self.procs[owner].is_local[id as usize] = true;
            self.procs[owner].dv.add_row(id);
            self.procs[owner].dirty.insert(id);
        }

        // Bucket the edges by the batch vertex whose attachment makes them
        // insertable: an edge to an existing vertex attaches with its new
        // endpoint; an edge between two new vertices attaches with the later
        // of the two.
        let mut incident: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); batch.count];
        for &(i, other, w) in &batch.edges {
            match other {
                Endpoint::New(j) => {
                    let (late, early) = (i.max(j), i.min(j));
                    incident[late].push((ids[early], w));
                }
                Endpoint::Existing(x) => {
                    assert!(self.world.is_alive(x), "batch references dead vertex {x}");
                    incident[i].push((x, w));
                }
            }
        }

        let mut seeds: Vec<Vec<VertexId>> = vec![Vec::new(); p];
        for (idx, &v) in ids.iter().enumerate() {
            self.attach_new_vertex(v, &incident[idx], &mut seeds);
        }
        // One local propagation pass per processor closes the intra-partition
        // chains; recombination steps carry the rest across boundaries.
        for rank in 0..p {
            let t = Stopwatch::start();
            let s = std::mem::take(&mut seeds[rank]);
            self.procs[rank].propagate_worklist(s);
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
        self.converged = false;
        ids
    }

    /// Attaches one new vertex `v` with its incident edges (endpoints already
    /// present in the world). Accumulates worklist seeds per processor.
    fn attach_new_vertex(
        &mut self,
        v: VertexId,
        edges: &[(VertexId, Weight)],
        seeds: &mut [Vec<VertexId>],
    ) {
        let ov = self.owner_of(v);
        let mut attached: Vec<(VertexId, Weight)> = Vec::with_capacity(edges.len());
        for &(u, w) in edges {
            if !self.world.add_edge(v, u, w) {
                continue; // duplicate inside the batch
            }
            attached.push((u, w));
            let oupd = self.owner_of(u);
            self.procs[ov].view_add_edge(v, u, w);
            if oupd != ov {
                self.procs[oupd].view_add_edge(v, u, w);
            }
        }
        if attached.is_empty() {
            return;
        }
        let row_len = self.procs[ov].dv.col_count();
        let row_bytes = 4 + 4 * row_len;

        // Gather each neighbour's row to v's owner — the only processor that
        // needs it to seed v's fresh row (point-to-point rather than the
        // paper's per-edge broadcast; same information, less traffic — see
        // DESIGN.md).
        let t = Stopwatch::start();
        let mut gather: Vec<Vec<TransferOut<()>>> =
            (0..self.procs.len()).map(|_| Vec::new()).collect();
        for &(u, w) in &attached {
            let ou = self.owner_of(u);
            if ou != ov {
                gather[ou].push(TransferOut {
                    dst: ov,
                    bytes: row_bytes,
                    payload: (),
                });
            }
            let row_u = self.procs[ou].dv.row(u).to_vec();
            self.procs[ov].dv.relax_with_external(v, &row_u, w);
        }
        self.procs[ov].dirty.insert(v);
        seeds[ov].push(v);
        self.cluster
            .compute_measured(ov, Phase::DynamicUpdate, t.elapsed());
        self.cluster.exchange(Phase::DynamicUpdate, gather);

        // Broadcast v's row; every processor folds v into its own rows.
        let row_v = self.procs[ov].dv.row(v).to_vec();
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, ov, row_bytes);
        for rank in 0..self.procs.len() {
            let t = Stopwatch::start();
            let ps = &mut self.procs[rank];
            if !ps.is_local[v as usize] && !ps.adj[v as usize].is_empty() {
                ps.ext_rows.insert(v, row_v.clone());
            }
            for x in ps.dv.vertices().to_vec() {
                if x == v {
                    continue;
                }
                // D[x][v] = min over v's edges of D[x][u] + w, then relax
                // x's row through v once.
                let mut a = ps.dv.row(x)[v as usize];
                for &(u, w) in &attached {
                    let du = ps.dv.row(x)[u as usize];
                    a = a.min(du.saturating_add(w));
                }
                if a != aa_graph::INF && ps.dv.relax_with_external(x, &row_v, a) {
                    ps.dirty.insert(x);
                    seeds[rank].push(x);
                }
            }
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
    }

    /// Repartition-S: add the batch to the world, repartition the whole
    /// graph, migrate relocated distance-vector rows, seed fresh rows for the
    /// new vertices from local Dijkstra, and let recombination reconverge.
    fn incorporate_repartition(&mut self, batch: &VertexBatch) -> Vec<VertexId> {
        let p = self.config.num_procs;
        let ids: Vec<VertexId> = (0..batch.count).map(|_| self.world.add_vertex()).collect();
        for &(i, other, w) in &batch.edges {
            let u = ids[i];
            let v = match other {
                Endpoint::New(j) => ids[j],
                Endpoint::Existing(x) => x,
            };
            self.world.add_edge(u, v, w);
        }
        // Repartition the grown graph. The default (FullRemap) reruns the
        // full DD partitioner — as the papers do — and remaps the part
        // labels onto the old partition so migration reflects structural
        // moves only; the Adaptive ablation refines the current assignment
        // in place (ParMETIS adaptive-repartitioning style). Parallel cost
        // approximation as in initialize().
        let t = Stopwatch::start();
        let new_partition = match self.config.repartition {
            crate::config::RepartitionMode::AdaptiveMultilevel => {
                aa_partition::AdaptiveMultilevel {
                    seed: self.config.seed ^ 0xADA9,
                    ..Default::default()
                }
                .repartition(&self.world, &self.partition, p)
            }
            crate::config::RepartitionMode::FullRemap => {
                let fresh = self
                    .config
                    .partitioner
                    .build(self.config.seed ^ (0xDEAD + self.world.capacity() as u64))
                    .partition(&self.world, p);
                aa_partition::adaptive::remap_labels(&self.partition, &fresh)
            }
            crate::config::RepartitionMode::Adaptive => {
                aa_partition::AdaptiveRefine::default().repartition(&self.world, &self.partition, p)
            }
        };
        let elapsed = t.elapsed();
        for rank in 0..p {
            self.cluster
                .compute_measured(rank, Phase::DomainDecomposition, elapsed / p as u32);
        }
        self.cluster.barrier();

        let migrated = self.migrate_to_partition(new_partition);
        debug_assert!(migrated < self.world.capacity());

        // New vertices get rows seeded from local SSSP (existing rows are
        // deliberately *not* updated — the paper's noted trade-off, paid
        // back in extra recombination steps).
        for rank in 0..p {
            let t = Stopwatch::start();
            for &id in &ids {
                if self.partition.part_of(id) == Some(rank) {
                    self.procs[rank].dv.add_row(id);
                    let fresh = self.procs[rank].local_sssp(id, self.config.ia);
                    self.procs[rank].merge_row_min(id, &fresh);
                    self.procs[rank].dirty.insert(id);
                }
            }
            self.cluster
                .compute_measured(rank, Phase::Migration, t.elapsed());
        }
        self.converged = false;
        ids
    }

    /// Installs `new_partition`: migrates the distance-vector rows (plus
    /// their delta baselines) of every relocated vertex to its new owner,
    /// rebuilds the processor views and marks every row dirty so the new
    /// neighbourhoods receive what they are missing. Returns the number of
    /// migrated vertices. Shared by Repartition-S, [`Self::rebalance`] and
    /// processor-failure recovery.
    ///
    /// The receivers' caches of a migrated row stay valid, so the new owner
    /// can keep sending deltas instead of full rows ("communicating the
    /// vertex information and its partial results", as the paper describes).
    pub(crate) fn migrate_to_partition(&mut self, new_partition: aa_partition::Partition) -> usize {
        let p = self.config.num_procs;
        let cap = self.world.capacity();
        for ps in &mut self.procs {
            ps.extend_capacity(cap);
        }
        type Migrated = (VertexId, Vec<Weight>, Option<Vec<Weight>>, Vec<usize>);
        let mut outbox: Vec<Vec<TransferOut<Migrated>>> = (0..p).map(|_| Vec::new()).collect();
        let mut migrated = 0usize;
        for old_rank in 0..p {
            for v in self.procs[old_rank].dv.vertices().to_vec() {
                // aa-lint: allow(AA01, every caller repartitions the same world whose rows are walked here, so each live vertex has an assignment in new_partition)
                let new_rank = new_partition.part_of(v).expect("live vertex assigned");
                if new_rank != old_rank {
                    migrated += 1;
                    let ps = &mut self.procs[old_rank];
                    let row = ps.dv.take_row(v);
                    let snapshot = ps.sent_snapshot.remove(&v);
                    let sent_to: Vec<usize> = ps
                        .sent_to
                        .remove(&v)
                        .map(|s| s.into_iter().collect())
                        .unwrap_or_default();
                    ps.dirty.remove(&v);
                    // Pending retransmits of the migrated row die with the
                    // old ownership: every row is re-marked dirty below, so
                    // the new owner resends to all current neighbourhoods.
                    ps.outstanding.retain(|&(u, _), _| u != v);
                    let bytes = 4
                        + 4 * row.len()
                        + snapshot.as_ref().map_or(0, |s| 4 * s.len())
                        + 4 * sent_to.len();
                    outbox[old_rank].push(TransferOut {
                        dst: new_rank,
                        bytes,
                        payload: (v, row, snapshot, sent_to),
                    });
                }
            }
        }
        let inbox = self.cluster.exchange(Phase::Migration, outbox);
        for (rank, received) in inbox.into_iter().enumerate() {
            for (_src, (v, row, snapshot, sent_to)) in received {
                let ps = &mut self.procs[rank];
                ps.dv.insert_row(v, row);
                if let Some(mut s) = snapshot {
                    s.resize(cap, aa_graph::INF);
                    ps.sent_snapshot.insert(v, s);
                    ps.sent_to.insert(v, sent_to.into_iter().collect());
                }
                // The new owner no longer needs its cached copy.
                ps.ext_rows.remove(&v);
            }
        }

        self.partition = new_partition;
        for rank in 0..p {
            let t = Stopwatch::start();
            self.procs[rank].rebuild_view(&self.world, &self.partition);
            // Every row must flow to the (possibly new) neighbourhoods.
            for v in self.procs[rank].dv.vertices().to_vec() {
                self.procs[rank].dirty.insert(v);
            }
            self.cluster
                .compute_measured(rank, Phase::Migration, t.elapsed());
        }
        self.converged = false;
        migrated
    }

    /// Baseline restart: add the batch to the world and rerun the full
    /// pipeline. Accounting accumulates (the figures compare cumulative
    /// time).
    fn incorporate_restart(&mut self, batch: &VertexBatch) -> Vec<VertexId> {
        let ids: Vec<VertexId> = (0..batch.count).map(|_| self.world.add_vertex()).collect();
        for &(i, other, w) in &batch.edges {
            let u = ids[i];
            let v = match other {
                Endpoint::New(j) => ids[j],
                Endpoint::Existing(x) => x,
            };
            self.world.add_edge(u, v, w);
        }
        self.partition =
            aa_partition::Partition::unassigned(self.world.capacity(), self.config.num_procs);
        self.procs = Vec::new();
        self.initialize();
        ids
    }

    /// Convenience for tests and examples: the local boundary row counts per
    /// processor (how many owned vertices have cut edges).
    pub fn boundary_counts(&self) -> Vec<usize> {
        self.procs
            .iter()
            .map(|ps: &ProcState| {
                ps.dv
                    .vertices()
                    .iter()
                    .filter(|&&v| ps.is_boundary(v))
                    .count()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use aa_graph::{algo, generators};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn engine(n: usize, p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(n, 2, 2, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    fn assert_oracle(e: &AnytimeEngine) {
        let dense = e.distances_dense();
        let oracle = algo::apsp_dijkstra(e.graph());
        for v in 0..e.graph().capacity() {
            if e.graph().is_alive(v as u32) {
                assert_eq!(dense[v], oracle[v], "row {v} differs from oracle");
            }
        }
    }

    /// A batch with internal community structure plus random attachments to
    /// existing vertices.
    fn community_batch(count: usize, existing: u32, seed: u64) -> VertexBatch {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = VertexBatch::new(count);
        for i in 1..count {
            // Chain within the batch plus one random intra-batch chord.
            b.connect(i, Endpoint::New(i - 1), 1);
            if i > 2 && rng.gen_bool(0.5) {
                b.connect(i, Endpoint::New(rng.gen_range(0..i - 1)), 1);
            }
        }
        for i in 0..count {
            if rng.gen_bool(0.6) {
                b.connect(i, Endpoint::Existing(rng.gen_range(0..existing)), 1);
            }
        }
        // Guarantee the batch is attached to the existing graph.
        b.connect(0, Endpoint::Existing(0), 1);
        b
    }

    #[test]
    fn round_robin_ps_matches_oracle() {
        let mut e = engine(80, 4, 1);
        e.run_to_convergence(32);
        let batch = community_batch(10, 80, 2);
        let ids = e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        assert_eq!(ids.len(), 10);
        e.check_invariants().unwrap();
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn round_robin_balances_counts() {
        let mut e = engine(40, 4, 3);
        e.run_to_convergence(32);
        let before = e.partition().part_sizes();
        let batch = community_batch(8, 40, 4);
        e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        let after = e.partition().part_sizes();
        for rank in 0..4 {
            assert_eq!(after[rank], before[rank] + 2, "exactly two each");
        }
    }

    #[test]
    fn cut_edge_ps_matches_oracle() {
        let mut e = engine(80, 4, 5);
        e.run_to_convergence(32);
        let batch = community_batch(12, 80, 6);
        e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
        e.check_invariants().unwrap();
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn cut_edge_ps_beats_round_robin_on_new_cut_edges() {
        // Two engines over the same world; a strongly clustered batch.
        let mut batch = VertexBatch::new(16);
        for c in 0..4 {
            let base = c * 4;
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    batch.connect(j, Endpoint::New(i), 1);
                }
            }
        }
        batch.connect(0, Endpoint::Existing(0), 1);
        let mut rr = engine(60, 4, 7);
        rr.run_to_convergence(32);
        let ids_rr = rr.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        let cut_rr = aa_partition::quality::new_cut_edges(rr.graph(), rr.partition(), &ids_rr);
        let mut ce = engine(60, 4, 7);
        ce.run_to_convergence(32);
        let ids_ce = ce.add_vertices(&batch, AdditionStrategy::CutEdgePs);
        let cut_ce = aa_partition::quality::new_cut_edges(ce.graph(), ce.partition(), &ids_ce);
        assert!(
            cut_ce < cut_rr,
            "CutEdge-PS new cut {cut_ce} must beat RoundRobin-PS {cut_rr}"
        );
    }

    #[test]
    fn repartition_s_matches_oracle() {
        let mut e = engine(80, 4, 9);
        e.run_to_convergence(32);
        let batch = community_batch(20, 80, 10);
        e.add_vertices(&batch, AdditionStrategy::RepartitionS);
        e.check_invariants().unwrap();
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn baseline_restart_matches_oracle() {
        let mut e = engine(80, 4, 11);
        e.run_to_convergence(32);
        let makespan_before = e.makespan_us();
        let batch = community_batch(10, 80, 12);
        e.add_vertices(&batch, AdditionStrategy::BaselineRestart);
        e.check_invariants().unwrap();
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
        assert!(
            e.makespan_us() > makespan_before,
            "restart cost accumulates"
        );
    }

    #[test]
    fn all_strategies_agree_on_final_distances() {
        let batch = community_batch(8, 50, 20);
        let mut reference: Option<Vec<Vec<u32>>> = None;
        for strategy in [
            AdditionStrategy::RoundRobinPs,
            AdditionStrategy::CutEdgePs,
            AdditionStrategy::RepartitionS,
            AdditionStrategy::BaselineRestart,
        ] {
            let mut e = engine(50, 4, 13);
            e.run_to_convergence(32);
            e.add_vertices(&batch, strategy);
            e.run_to_convergence(96);
            assert!(e.is_converged(), "{strategy} did not converge");
            let dense = e.distances_dense();
            match &reference {
                None => reference = Some(dense),
                Some(r) => assert_eq!(&dense, r, "{strategy} disagrees"),
            }
        }
    }

    #[test]
    fn additions_mid_run_converge() {
        let mut e = engine(60, 4, 15);
        e.rc_step(); // inject before static convergence (paper's RC0 case)
        let batch = community_batch(6, 60, 16);
        e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        e.run_to_convergence(64);
        assert_oracle(&e);
    }

    #[test]
    fn successive_batches_accumulate() {
        let mut e = engine(50, 4, 17);
        e.run_to_convergence(32);
        for round in 0..3 {
            let batch = community_batch(5, 50 + round * 5, 18 + round as u64);
            e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
            e.rc_step();
        }
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
        assert_eq!(e.graph().vertex_count(), 65);
    }

    #[test]
    fn isolated_new_vertices_are_legal() {
        let mut e = engine(40, 4, 19);
        e.run_to_convergence(32);
        let batch = VertexBatch::new(3); // no edges at all
        let ids = e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        e.run_to_convergence(32);
        assert_oracle(&e);
        let snap = e.snapshot();
        for id in ids {
            assert_eq!(snap.closeness[id as usize], 0.0);
        }
    }
}
