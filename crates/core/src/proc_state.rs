//! Per-processor state: the local sub-graph view and its distance vectors.
//!
//! Following the papers, processor `p_i` holds `G_i = (V_i ∪ B_i, E_i)` where
//! `V_i` are its owned (local) vertices, `E_i` the edges with at least one
//! endpoint in `V_i`, and `B_i` the *external boundary vertices* — endpoints
//! of cut edges owned elsewhere, which "act as bridges that connect the
//! neighbouring sub-graphs". External vertices appear in the adjacency view
//! but are never expanded: their own neighbourhoods are unknown here.

use crate::dv::DistanceMatrix;
use aa_graph::{Graph, VertexId, Weight, INF};
use aa_partition::Partition;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// A boundary-row update on the wire: the full distance vector on first
/// contact, or only the entries that changed since the last send — the
/// papers' "it is sufficient to send only the updated values of the boundary
/// DVs" optimization.
#[derive(Debug, Clone)]
pub enum RowUpdate {
    /// The complete row (first send to a given processor).
    Full(Vec<Weight>),
    /// Changed `(column, new_value)` pairs since the receiver's copy.
    Delta(Vec<(u32, Weight)>),
}

impl RowUpdate {
    /// Wire size in bytes (4-byte vertex id header + payload).
    pub fn bytes(&self) -> usize {
        4 + match self {
            RowUpdate::Full(row) => 4 * row.len(),
            RowUpdate::Delta(d) => 8 * d.len(),
        }
    }
}

/// The changed `(column, value)` pairs between a previously sent snapshot and
/// the current row (entries that decreased; increases only happen through
/// deletion invalidation, which resets both sides consistently).
// aa-lint: allow(AA07, the filter admits i >= snapshot.len() before snapshot[i] is read — the index is guarded on the same line)
pub fn diff_rows(snapshot: &[Weight], current: &[Weight]) -> Vec<(u32, Weight)> {
    current
        .iter()
        .enumerate()
        .filter(|&(i, &c)| i >= snapshot.len() || c < snapshot[i])
        // aa-lint: allow(AA05, i indexes a distance row whose length is bounded by the u32 vertex-id space)
        .map(|(i, &c)| (i as u32, c))
        .collect()
}

/// A boundary-row send whose delivery receipt came back negative: the
/// network dropped it and it awaits retransmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outstanding {
    /// Failed delivery attempts so far (≥ 1).
    pub attempts: u32,
    /// Earliest recombination step at which the next retransmit may go out.
    pub next_step: u64,
}

/// Longest backoff between retransmits of the same row, in rc steps.
pub const RETRY_BACKOFF_CAP: u64 = 8;

/// Backoff delay before the next retransmit after `attempts` failed
/// deliveries: 1, 2, 4, then capped at [`RETRY_BACKOFF_CAP`] steps. The
/// retry count itself is unbounded — min-merge delivery is idempotent, so
/// retrying forever is safe, and capping the *interval* keeps the expected
/// time-to-convergence finite for any drop rate below 1.
pub fn retry_backoff(attempts: u32) -> u64 {
    1u64 << (attempts.saturating_sub(1)).min(3)
}

/// State of one virtual processor.
#[derive(Debug, Clone)]
pub struct ProcState {
    /// This processor's rank.
    pub rank: usize,
    /// Adjacency view: populated for local vertices (all their edges) and for
    /// external boundary vertices (only their edges to local vertices).
    pub adj: Vec<Vec<(VertexId, Weight)>>,
    /// Whether each vertex id slot is owned here.
    pub is_local: Vec<bool>,
    /// Distance vectors of owned vertices.
    pub dv: DistanceMatrix,
    /// Cached DV rows of external boundary vertices, as last received.
    pub ext_rows: HashMap<VertexId, Vec<Weight>>,
    /// Owned vertices whose rows changed since they were last sent.
    pub dirty: HashSet<VertexId>,
    /// Per boundary row: copy of the row as last sent (delta baseline).
    pub sent_snapshot: HashMap<VertexId, Vec<Weight>>,
    /// Per boundary row: processors that already hold a copy (and can
    /// therefore accept deltas). Under the ack-based protocol a destination
    /// joins this set only once a delivery receipt confirms it actually
    /// received the row.
    pub sent_to: HashMap<VertexId, HashSet<usize>>,
    /// Sends that were dropped by the (faulty) network and must be
    /// retransmitted, keyed by `(row, destination rank)`. Always empty on a
    /// fault-free cluster. A processor may not vote "no more updates" while
    /// this is non-empty — undelivered rows count as in-flight work.
    pub outstanding: HashMap<(VertexId, usize), Outstanding>,
}

impl ProcState {
    /// Creates an empty processor state for a graph with `capacity` id slots.
    pub fn new(rank: usize, capacity: usize) -> Self {
        ProcState {
            rank,
            adj: vec![Vec::new(); capacity],
            is_local: vec![false; capacity],
            dv: DistanceMatrix::new(capacity),
            ext_rows: HashMap::new(),
            dirty: HashSet::new(),
            sent_snapshot: HashMap::new(),
            sent_to: HashMap::new(),
            outstanding: HashMap::new(),
        }
    }

    /// Forgets all delta baselines (used when ownership changes under the
    /// receivers, e.g. repartitioning): the next send of every row is full.
    /// Pending retransmits are dropped too — callers re-dirty every affected
    /// row, so the data goes out again as full rows.
    pub fn reset_send_state(&mut self) {
        self.sent_snapshot.clear();
        self.sent_to.clear();
        self.outstanding.clear();
    }

    /// Re-aligns every delta baseline with the current row values. Only
    /// sound at quiescence (no dirty rows, no outstanding retransmits),
    /// where every receiver's cached copy equals the current row. Retransmit
    /// acks deliberately leave the baseline at an older (pointwise larger)
    /// snapshot; the deletion barrier calls this before invalidation so both
    /// sides of the baseline see identical values. A no-op on fault-free
    /// runs.
    pub fn sync_snapshots_to_rows(&mut self) {
        debug_assert!(self.outstanding.is_empty() && self.dirty.is_empty());
        // aa-lint: allow(AA04, per-key overwrite; the result is identical for every visit order)
        let rows: Vec<VertexId> = self.sent_snapshot.keys().copied().collect();
        for u in rows {
            if self.dv.has_row(u) {
                self.sent_snapshot.insert(u, self.dv.row(u).to_vec());
            }
        }
    }

    /// Builds the update message for row `u` towards processor `dst`, or
    /// `None` if `dst` is already up to date. Does not record the send — call
    /// [`Self::record_sent`] once all destinations are served.
    pub fn build_row_update(&self, u: VertexId, dst: usize) -> Option<RowUpdate> {
        let row = self.dv.row(u);
        if self.sent_to.get(&u).is_some_and(|s| s.contains(&dst)) {
            let snapshot = self
                .sent_snapshot
                .get(&u)
                // aa-lint: allow(AA01, record_sent inserts sent_snapshot and sent_to together, so membership in sent_to implies the snapshot)
                .expect("snapshot exists for sent row");
            let delta = diff_rows(snapshot, row);
            if delta.is_empty() {
                return None;
            }
            Some(RowUpdate::Delta(delta))
        } else {
            Some(RowUpdate::Full(row.to_vec()))
        }
    }

    /// Records that row `u` was just sent to exactly `dsts`, refreshing the
    /// delta baseline. Ranks *not* in `dsts` are dropped from the up-to-date
    /// set: a processor that misses an update (its cut edges to `u` came and
    /// went) gets a full row on next contact rather than an under-informed
    /// delta.
    pub fn record_sent(&mut self, u: VertexId, dsts: &[usize]) {
        self.sent_snapshot.insert(u, self.dv.row(u).to_vec());
        self.sent_to.insert(u, dsts.iter().copied().collect());
    }

    /// Rebuilds the adjacency view and locality flags from the world graph
    /// and a partition. Does **not** touch the distance matrix or caches —
    /// callers decide what survives (everything after initial decomposition,
    /// migrated rows after repartitioning).
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn rebuild_view(&mut self, world: &Graph, partition: &Partition) {
        let cap = world.capacity();
        self.adj = vec![Vec::new(); cap];
        self.is_local = vec![false; cap];
        for v in world.vertices() {
            if partition.part_of(v) == Some(self.rank) {
                self.is_local[v as usize] = true;
            }
        }
        for v in world.vertices() {
            if !self.is_local[v as usize] {
                continue;
            }
            for &(u, w) in world.neighbors(v) {
                self.adj[v as usize].push((u, w));
                if !self.is_local[u as usize] {
                    // External boundary vertex: record only its local edges.
                    self.adj[u as usize].push((v, w));
                }
            }
        }
        // Local-local edges got pushed once from each side already; external
        // entries were pushed from the local side only. Nothing to dedup: the
        // loop above adds each (local, local) edge to both lists exactly once
        // and each (local, external) edge to both lists exactly once.
    }

    /// Owned vertices in row order.
    pub fn local_vertices(&self) -> &[VertexId] {
        self.dv.vertices()
    }

    /// Whether local vertex `u` has a cut edge (is a local boundary vertex).
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn is_boundary(&self, u: VertexId) -> bool {
        self.adj[u as usize]
            .iter()
            .any(|&(v, _)| !self.is_local[v as usize])
    }

    /// The distinct owner ranks of `u`'s external neighbours.
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn neighbor_ranks(&self, u: VertexId, partition: &Partition) -> Vec<usize> {
        let mut ranks: Vec<usize> = self.adj[u as usize]
            .iter()
            .filter(|&&(v, _)| !self.is_local[v as usize])
            .filter_map(|&(v, _)| partition.part_of(v))
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Records an edge in the adjacency view if at least one endpoint is
    /// local. Mirrors [`Self::rebuild_view`]'s shape.
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn view_add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        if !self.is_local[u as usize] && !self.is_local[v as usize] {
            return;
        }
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
    }

    /// Removes an edge from the adjacency view (no-op if absent).
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn view_remove_edge(&mut self, u: VertexId, v: VertexId) {
        if let Some(p) = self.adj[u as usize].iter().position(|&(x, _)| x == v) {
            self.adj[u as usize].swap_remove(p);
        }
        if let Some(p) = self.adj[v as usize].iter().position(|&(x, _)| x == u) {
            self.adj[v as usize].swap_remove(p);
        }
    }

    /// Grows all capacity-indexed structures to `new_cap` slots.
    pub fn extend_capacity(&mut self, new_cap: usize) {
        if new_cap <= self.adj.len() {
            return;
        }
        self.adj.resize(new_cap, Vec::new());
        self.is_local.resize(new_cap, false);
        self.dv.extend_cols(new_cap);
        // aa-lint: allow(AA04, independent per-row resize; no cross-row state, order cannot leak)
        for row in self.ext_rows.values_mut() {
            row.resize(new_cap, INF);
        }
        // aa-lint: allow(AA04, independent per-row resize; no cross-row state, order cannot leak)
        for row in self.sent_snapshot.values_mut() {
            row.resize(new_cap, INF);
        }
    }

    /// Applies a received boundary-row update: replaces or patches the cached
    /// copy, then relaxes the adjacent local rows. Returns worklist seeds.
    // aa-lint: allow(AA07, delta columns index a row resized to world capacity first, and senders share the same world whose capacity every processor extends before exchanging)
    pub fn apply_row_update(&mut self, v: VertexId, update: RowUpdate) -> Vec<VertexId> {
        match update {
            RowUpdate::Full(row) => self.apply_external_row(v, row),
            RowUpdate::Delta(delta) => {
                let cap = self.adj.len();
                let row = self.ext_rows.entry(v).or_insert_with(|| vec![INF; cap]);
                row.resize(cap, INF);
                for &(col, val) in &delta {
                    if val < row[col as usize] {
                        row[col as usize] = val;
                    }
                }
                let row = row.clone();
                let mut seeds = Vec::new();
                for &(u, w) in self.adj[v as usize].clone().iter() {
                    if self.is_local[u as usize] && self.dv.relax_with_external(u, &row, w) {
                        seeds.push(u);
                        self.dirty.insert(u);
                    }
                }
                seeds
            }
        }
    }

    /// Dijkstra from `source` restricted to the local sub-graph: local
    /// vertices are expanded, external boundary vertices are reached but not
    /// expanded. Returns a full-width distance row.
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn local_dijkstra(&self, source: VertexId) -> Vec<Weight> {
        let mut dist = vec![INF; self.adj.len()];
        dist[source as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u32, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if !self.is_local[u as usize] {
                continue; // external: reachable, not expandable
            }
            for &(v, w) in &self.adj[u as usize] {
                let nd = d.saturating_add(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// Local single-source shortest paths with the configured algorithm.
    /// All variants treat external boundary vertices as reachable sinks.
    pub fn local_sssp(&self, source: VertexId, algo: crate::config::IaAlgorithm) -> Vec<Weight> {
        use crate::config::IaAlgorithm;
        match algo {
            IaAlgorithm::Dijkstra => self.local_dijkstra(source),
            IaAlgorithm::DeltaStepping { delta } => self.local_delta_stepping(source, delta),
            IaAlgorithm::BellmanFord => self.local_bellman_ford(source),
        }
    }

    /// Δ-stepping restricted to the local sub-graph (see
    /// [`aa_graph::centrality::delta_stepping`] for the sequential analogue).
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time — and the delta precondition is an assert naming its contract)
    pub fn local_delta_stepping(&self, source: VertexId, delta: Weight) -> Vec<Weight> {
        assert!(delta >= 1, "delta must be at least 1");
        let mut dist = vec![INF; self.adj.len()];
        dist[source as usize] = 0;
        let mut buckets: Vec<Vec<VertexId>> = vec![vec![source]];
        let mut bi = 0usize;
        while bi < buckets.len() {
            while let Some(v) = buckets[bi].pop() {
                let dv = dist[v as usize];
                if dv == INF || (dv / delta) as usize != bi {
                    continue;
                }
                if !self.is_local[v as usize] {
                    continue; // external boundary: reachable, not expandable
                }
                for &(u, w) in &self.adj[v as usize] {
                    let nd = dv.saturating_add(w);
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        let b = (nd / delta) as usize;
                        if buckets.len() <= b {
                            buckets.resize(b + 1, Vec::new());
                        }
                        buckets[b].push(u);
                    }
                }
            }
            bi += 1;
            while bi < buckets.len() && buckets[bi].is_empty() {
                bi += 1;
            }
        }
        dist
    }

    /// Bellman–Ford sweeps over the local edges to a fixed point.
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn local_bellman_ford(&self, source: VertexId) -> Vec<Weight> {
        let mut dist = vec![INF; self.adj.len()];
        dist[source as usize] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..self.adj.len() {
                if !self.is_local[v] || dist[v] == INF {
                    continue;
                }
                for &(u, w) in &self.adj[v] {
                    let nd = dist[v].saturating_add(w);
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        changed = true;
                    }
                }
            }
        }
        dist
    }

    /// Initial approximation: computes the local-sub-graph APSP rows for all
    /// owned vertices (multithreaded over sources — the papers' OpenMP level)
    /// and installs them as the distance vectors. Marks every row dirty.
    // aa-lint: allow(AA07, sources come from the matrix's own vertex list and sssp rows are full-width by construction)
    pub fn initial_approximation(&mut self, algo: crate::config::IaAlgorithm) {
        let sources: Vec<VertexId> = self.dv.vertices().to_vec();
        let rows: Vec<(VertexId, Vec<Weight>)> = sources
            .par_iter()
            .map(|&s| (s, self.local_sssp(s, algo)))
            .collect();
        for (s, row) in rows {
            let dst = self.dv.row_mut(s);
            dst.copy_from_slice(&row[..dst.len()]);
            self.dirty.insert(s);
        }
    }

    /// Stores a received external boundary row and relaxes the adjacent local
    /// rows. Returns the local vertices whose rows improved (worklist seeds).
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time — short external rows are resized to capacity before any read)
    pub fn apply_external_row(&mut self, v: VertexId, row: Vec<Weight>) -> Vec<VertexId> {
        let mut seeds = Vec::new();
        // The sender's column count can momentarily trail ours mid-batch;
        // pad defensively.
        let mut row = row;
        row.resize(self.adj.len(), INF);
        for &(u, w) in self.adj[v as usize].clone().iter() {
            if self.is_local[u as usize] && self.dv.relax_with_external(u, &row, w) {
                seeds.push(u);
                self.dirty.insert(u);
            }
        }
        self.ext_rows.insert(v, row);
        seeds
    }

    /// Label-correcting propagation over local edges from the given seeds
    /// until the local fixed point. Marks improved rows dirty. Returns
    /// whether anything changed.
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn propagate_worklist(&mut self, seeds: Vec<VertexId>) -> bool {
        let mut changed = false;
        let mut queue: VecDeque<VertexId> = seeds.into();
        let mut queued: HashSet<VertexId> = queue.iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            queued.remove(&v);
            for &(u, w) in self.adj[v as usize].clone().iter() {
                if !self.is_local[u as usize] {
                    continue;
                }
                if self.dv.relax_rows(u, v, w) {
                    changed = true;
                    self.dirty.insert(u);
                    if queued.insert(u) {
                        queue.push_back(u);
                    }
                }
            }
        }
        changed
    }

    /// The papers' Floyd–Warshall refinement variant: one pass relaxing every
    /// owned row through every local *boundary* pivot (`D[u][*] = min(D[u][*],
    /// D[u][l] + D[l][*])`). Marks improved rows dirty. Returns whether
    /// anything changed.
    // aa-lint: allow(AA07, pivots and rows both come from the matrix's own vertex list and row width equals capacity, so row(u)[l] is in range)
    pub fn pivot_pass(&mut self) -> bool {
        let pivots: Vec<VertexId> = self
            .dv
            .vertices()
            .iter()
            .copied()
            .filter(|&l| self.is_boundary(l))
            .collect();
        let rows: Vec<VertexId> = self.dv.vertices().to_vec();
        let mut changed = false;
        for &l in &pivots {
            for &u in &rows {
                if u == l {
                    continue;
                }
                let offset = self.dv.row(u)[l as usize];
                if offset != INF && self.dv.relax_rows(u, l, offset) {
                    changed = true;
                    self.dirty.insert(u);
                }
            }
        }
        changed
    }

    /// Re-relaxes local vertex `u` through all cached external rows of its
    /// external neighbours (used after deletion invalidation). Returns
    /// whether the row improved.
    // aa-lint: allow(AA07, vertex ids are allocated below world capacity and every table here (adj, is_local, dist rows) is sized to that capacity at rebuild/extend time)
    pub fn relax_from_cache(&mut self, u: VertexId) -> bool {
        let mut changed = false;
        for &(b, w) in self.adj[u as usize].clone().iter() {
            if self.is_local[b as usize] {
                continue;
            }
            if let Some(row) = self.ext_rows.get(&b) {
                let row = row.clone();
                if self.dv.relax_with_external(u, &row, w) {
                    changed = true;
                    self.dirty.insert(u);
                }
            }
        }
        changed
    }

    /// Min-merges a freshly computed local-Dijkstra row into `u`'s stored row
    /// (used when reseeding after invalidation). Marks dirty on change.
    pub fn merge_row_min(&mut self, u: VertexId, fresh: &[Weight]) -> bool {
        let dst = self.dv.row_mut(u);
        let mut changed = false;
        for (d, &f) in dst.iter_mut().zip(fresh) {
            if f < *d {
                *d = f;
                changed = true;
            }
        }
        if changed {
            self.dirty.insert(u);
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_graph::generators;
    use aa_partition::{Partitioner, RoundRobinPartitioner};

    /// Path 0-1-2-3 split as {0,1} | {2,3}.
    fn split_path() -> (Graph, Partition, ProcState, ProcState) {
        let g = generators::path(4);
        let mut part = Partition::unassigned(4, 2);
        part.assign(0, 0);
        part.assign(1, 0);
        part.assign(2, 1);
        part.assign(3, 1);
        let mut p0 = ProcState::new(0, 4);
        let mut p1 = ProcState::new(1, 4);
        p0.rebuild_view(&g, &part);
        p1.rebuild_view(&g, &part);
        for v in [0u32, 1] {
            p0.dv.add_row(v);
        }
        for v in [2u32, 3] {
            p1.dv.add_row(v);
        }
        (g, part, p0, p1)
    }

    #[test]
    fn view_contains_local_and_boundary_edges() {
        let (_, _, p0, p1) = split_path();
        assert!(p0.is_local[0] && p0.is_local[1]);
        assert!(!p0.is_local[2]);
        // p0 sees edge 1-2 from both sides, but nothing about 2-3.
        assert_eq!(p0.adj[1], vec![(0, 1), (2, 1)]);
        assert_eq!(p0.adj[2], vec![(1, 1)]);
        assert!(p0.adj[3].is_empty());
        assert!(p1.adj[0].is_empty());
    }

    #[test]
    fn boundary_detection() {
        let (_, part, p0, _) = split_path();
        assert!(!p0.is_boundary(0));
        assert!(p0.is_boundary(1));
        assert_eq!(p0.neighbor_ranks(1, &part), vec![1]);
        assert!(p0.neighbor_ranks(0, &part).is_empty());
    }

    #[test]
    fn local_dijkstra_stops_at_external_vertices() {
        let (_, _, p0, _) = split_path();
        let d = p0.local_dijkstra(0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2, "external boundary vertex is reachable");
        assert_eq!(d[3], INF, "but not expanded");
    }

    #[test]
    fn initial_approximation_fills_rows_and_dirties() {
        let (_, _, mut p0, _) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        assert_eq!(p0.dv.row(0), &[0, 1, 2, INF]);
        assert_eq!(p0.dv.row(1), &[1, 0, 1, INF]);
        assert_eq!(p0.dirty.len(), 2);
    }

    #[test]
    fn external_row_application_relaxes_neighbors() {
        let (_, _, mut p0, mut p1) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p1.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        // p1 sends row of vertex 2 to p0.
        let row2 = p1.dv.row(2).to_vec();
        p0.dirty.clear();
        let seeds = p0.apply_external_row(2, row2);
        assert_eq!(seeds, vec![1]);
        assert_eq!(p0.dv.row(1), &[1, 0, 1, 2]);
        // Worklist propagation carries it to vertex 0.
        p0.propagate_worklist(seeds);
        assert_eq!(p0.dv.row(0), &[0, 1, 2, 3]);
        assert!(p0.dirty.contains(&0) && p0.dirty.contains(&1));
    }

    #[test]
    fn pivot_pass_spreads_boundary_knowledge() {
        let (_, _, mut p0, mut p1) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p1.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        let row2 = p1.dv.row(2).to_vec();
        p0.apply_external_row(2, row2);
        // Row 1 now knows d(1,3)=2; a pivot pass through boundary vertex 1
        // must teach row 0.
        assert!(p0.pivot_pass());
        assert_eq!(p0.dv.row(0)[3], 3);
        assert!(!p0.pivot_pass(), "second pass is a fixed point");
    }

    #[test]
    fn view_edge_updates() {
        let (_, _, mut p0, _) = split_path();
        p0.view_add_edge(0, 3, 5); // 3 is external: recorded from both sides
        assert!(p0.adj[0].contains(&(3, 5)));
        assert!(p0.adj[3].contains(&(0, 5)));
        p0.view_remove_edge(0, 3);
        assert!(!p0.adj[0].contains(&(3, 5)));
        assert!(p0.adj[3].is_empty());
        // Edge fully external to this proc: ignored.
        p0.view_add_edge(2, 3, 1);
        assert!(p0.adj[2].iter().all(|&(x, _)| x != 3));
    }

    #[test]
    fn extend_capacity_grows_everything() {
        let (_, _, mut p0, _) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p0.ext_rows.insert(2, vec![2, 1, 0, 1]);
        p0.extend_capacity(6);
        assert_eq!(p0.adj.len(), 6);
        assert_eq!(p0.dv.col_count(), 6);
        assert_eq!(p0.dv.row(0)[5], INF);
        assert_eq!(p0.ext_rows[&2].len(), 6);
    }

    #[test]
    fn relax_from_cache_uses_stored_rows() {
        let (_, _, mut p0, mut p1) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p1.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        let row2 = p1.dv.row(2).to_vec();
        p0.apply_external_row(2, row2);
        // Wipe row 1's knowledge of vertex 3 and recover it from the cache.
        p0.dv.row_mut(1)[3] = INF;
        p0.dirty.clear();
        assert!(p0.relax_from_cache(1));
        assert_eq!(p0.dv.row(1)[3], 2);
        assert!(p0.dirty.contains(&1));
    }

    #[test]
    fn merge_row_min_takes_pointwise_minimum() {
        let (_, _, mut p0, _) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p0.dv.row_mut(0)[1] = INF;
        assert!(p0.merge_row_min(0, &[9, 1, 9, 9]));
        assert_eq!(p0.dv.row(0), &[0, 1, 2, 9]);
        assert!(!p0.merge_row_min(0, &[9, 9, 9, 9]));
    }

    #[test]
    fn diff_rows_reports_decreases_and_new_columns() {
        assert_eq!(diff_rows(&[5, 3, INF], &[5, 2, INF]), vec![(1, 2)]);
        assert_eq!(
            diff_rows(&[5], &[5, 7]),
            vec![(1, 7)],
            "grown column counts as new"
        );
        assert!(diff_rows(&[5, 3], &[5, 3]).is_empty());
    }

    #[test]
    fn row_update_bytes() {
        assert_eq!(RowUpdate::Full(vec![1, 2, 3]).bytes(), 4 + 12);
        assert_eq!(RowUpdate::Delta(vec![(0, 1), (5, 2)]).bytes(), 4 + 16);
    }

    #[test]
    fn first_send_is_full_then_delta() {
        let (_, _, mut p0, _) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        let upd = p0.build_row_update(1, 1).unwrap();
        assert!(matches!(upd, RowUpdate::Full(_)));
        p0.record_sent(1, &[1]);
        assert!(
            p0.build_row_update(1, 1).is_none(),
            "unchanged row sends nothing"
        );
        // Improve one entry: next update is a one-entry delta.
        p0.dv.row_mut(1)[3] = 2;
        match p0.build_row_update(1, 1).unwrap() {
            RowUpdate::Delta(d) => assert_eq!(d, vec![(3, 2)]),
            other => panic!("expected delta, got {other:?}"),
        }
        // A new destination still gets the full row.
        assert!(matches!(
            p0.build_row_update(1, 0).unwrap(),
            RowUpdate::Full(_)
        ));
    }

    #[test]
    fn record_sent_drops_missed_destinations() {
        let (_, _, mut p0, _) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p0.record_sent(1, &[1, 0]);
        p0.dv.row_mut(1)[3] = 2;
        p0.record_sent(1, &[1]); // rank 0 missed this update
        assert!(
            matches!(p0.build_row_update(1, 0).unwrap(), RowUpdate::Full(_)),
            "a rank that missed an update must get a full row"
        );
        assert!(p0.build_row_update(1, 1).is_none());
    }

    #[test]
    fn apply_delta_patches_cache_and_relaxes() {
        let (_, _, mut p0, mut p1) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p1.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        let row2 = p1.dv.row(2).to_vec();
        p0.apply_external_row(2, row2);
        // p1 learns d(2,0) = 2 and ships only the delta.
        p1.dv.row_mut(2)[0] = 2;
        let seeds = p0.apply_row_update(2, RowUpdate::Delta(vec![(0, 2)]));
        assert_eq!(p0.ext_rows[&2][0], 2);
        assert_eq!(
            seeds,
            Vec::<VertexId>::new(),
            "no local row improves from this"
        );
        // A useful delta: d(2,3) drops to 1 (already known) then d(2,3)=0 fake
        // improvement must relax local vertex 1.
        let seeds = p0.apply_row_update(2, RowUpdate::Delta(vec![(3, 0)]));
        assert_eq!(seeds, vec![1]);
        assert_eq!(p0.dv.row(1)[3], 1);
    }

    #[test]
    fn apply_delta_without_cache_starts_from_inf() {
        let (_, _, mut p0, _) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        let seeds = p0.apply_row_update(2, RowUpdate::Delta(vec![(3, 1)]));
        assert_eq!(p0.ext_rows[&2][3], 1);
        assert_eq!(p0.ext_rows[&2][0], INF);
        assert_eq!(seeds, vec![1], "local 1 learns d(1,3) = 2");
        assert_eq!(p0.dv.row(1)[3], 2);
    }

    #[test]
    fn reset_send_state_forces_full_rows() {
        let (_, _, mut p0, _) = split_path();
        p0.initial_approximation(crate::config::IaAlgorithm::Dijkstra);
        p0.record_sent(1, &[1]);
        p0.reset_send_state();
        assert!(matches!(
            p0.build_row_update(1, 1).unwrap(),
            RowUpdate::Full(_)
        ));
    }

    #[test]
    fn rebuild_view_with_real_partitioner() {
        let g = generators::barabasi_albert(60, 2, 1, 3);
        let part = RoundRobinPartitioner.partition(&g, 4);
        for rank in 0..4 {
            let mut ps = ProcState::new(rank, g.capacity());
            ps.rebuild_view(&g, &part);
            // Every local vertex has its full world adjacency.
            for v in g.vertices() {
                if part.part_of(v) == Some(rank) {
                    assert_eq!(ps.adj[v as usize].len(), g.degree(v));
                }
            }
        }
    }
}
