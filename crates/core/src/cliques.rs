//! Distributed maximal clique enumeration on the simulated cluster.
//!
//! The anytime-anywhere framework family includes a maximal-clique
//! instantiation (cited by the papers alongside the closeness work). This
//! module distributes the classic *vertex-rooted* decomposition: every
//! maximal clique is enumerated exactly once, by the processor owning its
//! minimum-id member.
//!
//! One exchange round ships the adjacency lists of boundary vertices to the
//! processors that border them — after it, the owner of `v` knows every edge
//! among `{v} ∪ N(v)` (an edge between two external members is listed in
//! either endpoint's shipped adjacency) — and each processor then runs
//! pivoted Bron–Kerbosch on its owned roots in parallel (rayon, the papers'
//! intra-processor threading level).

use crate::engine::AnytimeEngine;
use aa_graph::{cliques, Graph, VertexId};
use aa_logp::Phase;
use aa_obs::Stopwatch;
use aa_runtime::TransferOut;
use rayon::prelude::*;

impl AnytimeEngine {
    /// Enumerates all maximal cliques of the current graph, distributed over
    /// the virtual processors (boundary-adjacency exchange + per-root
    /// Bron–Kerbosch), and gathers them to rank 0. Results match
    /// [`aa_graph::cliques::maximal_cliques`] exactly (sorted).
    ///
    /// Intended for moderate graphs: clique counts are exponential in the
    /// worst case.
    pub fn maximal_cliques(&mut self) -> Vec<Vec<VertexId>> {
        assert!(self.initialized, "call initialize() first");
        let p = self.config.num_procs;
        let cap = self.world.capacity();

        // --- round 1: ship boundary adjacency lists ------------------------
        type AdjMsg = Vec<(VertexId, Vec<VertexId>)>;
        let mut outbox: Vec<Vec<TransferOut<AdjMsg>>> = (0..p).map(|_| Vec::new()).collect();
        for rank in 0..p {
            let t = Stopwatch::start();
            let ps = &self.procs[rank];
            let mut per_dst: Vec<AdjMsg> = vec![Vec::new(); p];
            for &u in ps.dv.vertices() {
                let dsts = ps.neighbor_ranks(u, &self.partition);
                if dsts.is_empty() {
                    continue;
                }
                let nbrs: Vec<VertexId> = ps.adj[u as usize].iter().map(|&(x, _)| x).collect();
                for dst in dsts {
                    per_dst[dst].push((u, nbrs.clone()));
                }
            }
            for (dst, msg) in per_dst.into_iter().enumerate() {
                if !msg.is_empty() {
                    let bytes: usize = msg.iter().map(|(_, l)| 4 + 4 * l.len()).sum();
                    outbox[rank].push(TransferOut {
                        dst,
                        bytes,
                        payload: msg,
                    });
                }
            }
            self.cluster
                .compute_measured(rank, Phase::Recombination, t.elapsed());
        }
        let inbox = self.cluster.exchange(Phase::Recombination, outbox);

        // --- round 2: per-processor rooted enumeration ---------------------
        let mut all: Vec<Vec<VertexId>> = Vec::new();
        let mut gather: Vec<Vec<TransferOut<()>>> = (0..p).map(|_| Vec::new()).collect();
        for (rank, received) in inbox.into_iter().enumerate() {
            let t = Stopwatch::start();
            // Augmented view: local knowledge + received boundary adjacency.
            let mut aug = Graph::with_vertices(cap);
            let ps = &self.procs[rank];
            for v in 0..cap {
                for &(u, w) in &ps.adj[v] {
                    if (u as usize) < cap && self.world.is_alive(u) && self.world.is_alive(v as u32)
                    {
                        aug.add_edge(v as VertexId, u, w);
                    }
                }
            }
            for (_src, msg) in received {
                for (u, nbrs) in msg {
                    for x in nbrs {
                        if self.world.is_alive(u) && self.world.is_alive(x) && u != x {
                            aug.add_edge(u, x, 1);
                        }
                    }
                }
            }
            let roots: Vec<VertexId> = ps.dv.vertices().to_vec();
            let mut local: Vec<Vec<VertexId>> = roots
                .par_iter()
                .flat_map_iter(|&v| cliques::cliques_rooted_at(&aug, v))
                .collect();
            self.cluster
                .compute_measured(rank, Phase::Recombination, t.elapsed());
            if rank != 0 {
                let bytes: usize = local.iter().map(|c| 4 + 4 * c.len()).sum();
                gather[rank].push(TransferOut {
                    dst: 0,
                    bytes,
                    payload: (),
                });
            }
            all.append(&mut local);
        }
        self.cluster.exchange(Phase::Recombination, gather);
        all.sort();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::dynamic::{Endpoint, VertexBatch};
    use crate::strategy::AdditionStrategy;
    use aa_graph::generators;

    fn engine(g: Graph, p: usize) -> AnytimeEngine {
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let g = generators::erdos_renyi_gnm(50, 220, 1, seed);
            let want = cliques::maximal_cliques(&g);
            let mut e = engine(g, 4);
            assert_eq!(e.maximal_cliques(), want, "seed {seed}");
        }
    }

    #[test]
    fn matches_oracle_on_community_graph() {
        let g = generators::planted_partition(3, 10, 0.7, 0.05, 1, 7);
        let want = cliques::maximal_cliques(&g);
        let mut e = engine(g, 3);
        assert_eq!(e.maximal_cliques(), want);
    }

    #[test]
    fn works_with_one_processor() {
        let g = generators::complete(7);
        let mut e = engine(g, 1);
        let cliques = e.maximal_cliques();
        assert_eq!(cliques, vec![vec![0, 1, 2, 3, 4, 5, 6]]);
    }

    #[test]
    fn reflects_dynamic_updates() {
        let g = generators::path(6);
        let mut e = engine(g, 3);
        e.run_to_convergence(32);
        // Close a triangle dynamically.
        e.add_edge(0, 2, 1);
        e.run_to_convergence(32);
        let got = e.maximal_cliques();
        let want = cliques::maximal_cliques(e.graph());
        assert_eq!(got, want);
        assert!(got.contains(&vec![0, 1, 2]));
        // Add a vertex forming a 4-clique with 0,1,2.
        let mut batch = VertexBatch::new(1);
        for a in [0u32, 1, 2] {
            batch.connect(0, Endpoint::Existing(a), 1);
        }
        e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        let got = e.maximal_cliques();
        assert_eq!(got, cliques::maximal_cliques(e.graph()));
        assert!(got.iter().any(|c| c.len() == 4));
    }

    #[test]
    fn charges_communication() {
        let g = generators::erdos_renyi_gnm(40, 120, 1, 9);
        let mut e = engine(g, 4);
        let before = e.cluster().ledger().totals().bytes;
        e.maximal_cliques();
        assert!(e.cluster().ledger().totals().bytes > before);
    }

    #[test]
    fn handles_tombstones() {
        let g = generators::complete(6);
        let mut e = engine(g, 3);
        e.run_to_convergence(32);
        e.delete_vertex(2);
        let got = e.maximal_cliques();
        assert_eq!(got, cliques::maximal_cliques(e.graph()));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].len(), 5);
    }
}
