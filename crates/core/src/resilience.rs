//! Processor-failure injection and anytime recovery — the papers' second
//! named future-work item ("investigate anytime anywhere methodologies to
//! handle issues such as fault tolerance in the cloud").
//!
//! The failure model is a cloud-style node replacement: one virtual
//! processor loses its entire state (distance vectors, caches, delta
//! baselines) and is replaced by a blank node with the same rank and the same
//! sub-graph assignment. Recovery leans on the anytime property instead of a
//! global restart:
//!
//! 1. the replacement rebuilds its sub-graph view and reseeds its rows from
//!    local SSSP (the initial-approximation step, but only for one rank);
//! 2. every *surviving* processor forgets the failed rank in its delta
//!    baselines (the replacement's caches are gone, so deltas would
//!    under-inform it) and marks its rows that border the failed rank dirty,
//!    forcing full boundary rows to flow back in;
//! 3. ordinary recombination steps reconverge — surviving partial results are
//!    reused untouched.

use crate::config::Refinement;
use crate::engine::AnytimeEngine;
use aa_graph::{VertexId, Weight, INF};
use aa_logp::Phase;
use aa_obs::Stopwatch;

/// Why a recovery request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// The engine has not been initialized yet — call `initialize()` first.
    NotInitialized,
    /// The rank does not exist on this cluster.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// How many processors the cluster actually has.
        num_procs: usize,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NotInitialized => {
                f.write_str("engine not initialized: call initialize() first")
            }
            RecoveryError::InvalidRank { rank, num_procs } => {
                write!(
                    f,
                    "rank {rank} out of range (cluster has {num_procs} processors)"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// How a crashed rank's rows were rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMethod {
    /// Rows restored from the rank's last valid periodic checkpoint; only
    /// rows the checkpoint misses (assigned since) are reseeded.
    CheckpointRestore,
    /// All rows reseeded from local SSSP (no usable checkpoint).
    SsspReseed,
}

impl std::fmt::Display for RecoveryMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryMethod::CheckpointRestore => "checkpoint-restore",
            RecoveryMethod::SsspReseed => "sssp-reseed",
        })
    }
}

/// What a failure+recovery cost, for comparisons against a full restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// The recovered rank.
    pub rank: usize,
    /// How the replacement's rows were rebuilt.
    pub method: RecoveryMethod,
    /// Rows restored from the checkpoint (0 on the reseed path).
    pub restored_rows: usize,
    /// Rows the replacement node reseeded from local SSSP.
    pub reseeded_rows: usize,
    /// Surviving boundary rows re-marked dirty for full resend.
    pub resent_rows: usize,
}

impl AnytimeEngine {
    /// Kills processor `rank` and immediately brings up a blank replacement
    /// with the same rank and vertex assignment, then runs the anytime
    /// recovery protocol described in the module docs (always the SSSP
    /// reseed — this is the manual injection path; detected crashes go
    /// through the supervisor's checkpoint-assisted ladder, see
    /// `crate::supervisor`). The engine is left unconverged; subsequent
    /// recombination steps restore exactness.
    pub fn fail_and_recover_processor(
        &mut self,
        rank: usize,
    ) -> Result<RecoveryReport, RecoveryError> {
        if !self.initialized {
            return Err(RecoveryError::NotInitialized);
        }
        if rank >= self.config.num_procs {
            return Err(RecoveryError::InvalidRank {
                rank,
                num_procs: self.config.num_procs,
            });
        }
        let span = self.span_open();
        let report = self.replace_rank(rank, None);
        self.obs.note_recovery();
        self.span_close(
            span,
            "recovery",
            format!("{} rank={rank} (manual)", report.method),
        );
        Ok(report)
    }

    /// The crash-and-replace protocol shared by manual injection and
    /// detected-crash recovery: discards `rank`'s state, rebuilds it from
    /// `checkpoint_rows` when given (padding each restored row to the
    /// current capacity and reseeding rows the checkpoint misses) or from a
    /// full local SSSP reseed otherwise, then has every survivor downgrade
    /// the rank to full-row sends and re-dirty what it borders. All costs
    /// are charged to [`Phase::Recovery`].
    pub(crate) fn replace_rank(
        &mut self,
        rank: usize,
        checkpoint_rows: Option<Vec<(VertexId, Vec<Weight>)>>,
    ) -> RecoveryReport {
        // --- the crash: all of `rank`'s state is lost ---------------------
        let owned: Vec<_> = self.partition.members()[rank].clone();
        let cap = self.world.capacity();
        let mut fresh = crate::proc_state::ProcState::new(rank, cap);
        fresh.rebuild_view(&self.world, &self.partition);
        if checkpoint_rows.is_none() {
            // The reseed path starts from blank rows; the checkpoint path
            // inserts restored rows directly.
            for &v in &owned {
                fresh.dv.add_row(v);
            }
        }
        self.procs[rank] = fresh;

        // --- replacement node: restore checkpointed rows, reseed the rest -
        let method = if checkpoint_rows.is_some() {
            RecoveryMethod::CheckpointRestore
        } else {
            RecoveryMethod::SsspReseed
        };
        let mut restored = 0usize;
        let mut reseeded = 0usize;
        let t = Stopwatch::start();
        match checkpoint_rows {
            Some(rows) => {
                let mut have: std::collections::HashSet<VertexId> =
                    std::collections::HashSet::new();
                for (v, mut row) in rows {
                    row.resize(cap, INF); // vertices added since the checkpoint
                    self.procs[rank].dv.insert_row(v, row);
                    have.insert(v);
                    restored += 1;
                }
                for &v in &owned {
                    if !have.contains(&v) {
                        let row = self.procs[rank].local_sssp(v, self.config.ia);
                        self.procs[rank].dv.insert_row(v, row);
                        reseeded += 1;
                    }
                }
                // Everything restored is marked dirty: any pre-crash send
                // the rank had not yet delivered is covered by a full
                // re-flood, which the anytime min-merge absorbs for free.
                for &v in &owned {
                    self.procs[rank].dirty.insert(v);
                }
            }
            None => {
                self.procs[rank].initial_approximation(self.config.ia);
                reseeded = owned.len();
            }
        }
        self.cluster
            .compute_measured(rank, Phase::Recovery, t.elapsed());

        // --- survivors: downgrade the failed rank to full-row sends and
        //     re-dirty everything it borders -------------------------------
        let mut resent = 0usize;
        for survivor in 0..self.config.num_procs {
            if survivor == rank {
                continue;
            }
            let t = Stopwatch::start();
            let ps = &mut self.procs[survivor];
            for u in ps.dv.vertices().to_vec() {
                let borders_failed = ps.adj[u as usize]
                    .iter()
                    .any(|&(v, _)| self.partition.part_of(v) == Some(rank));
                if borders_failed {
                    ps.dirty.insert(u);
                    resent += 1;
                }
                if let Some(s) = ps.sent_to.get_mut(&u) {
                    s.remove(&rank);
                }
            }
            // Retransmits addressed to the crashed processor are moot: its
            // replacement state is rebuilt from scratch, and every bordering
            // row was re-marked dirty above, so it receives full rows again.
            ps.outstanding.retain(|&(_, dst), _| dst != rank);
            // Cached rows owned by the failed rank are stale only in the
            // harmless direction (they reflect pre-crash values, which were
            // valid upper bounds of an unchanged graph) — they stay.
            self.cluster
                .compute_measured(survivor, Phase::Recovery, t.elapsed());
        }
        self.cluster.barrier();
        if self.config.refinement == Refinement::PivotPass {
            // Force a pivot pass on the replacement even if the inbound
            // flood happens to seed nothing.
            self.pivot_pending[rank] = true;
        }
        self.converged = false;
        RecoveryReport {
            rank,
            method,
            restored_rows: restored,
            reseeded_rows: reseeded,
            resent_rows: resent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::dynamic::{Endpoint, VertexBatch};
    use crate::strategy::AdditionStrategy;
    use aa_graph::{algo, generators};

    fn engine(n: usize, p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(n, 2, 2, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                seed,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    fn assert_oracle(e: &AnytimeEngine) {
        let dense = e.distances_dense();
        let oracle = algo::apsp_dijkstra(e.graph());
        for v in e.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize], "row {v}");
        }
    }

    #[test]
    fn recovery_restores_exactness() {
        let mut e = engine(80, 4, 3);
        e.run_to_convergence(64);
        let report = e.fail_and_recover_processor(2).unwrap();
        assert_eq!(report.rank, 2);
        assert_eq!(report.method, RecoveryMethod::SsspReseed);
        assert_eq!(report.restored_rows, 0);
        assert!(report.reseeded_rows > 0);
        assert!(!e.is_converged());
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
        e.check_invariants().unwrap();
    }

    #[test]
    fn recovery_mid_run_still_converges() {
        let mut e = engine(70, 4, 5);
        e.rc_step(); // crash before the static analysis finished
        e.fail_and_recover_processor(0).unwrap();
        e.run_to_convergence(64);
        assert_oracle(&e);
    }

    #[test]
    fn cascading_failures_survive() {
        let mut e = engine(60, 4, 7);
        e.run_to_convergence(64);
        for rank in [0usize, 1, 2, 3, 1] {
            e.fail_and_recover_processor(rank).unwrap();
            e.rc_step();
        }
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn failure_interleaved_with_dynamic_updates() {
        let mut e = engine(60, 4, 9);
        e.run_to_convergence(64);
        let mut batch = VertexBatch::new(3);
        batch.connect(0, Endpoint::Existing(5), 1);
        batch.connect(1, Endpoint::New(0), 1);
        batch.connect(2, Endpoint::Existing(10), 2);
        e.add_vertices(&batch, AdditionStrategy::CutEdgePs);
        e.rc_step();
        e.fail_and_recover_processor(3).unwrap();
        e.rc_step();
        e.add_edge(0, 40, 1);
        e.run_to_convergence(96);
        assert!(e.is_converged());
        assert_oracle(&e);
        e.check_invariants().unwrap();
    }

    #[test]
    fn recovery_is_cheaper_than_restart() {
        // Compare recombination bytes after a crash: anytime recovery only
        // re-floods the failed neighbourhood; a restart re-floods everything.
        let mut recovered = engine(100, 4, 11);
        recovered.run_to_convergence(64);
        let before = recovered.cluster().ledger().totals().bytes;
        recovered.fail_and_recover_processor(1).unwrap();
        recovered.run_to_convergence(64);
        let recovery_bytes = recovered.cluster().ledger().totals().bytes - before;

        let mut restarted = engine(100, 4, 11);
        restarted.run_to_convergence(64);
        let before = restarted.cluster().ledger().totals().bytes;
        restarted.add_vertices(&VertexBatch::new(0), AdditionStrategy::BaselineRestart);
        restarted.run_to_convergence(64);
        let restart_bytes = restarted.cluster().ledger().totals().bytes - before;

        assert!(
            recovery_bytes < restart_bytes,
            "recovery ({recovery_bytes} B) must move fewer bytes than a restart ({restart_bytes} B)"
        );
    }

    #[test]
    fn invalid_rank_rejected() {
        let mut e = engine(20, 2, 13);
        let err = e.fail_and_recover_processor(5).unwrap_err();
        assert_eq!(
            err,
            RecoveryError::InvalidRank {
                rank: 5,
                num_procs: 2
            }
        );
        assert!(err.to_string().contains("out of range"), "{err}");
        // The failed call must not have disturbed the engine.
        e.run_to_convergence(64);
        assert_oracle(&e);
    }

    #[test]
    fn uninitialized_engine_rejected() {
        let g = generators::barabasi_albert(20, 2, 2, 13);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 2,
                ..Default::default()
            },
        );
        assert_eq!(
            e.fail_and_recover_processor(0).unwrap_err(),
            RecoveryError::NotInitialized
        );
    }
}
