//! Load rebalancing — the papers' named future work ("develop graph
//! rebalancing strategies to deal with load imbalances caused by these
//! changes"), implemented here as a recombination strategy.
//!
//! Dynamic updates skew both load dimensions the papers identify: the number
//! of vertices per processor (computation) and the per-processor cut size
//! (communication). [`AnytimeEngine::imbalance`] reports both;
//! [`AnytimeEngine::rebalance`] migrates distance-vector rows onto a
//! rebalanced partition (adaptive multilevel, so migration stays proportional
//! to the skew) while reusing all partial results — the same anytime property
//! Repartition-S leans on. [`AnytimeEngine::rebalance_if_needed`] is the
//! constraint-guarded variant matching the papers' "choose recombination
//! strategy based on a set of constraints".

use crate::engine::AnytimeEngine;
use aa_partition::{quality, AdaptiveMultilevel};

/// Snapshot of the two load dimensions the papers call out.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceReport {
    /// Owned-vertex count per processor (computation load).
    pub vertex_counts: Vec<usize>,
    /// Cut size per processor (communication load).
    pub cut_sizes: Vec<usize>,
    /// `max(vertex_counts) · P / Σ vertex_counts`; 1.0 is perfect.
    pub vertex_imbalance: f64,
    /// `max(cut_sizes) · P / Σ cut_sizes`; 1.0 is perfect (0 cut ⇒ 1.0).
    pub cut_imbalance: f64,
}

impl ImbalanceReport {
    /// Whether either dimension exceeds the given factor.
    pub fn exceeds(&self, max_factor: f64) -> bool {
        self.vertex_imbalance > max_factor || self.cut_imbalance > max_factor
    }
}

impl AnytimeEngine {
    /// Measures the current computation/communication load imbalance.
    pub fn imbalance(&self) -> ImbalanceReport {
        let p = self.config.num_procs;
        let vertex_counts = self.partition.part_sizes();
        let cut_sizes = quality::per_part_cut(&self.world, &self.partition);
        let ratio = |counts: &[usize]| -> f64 {
            let total: usize = counts.iter().sum();
            if total == 0 {
                return 1.0;
            }
            // aa-lint: allow(AA01, counts has one slot per processor and num_procs is asserted >= 1 at construction)
            *counts.iter().max().unwrap() as f64 * p as f64 / total as f64
        };
        ImbalanceReport {
            vertex_imbalance: ratio(&vertex_counts),
            cut_imbalance: ratio(&cut_sizes),
            vertex_counts,
            cut_sizes,
        }
    }

    /// Rebalances the partition with adaptive multilevel repartitioning and
    /// migrates the affected distance-vector rows (partial results are
    /// reused, not recomputed). Returns the number of migrated vertices.
    /// Subsequent recombination steps re-exchange what the new neighbourhoods
    /// are missing.
    pub fn rebalance(&mut self) -> usize {
        assert!(self.initialized, "call initialize() first");
        let p = self.config.num_procs;
        let t = aa_obs::Stopwatch::start();
        let new_partition = AdaptiveMultilevel {
            seed: self.config.seed ^ 0x4EBA,
            ..Default::default()
        }
        .repartition(&self.world, &self.partition, p);
        let elapsed = t.elapsed();
        for rank in 0..p {
            self.cluster.compute_measured(
                rank,
                aa_logp::Phase::DomainDecomposition,
                elapsed / p as u32,
            );
        }
        self.cluster.barrier();
        self.migrate_to_partition(new_partition)
    }

    /// Rebalances only when [`Self::imbalance`] exceeds `max_factor` (e.g.
    /// 1.25 = allow 25 % skew). Returns the number of migrated vertices, or
    /// `None` if the load was within bounds.
    pub fn rebalance_if_needed(&mut self, max_factor: f64) -> Option<usize> {
        assert!(max_factor >= 1.0, "factor below 1.0 is unsatisfiable");
        if self.imbalance().exceeds(max_factor) {
            Some(self.rebalance())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, PartitionerKind};
    use crate::dynamic::{Endpoint, VertexBatch};
    use crate::strategy::AdditionStrategy;
    use aa_graph::{algo, generators};

    fn skewed_engine() -> AnytimeEngine {
        // A balanced starting point; tests skew it explicitly where needed.
        let g = generators::barabasi_albert(60, 2, 1, 5);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 4,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(64);
        e
    }

    fn one_vertex_batch(anchor: u32) -> VertexBatch {
        let mut b = VertexBatch::new(1);
        b.connect(0, Endpoint::Existing(anchor), 1);
        b
    }

    #[test]
    fn imbalance_report_on_balanced_partition() {
        let e = skewed_engine();
        let report = e.imbalance();
        assert!(report.vertex_imbalance < 1.25, "{report:?}");
        assert_eq!(report.vertex_counts.iter().sum::<usize>(), 60);
        // Cut sizes are naturally lumpier than vertex counts; just sanity-
        // check the ratio is finite and ≥ 1.
        assert!(report.cut_imbalance >= 1.0);
        assert!(!report.exceeds(4.0));
    }

    #[test]
    fn rebalance_reduces_vertex_skew() {
        let mut e = skewed_engine();
        // Create skew directly: add 20 vertices, then delete the ones that
        // did not land on rank 0, leaving rank 0 overloaded.
        let batch = {
            let mut b = VertexBatch::new(20);
            for i in 0..20 {
                b.connect(i, Endpoint::Existing(0), 1);
            }
            b
        };
        let ids = e.add_vertices(&batch, AdditionStrategy::RoundRobinPs);
        for &id in &ids {
            if e.partition().part_of(id) != Some(0) {
                e.delete_vertex(id);
            }
        }
        e.run_to_convergence(64);
        let before = e.imbalance();
        assert!(before.vertex_imbalance > 1.15, "setup failed: {before:?}");
        let moved = e.rebalance();
        assert!(moved > 0, "rebalance must move something");
        let after = e.imbalance();
        assert!(
            after.vertex_imbalance < before.vertex_imbalance,
            "skew must drop: {:.3} -> {:.3}",
            before.vertex_imbalance,
            after.vertex_imbalance
        );
        // Results unharmed.
        e.run_to_convergence(64);
        assert!(e.is_converged());
        let dense = e.distances_dense();
        let oracle = algo::apsp_dijkstra(e.graph());
        for v in e.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize]);
        }
        e.check_invariants().unwrap();
    }

    #[test]
    fn rebalance_if_needed_respects_threshold() {
        let mut e = skewed_engine();
        assert_eq!(
            e.rebalance_if_needed(4.0),
            None,
            "balanced partition must not trigger"
        );
        // An unreachably tight threshold always triggers a (harmless) pass.
        assert!(e.rebalance_if_needed(1.0).is_some());
        e.run_to_convergence(64);
        assert!(e.is_converged());
    }

    #[test]
    fn rebalance_fixes_a_terrible_initial_partition() {
        // Round-robin DD on a community graph leaves a high cut; rebalancing
        // must not break results (and usually improves the cut).
        let g = generators::planted_partition(4, 15, 0.5, 0.02, 1, 9);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 4,
                partitioner: PartitionerKind::RoundRobin,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(64);
        let cut_before = quality::edge_cut(e.graph(), e.partition());
        e.rebalance();
        let cut_after = quality::edge_cut(e.graph(), e.partition());
        assert!(cut_after <= cut_before, "cut {cut_before} -> {cut_after}");
        e.run_to_convergence(64);
        let dense = e.distances_dense();
        let oracle = algo::apsp_dijkstra(e.graph());
        for v in e.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn threshold_below_one_rejected() {
        let mut e = skewed_engine();
        e.rebalance_if_needed(0.5);
    }

    #[test]
    fn single_batch_then_rebalance_keeps_new_vertices() {
        let mut e = skewed_engine();
        e.add_vertices(&one_vertex_batch(3), AdditionStrategy::RoundRobinPs);
        e.rebalance();
        e.run_to_convergence(64);
        assert_eq!(e.graph().vertex_count(), 61);
        e.check_invariants().unwrap();
    }
}
