//! Dynamic graph updates: the "anywhere" half of the methodology.
//!
//! * **Edge additions** follow the papers' algorithm (Fig. 3 of the vertex-
//!   additions paper, originally from the edge-additions paper): the distance
//!   vectors of both endpoints are tree-broadcast, every processor applies the
//!   relaxation `D[x][t] > D[x][u] + w + D[v][t]` to its local rows, and
//!   subsequent recombination steps propagate the improvements.
//! * **Edge deletions** (the titled paper's contribution) invalidate the
//!   entries supported by the deleted edge, reseed the affected rows from
//!   local Dijkstra, and reconverge. Deletions are applied at a *quiesced*
//!   point: if the engine has pending updates it first converges, so the
//!   equality-based support test is exact (see `DESIGN.md`).
//! * **Vertex additions** extend every distance vector with new columns
//!   (amortized-doubling growth, as analyzed in the paper), add an owner row,
//!   and then run the batch's edges through the edge-addition kernel. The
//!   owning processor is chosen by an [`crate::AdditionStrategy`].
//! * **Vertex deletions** — the papers' named future work — remove the vertex
//!   and invalidate every pair whose path ran through it.

use crate::engine::AnytimeEngine;
use crate::proc_state::ProcState;
use aa_graph::{VertexId, Weight, INF};
use aa_logp::Phase;
use aa_obs::Stopwatch;
use aa_partition::partition::UNASSIGNED;

/// An endpoint of a batch edge: either another new vertex (by batch index) or
/// an existing vertex (by id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Index into the batch's new vertices.
    New(usize),
    /// An existing vertex id.
    Existing(VertexId),
}

/// A batch of vertices to add, with the edges they bring along. This is the
/// unit the processor-assignment strategies operate on (the papers extract
/// such batches from a larger graph with Louvain).
#[derive(Debug, Clone, Default)]
pub struct VertexBatch {
    /// Number of new vertices (batch indices `0..count`).
    pub count: usize,
    /// Edges: `(new vertex index, other endpoint, weight)`.
    pub edges: Vec<(usize, Endpoint, Weight)>,
}

impl VertexBatch {
    /// Creates an empty batch of `count` vertices.
    pub fn new(count: usize) -> Self {
        VertexBatch {
            count,
            edges: Vec::new(),
        }
    }

    /// Adds an edge from new vertex `i` to `other`.
    pub fn connect(&mut self, i: usize, other: Endpoint, w: Weight) -> &mut Self {
        self.edges.push((i, other, w));
        self
    }

    /// Validates indices against the batch size and an existing-graph
    /// capacity.
    pub fn validate(&self, existing_capacity: usize) -> Result<(), String> {
        for &(i, other, w) in &self.edges {
            if i >= self.count {
                return Err(format!(
                    "edge references new vertex {i} >= count {}",
                    self.count
                ));
            }
            if w == INF {
                return Err("edge weight must be finite".into());
            }
            match other {
                Endpoint::New(j) if j >= self.count => {
                    return Err(format!(
                        "edge references new vertex {j} >= count {}",
                        self.count
                    ));
                }
                Endpoint::New(j) if j == i => return Err(format!("self-loop on new vertex {i}")),
                Endpoint::Existing(v) if (v as usize) >= existing_capacity => {
                    return Err(format!("edge references unknown existing vertex {v}"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl AnytimeEngine {
    /// Dynamically adds edge `(u, v, w)` during the analysis. Returns `false`
    /// if the edge already exists. The change is incorporated immediately
    /// (endpoint-row broadcast + relaxation) and fully propagated by
    /// subsequent recombination steps.
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> bool {
        assert!(self.initialized, "call initialize() first");
        if !self.world.add_edge(u, v, w) {
            return false;
        }
        let span = self.span_open();
        self.obs.note_mutation();
        let ou = self.owner_of(u);
        let ov = self.owner_of(v);
        self.procs[ou].view_add_edge(u, v, w);
        if ov != ou {
            self.procs[ov].view_add_edge(u, v, w);
        }
        self.relax_through_edge(u, v, w);
        self.converged = false;
        self.span_close(span, "dynamic-update", format!("add-edge {u}-{v}"));
        self.feed_capture(false);
        true
    }

    /// The edge-addition relaxation kernel: broadcast both endpoint rows,
    /// relax every owned row on every processor, propagate locally.
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub(crate) fn relax_through_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        let ou = self.owner_of(u);
        let ov = self.owner_of(v);
        let row_u = self.procs[ou].dv.row(u).to_vec();
        let row_v = self.procs[ov].dv.row(v).to_vec();
        let row_bytes = 4 + 4 * row_u.len();
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, ou, row_bytes);
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, ov, row_bytes);

        for rank in 0..self.procs.len() {
            let t = Stopwatch::start();
            let ps = &mut self.procs[rank];
            // Cache the broadcast rows wherever the endpoint is an external
            // boundary vertex, so later invalidations can re-relax from them.
            if !ps.is_local[u as usize] && !ps.adj[u as usize].is_empty() {
                ps.ext_rows.insert(u, row_u.clone());
            }
            if !ps.is_local[v as usize] && !ps.adj[v as usize].is_empty() {
                ps.ext_rows.insert(v, row_v.clone());
            }
            let mut seeds = Vec::new();
            for x in ps.dv.vertices().to_vec() {
                let mut changed = false;
                let a = ps.dv.row(x)[u as usize];
                if a != INF {
                    changed |= ps.dv.relax_with_external(x, &row_v, a.saturating_add(w));
                }
                let b = ps.dv.row(x)[v as usize];
                if b != INF {
                    changed |= ps.dv.relax_with_external(x, &row_u, b.saturating_add(w));
                }
                if changed {
                    ps.dirty.insert(x);
                    seeds.push(x);
                }
            }
            ps.propagate_worklist(seeds);
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
        // The owners also learn the direct edge immediately.
        self.procs[ou].dv.relax_with_external(u, &row_v, w);
        self.procs[ov].dv.relax_with_external(v, &row_u, w);
    }

    /// Adds a batch of edges at once — the edge-additions paper's "new
    /// relationship formations" arrive in batches. Each distinct endpoint's
    /// row is broadcast once (instead of twice per edge), every processor
    /// applies all relaxations in one sweep, and local propagation runs once
    /// at the end. Returns the number of edges actually inserted (duplicates
    /// and self-loops are skipped).
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub fn add_edges(&mut self, edges: &[(VertexId, VertexId, Weight)]) -> usize {
        assert!(self.initialized, "call initialize() first");
        let mut inserted: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(edges.len());
        for &(u, v, w) in edges {
            if !self.world.add_edge(u, v, w) {
                continue;
            }
            let ou = self.owner_of(u);
            let ov = self.owner_of(v);
            self.procs[ou].view_add_edge(u, v, w);
            if ov != ou {
                self.procs[ov].view_add_edge(u, v, w);
            }
            inserted.push((u, v, w));
        }
        if inserted.is_empty() {
            return 0;
        }
        let span = self.span_open();
        self.obs.note_mutation();

        // One broadcast per distinct endpoint.
        let mut endpoints: Vec<VertexId> = inserted.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let mut rows: std::collections::HashMap<VertexId, Vec<Weight>> =
            std::collections::HashMap::with_capacity(endpoints.len());
        for &e in &endpoints {
            let owner = self.owner_of(e);
            let row = self.procs[owner].dv.row(e).to_vec();
            self.cluster
                .broadcast_cost(Phase::DynamicUpdate, owner, 4 + 4 * row.len());
            rows.insert(e, row);
        }

        for rank in 0..self.procs.len() {
            let t = Stopwatch::start();
            let ps = &mut self.procs[rank];
            for &e in &endpoints {
                if !ps.is_local[e as usize] && !ps.adj[e as usize].is_empty() {
                    ps.ext_rows.insert(e, rows[&e].clone());
                }
            }
            let mut seeds = Vec::new();
            for x in ps.dv.vertices().to_vec() {
                let mut changed = false;
                for &(u, v, w) in &inserted {
                    let a = ps.dv.row(x)[u as usize];
                    if a != INF {
                        changed |= ps.dv.relax_with_external(x, &rows[&v], a.saturating_add(w));
                    }
                    let b = ps.dv.row(x)[v as usize];
                    if b != INF {
                        changed |= ps.dv.relax_with_external(x, &rows[&u], b.saturating_add(w));
                    }
                }
                if changed {
                    ps.dirty.insert(x);
                    seeds.push(x);
                }
            }
            ps.propagate_worklist(seeds);
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
        self.converged = false;
        self.span_close(
            span,
            "dynamic-update",
            format!("add-edges n={}", inserted.len()),
        );
        self.feed_capture(false);
        inserted.len()
    }

    /// Deletion barrier: bring the engine to a genuinely quiescent fixed
    /// point before a structural deletion. The support test each deletion
    /// runs is only exact at a fixed point, and `sync_snapshots_to_rows`
    /// requires drained dirty/outstanding sets — the `converged` flag alone
    /// is not enough: a freshly restored checkpoint reports converged while
    /// every row is marked dirty so the first recombination steps re-exchange
    /// boundary state.
    fn deletion_barrier(&mut self) {
        let quiescent = self.converged
            && self
                .procs
                .iter()
                .all(|ps| ps.outstanding.is_empty() && ps.dirty.is_empty());
        if !quiescent {
            self.run_to_convergence(64 * self.procs.len() + 256);
            assert!(self.converged, "deletion barrier failed to converge");
        }
    }

    /// Deletes a batch of edges at once: one deletion barrier, one broadcast
    /// per distinct endpoint, one combined invalidation sweep (a pair is
    /// invalidated if *any* deleted edge supports its current value), one
    /// reseed. Returns the number of edges actually removed.
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub fn delete_edges(&mut self, edges: &[(VertexId, VertexId)]) -> usize {
        assert!(self.initialized, "call initialize() first");
        let present: Vec<(VertexId, VertexId, Weight)> = edges
            .iter()
            .filter_map(|&(u, v)| self.world.edge_weight(u, v).map(|w| (u, v, w)))
            .collect();
        if present.is_empty() {
            return 0;
        }
        self.deletion_barrier();
        // At quiescence every receiver cache equals the current row, but
        // lossy-run retransmit acks can leave delta baselines at older
        // values; align them so the invalidation below resets identical
        // values on both sides (a no-op on fault-free runs).
        for ps in &mut self.procs {
            ps.sync_snapshots_to_rows();
        }
        let span = self.span_open();
        self.obs.note_mutation();
        // Capture pre-deletion rows of every distinct endpoint.
        let mut endpoints: Vec<VertexId> = present.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let mut rows: std::collections::HashMap<VertexId, Vec<Weight>> =
            std::collections::HashMap::with_capacity(endpoints.len());
        for &e in &endpoints {
            let owner = self.owner_of(e);
            let row = self.procs[owner].dv.row(e).to_vec();
            self.cluster
                .broadcast_cost(Phase::DynamicUpdate, owner, 4 + 4 * row.len());
            rows.insert(e, row);
        }
        for &(u, v, _) in &present {
            self.world.remove_edge(u, v);
        }
        // Deletion can make pre-deletion rows underestimates; per-rank
        // checkpoints from before this point are no longer restorable.
        self.invalidation_epoch += 1;
        let ia = self.config.ia;
        for rank in 0..self.procs.len() {
            let t = Stopwatch::start();
            for &(u, v, _) in &present {
                self.procs[rank].view_remove_edge(u, v);
            }
            invalidate_and_reseed(&mut self.procs[rank], ia, |row, x| {
                let mut targets = Vec::new();
                for &(u, v, w) in &present {
                    targets.extend(affected_targets_edge(row, x, u, v, w, &rows[&u], &rows[&v]));
                }
                targets.sort_unstable();
                targets.dedup();
                targets
            });
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
        self.converged = false;
        self.span_close(
            span,
            "dynamic-update",
            format!("delete-edges n={}", present.len()),
        );
        self.feed_capture(true);
        present.len()
    }

    /// Dynamically deletes edge `(u, v)`. Converges pending updates first
    /// (deletion barrier, see module docs), invalidates every pair supported
    /// by the edge, reseeds from local Dijkstra, and leaves reconvergence to
    /// subsequent recombination steps. Returns `false` if the edge is absent.
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!(self.initialized, "call initialize() first");
        if self.world.edge_weight(u, v).is_none() {
            return false;
        }
        self.deletion_barrier();
        // At quiescence every receiver cache equals the current row, but
        // lossy-run retransmit acks can leave delta baselines at older
        // values; align them so the invalidation below resets identical
        // values on both sides (a no-op on fault-free runs).
        for ps in &mut self.procs {
            ps.sync_snapshots_to_rows();
        }
        let span = self.span_open();
        self.obs.note_mutation();
        // aa-lint: allow(AA01, presence established by the has-edge early-return a few lines up, with no mutation in between)
        let w = self.world.remove_edge(u, v).expect("edge checked above");
        // Deletion can make pre-deletion rows underestimates; per-rank
        // checkpoints from before this point are no longer restorable.
        self.invalidation_epoch += 1;
        let ou = self.owner_of(u);
        let ov = self.owner_of(v);
        // Pre-deletion endpoint rows (exact, since we are converged).
        let row_u = self.procs[ou].dv.row(u).to_vec();
        let row_v = self.procs[ov].dv.row(v).to_vec();
        let row_bytes = 4 + 4 * row_u.len();
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, ou, row_bytes);
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, ov, row_bytes);

        for rank in 0..self.procs.len() {
            let t = Stopwatch::start();
            self.procs[rank].view_remove_edge(u, v);
            let ia = self.config.ia;
            invalidate_and_reseed(&mut self.procs[rank], ia, |row, x| {
                affected_targets_edge(row, x, u, v, w, &row_u, &row_v)
            });
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
        self.converged = false;
        self.span_close(span, "dynamic-update", format!("delete-edge {u}-{v}"));
        self.feed_capture(true);
        true
    }

    /// Changes the weight of edge `(u, v)`. Decreases are incorporated like
    /// additions (pure relaxation); increases like deletions (invalidate +
    /// reseed, with the deletion barrier). Returns `false` if the edge is
    /// absent or the weight unchanged.
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub fn change_edge_weight(&mut self, u: VertexId, v: VertexId, new_w: Weight) -> bool {
        assert!(self.initialized, "call initialize() first");
        assert!(new_w != INF, "weight must be finite");
        let Some(old_w) = self.world.edge_weight(u, v) else {
            return false;
        };
        if old_w == new_w {
            return false;
        }
        if new_w < old_w {
            let span = self.span_open();
            self.obs.note_mutation();
            self.world.set_edge_weight(u, v, new_w);
            for rank in 0..self.procs.len() {
                self.procs[rank].view_remove_edge(u, v);
                self.procs[rank].view_add_edge(u, v, new_w);
            }
            self.relax_through_edge(u, v, new_w);
            self.converged = false;
            self.span_close(span, "dynamic-update", format!("decrease-weight {u}-{v}"));
            self.feed_capture(false);
            return true;
        }
        // Increase: invalidate paths supported at the old weight, then make
        // the new weight known.
        let deleted = self.delete_edge(u, v);
        debug_assert!(deleted);
        let added = self.add_edge(u, v, new_w);
        debug_assert!(added);
        true
    }

    /// Dynamically deletes vertex `v` and all its incident edges (the papers'
    /// named future work). Applies the deletion barrier, invalidates every
    /// pair whose path ran through `v`, and reseeds. Returns the removed
    /// incident edges.
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub fn delete_vertex(&mut self, v: VertexId) -> Vec<(VertexId, Weight)> {
        assert!(self.initialized, "call initialize() first");
        assert!(self.world.is_alive(v), "vertex {v} is not alive");
        self.deletion_barrier();
        // At quiescence every receiver cache equals the current row, but
        // lossy-run retransmit acks can leave delta baselines at older
        // values; align them so the invalidation below resets identical
        // values on both sides (a no-op on fault-free runs).
        for ps in &mut self.procs {
            ps.sync_snapshots_to_rows();
        }
        let span = self.span_open();
        self.obs.note_mutation();
        // Deletion can make pre-deletion rows underestimates; per-rank
        // checkpoints from before this point are no longer restorable.
        self.invalidation_epoch += 1;
        let owner = self.owner_of(v);
        let row_v = self.procs[owner].dv.row(v).to_vec();
        self.cluster
            .broadcast_cost(Phase::DynamicUpdate, owner, 4 + 4 * row_v.len());

        let removed = self.world.remove_vertex(v);
        let ia = self.config.ia;
        for rank in 0..self.procs.len() {
            let t = Stopwatch::start();
            for &(x, _) in &removed {
                self.procs[rank].view_remove_edge(v, x);
            }
            let ps = &mut self.procs[rank];
            if ps.dv.has_row(v) {
                ps.dv.take_row(v);
                ps.dirty.remove(&v);
                ps.sent_snapshot.remove(&v);
                ps.sent_to.remove(&v);
                // Defensive: the barrier above guarantees quiescence, so no
                // retransmit of the deleted row can still be pending.
                ps.outstanding.retain(|&(u, _), _| u != v);
            }
            ps.is_local[v as usize] = false;
            ps.ext_rows.remove(&v);
            invalidate_and_reseed(ps, ia, |row, x| affected_targets_vertex(row, x, v, &row_v));
            self.cluster
                .compute_measured(rank, Phase::DynamicUpdate, t.elapsed());
        }
        self.partition.assignment[v as usize] = UNASSIGNED;
        self.converged = false;
        self.span_close(span, "dynamic-update", format!("delete-vertex {v}"));
        self.feed_capture(true);
        removed
    }
}

/// Targets of row `x` (owner vertex `x`) invalidated by deleting edge
/// `(u, v, w)`: entries whose value is ≥ the best path through the edge in
/// either direction. `t == x` is never affected (`d(x,x)=0 < w ≥ 1`).
// aa-lint: allow(AA07, rows are full-width (world capacity) and every indexed id comes from the same world)
fn affected_targets_edge(
    row: &[Weight],
    x: VertexId,
    u: VertexId,
    v: VertexId,
    w: Weight,
    row_u: &[Weight],
    row_v: &[Weight],
) -> Vec<usize> {
    let a = row[u as usize]; // d(x, u)
    let b = row[v as usize]; // d(x, v)
    let mut out = Vec::new();
    for (t, &d) in row.iter().enumerate() {
        if d == INF || t == x as usize {
            continue;
        }
        let via_uv = a.saturating_add(w).saturating_add(row_v[t]);
        let via_vu = b.saturating_add(w).saturating_add(row_u[t]);
        if d >= via_uv.min(via_vu) {
            out.push(t);
        }
    }
    out
}

/// Targets of row `x` invalidated by deleting vertex `v`: the column `v`
/// itself plus every entry whose value routes through `v`.
// aa-lint: allow(AA07, rows are full-width (world capacity) and every indexed id comes from the same world)
fn affected_targets_vertex(
    row: &[Weight],
    x: VertexId,
    v: VertexId,
    row_v: &[Weight],
) -> Vec<usize> {
    let a = row[v as usize]; // d(x, v)
    let mut out = Vec::new();
    if row[v as usize] != INF {
        out.push(v as usize);
    }
    if a == INF {
        return out;
    }
    for (t, &d) in row.iter().enumerate() {
        if d == INF || t == x as usize || t == v as usize {
            continue;
        }
        if d >= a.saturating_add(row_v[t]) && a.saturating_add(row_v[t]) != INF {
            out.push(t);
        }
    }
    out
}

/// Applies an invalidation rule to every owned row and every cached external
/// row of `ps`, reseeds affected owned rows from local Dijkstra, re-relaxes
/// them through cached boundary rows, and propagates locally.
// aa-lint: allow(AA07, rows are full-width (world capacity) and every indexed id comes from the same world)
fn invalidate_and_reseed<F>(ps: &mut ProcState, ia: crate::config::IaAlgorithm, affected: F)
where
    F: Fn(&[Weight], VertexId) -> Vec<usize>,
{
    let mut dirtied = Vec::new();
    for x in ps.dv.vertices().to_vec() {
        let targets = affected(ps.dv.row(x), x);
        if targets.is_empty() {
            continue;
        }
        let row = ps.dv.row_mut(x);
        for &t in &targets {
            row[t] = INF;
        }
        dirtied.push(x);
    }
    // Cached external rows get the same treatment: reset entries are stale-
    // high (safe); valid entries remain usable for re-relaxation.
    let cached: Vec<VertexId> = ps.ext_rows.keys().copied().collect();
    for b in cached {
        let Some(row) = ps.ext_rows.get_mut(&b) else {
            continue;
        };
        for t in affected(row, b) {
            row[t] = INF;
        }
    }
    // Delta baselines must track what the receivers' caches now hold: apply
    // the identical rule to every sent snapshot (receivers reset the same
    // entries of the same values), keeping future deltas consistent.
    let snapshots: Vec<VertexId> = ps.sent_snapshot.keys().copied().collect();
    for b in snapshots {
        let Some(row) = ps.sent_snapshot.get_mut(&b) else {
            continue;
        };
        for t in affected(row, b) {
            row[t] = INF;
        }
    }
    // Reseed affected rows with post-deletion local paths and cached
    // boundary knowledge.
    for &x in &dirtied {
        let fresh = ps.local_sssp(x, ia);
        ps.merge_row_min(x, &fresh);
        ps.relax_from_cache(x);
        ps.dirty.insert(x);
    }
    if !dirtied.is_empty() {
        // Reset entries must also be re-learnable from *unaffected* neighbour
        // rows, so the worklist is seeded with every owned vertex (a full
        // local fixed-point pass), not just the dirtied ones.
        let all = ps.dv.vertices().to_vec();
        ps.propagate_worklist(all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use aa_graph::{algo, generators, Graph};

    fn engine(g: Graph, p: usize) -> AnytimeEngine {
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    fn assert_oracle(e: &AnytimeEngine) {
        let dense = e.distances_dense();
        let oracle = algo::apsp_dijkstra(e.graph());
        for v in 0..e.graph().capacity() {
            if e.graph().is_alive(v as u32) {
                assert_eq!(dense[v], oracle[v], "row {v} differs from oracle");
            }
        }
    }

    #[test]
    fn add_edge_then_converge_matches_oracle() {
        let g = generators::barabasi_albert(100, 2, 3, 13);
        let mut e = engine(g, 4);
        e.run_to_convergence(32);
        assert!(e.add_edge(0, 57, 1));
        assert!(!e.is_converged());
        e.run_to_convergence(32);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn add_edge_mid_run_still_converges_correctly() {
        let g = generators::erdos_renyi_gnm(90, 200, 4, 3);
        let mut e = engine(g, 4);
        e.rc_step(); // not yet converged
        assert!(e.add_edge(1, 80, 2));
        assert!(e.add_edge(5, 33, 1));
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn add_edge_connecting_components() {
        let mut g = generators::path(12);
        g.remove_edge(5, 6);
        let mut e = engine(g, 3);
        e.run_to_convergence(32);
        assert_eq!(e.distances_dense()[0][11], INF);
        assert!(e.add_edge(5, 6, 7));
        e.run_to_convergence(32);
        assert_oracle(&e);
        assert_eq!(e.distances_dense()[0][11], 5 + 7 + 5);
    }

    #[test]
    fn duplicate_add_edge_is_rejected() {
        let g = generators::path(6);
        let mut e = engine(g, 2);
        e.run_to_convergence(16);
        assert!(!e.add_edge(0, 1, 5));
        assert!(e.is_converged(), "rejected update must not disturb state");
    }

    #[test]
    fn delete_edge_then_converge_matches_oracle() {
        let g = generators::barabasi_albert(80, 3, 2, 17);
        let mut e = engine(g, 4);
        e.run_to_convergence(32);
        let (u, v, _) = e.graph().edges().next().unwrap();
        assert!(e.delete_edge(u, v));
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn delete_bridge_disconnects() {
        let g = generators::path(10);
        let mut e = engine(g, 2);
        e.run_to_convergence(16);
        assert!(e.delete_edge(4, 5));
        e.run_to_convergence(32);
        assert_oracle(&e);
        assert_eq!(e.distances_dense()[0][9], INF);
    }

    #[test]
    fn delete_edge_mid_run_applies_barrier_first() {
        let g = generators::erdos_renyi_gnm(60, 150, 3, 23);
        let mut e = engine(g, 4);
        // No convergence calls: delete_edge must quiesce on its own.
        let (u, v, _) = e.graph().edges().nth(3).unwrap();
        assert!(e.delete_edge(u, v));
        e.run_to_convergence(64);
        assert_oracle(&e);
    }

    #[test]
    fn delete_absent_edge_is_rejected() {
        let g = generators::path(4);
        let mut e = engine(g, 2);
        assert!(!e.delete_edge(0, 3));
    }

    #[test]
    fn interleaved_adds_and_deletes_match_oracle() {
        let g = generators::watts_strogatz(70, 2, 0.1, 3, 31);
        let mut e = engine(g, 4);
        e.run_to_convergence(32);
        assert!(e.add_edge(0, 35, 1));
        e.rc_step();
        let (u, v, _) = e.graph().edges().nth(10).unwrap();
        assert!(e.delete_edge(u, v));
        e.rc_step();
        assert!(e.add_edge(3, 66, 2));
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn weight_decrease_matches_oracle() {
        let g = generators::erdos_renyi_gnm(50, 120, 9, 41);
        let mut e = engine(g, 3);
        e.run_to_convergence(32);
        let (u, v, w) = e.graph().edges().find(|&(_, _, w)| w > 1).unwrap();
        assert!(e.change_edge_weight(u, v, w - 1));
        e.run_to_convergence(32);
        assert_oracle(&e);
    }

    #[test]
    fn weight_increase_matches_oracle() {
        let g = generators::erdos_renyi_gnm(50, 120, 3, 43);
        let mut e = engine(g, 3);
        e.run_to_convergence(32);
        let (u, v, w) = e.graph().edges().next().unwrap();
        assert!(e.change_edge_weight(u, v, w + 7));
        e.run_to_convergence(64);
        assert_oracle(&e);
        assert_eq!(e.graph().edge_weight(u, v), Some(w + 7));
    }

    #[test]
    fn weight_change_rejects_absent_or_noop() {
        let g = generators::path(5);
        let mut e = engine(g, 2);
        e.run_to_convergence(16);
        assert!(!e.change_edge_weight(0, 4, 3), "absent edge");
        assert!(!e.change_edge_weight(0, 1, 1), "unchanged weight");
    }

    #[test]
    fn delete_vertex_matches_oracle() {
        let g = generators::barabasi_albert(60, 2, 1, 19);
        let mut e = engine(g, 4);
        e.run_to_convergence(32);
        let hub = e
            .graph()
            .vertices()
            .max_by_key(|&v| e.graph().degree(v))
            .unwrap();
        let removed = e.delete_vertex(hub);
        assert!(!removed.is_empty());
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
        e.check_invariants().unwrap();
        // Distances to the dead vertex are INF everywhere.
        let dense = e.distances_dense();
        for v in e.graph().vertices() {
            assert_eq!(dense[v as usize][hub as usize], INF);
        }
    }

    #[test]
    fn delete_leaf_vertex() {
        let g = generators::star(8);
        let mut e = engine(g, 2);
        e.run_to_convergence(16);
        e.delete_vertex(3);
        e.run_to_convergence(16);
        assert_oracle(&e);
        assert_eq!(e.graph().vertex_count(), 7);
    }

    #[test]
    fn batched_edge_additions_match_oracle() {
        let g = generators::barabasi_albert(80, 2, 3, 51);
        let mut e = engine(g, 4);
        e.run_to_convergence(32);
        // Pick one edge that certainly exists (a duplicate, which must be
        // skipped) and count how many of the batch are genuinely new.
        let (du, dv, _) = e.graph().edges().next().unwrap();
        let batch = [(0, 50, 1), (3, 60, 2), (0, 70, 1), (du, dv, 5), (10, 11, 1)];
        let fresh = batch
            .iter()
            .filter(|&&(u, v, _)| !e.graph().has_edge(u, v))
            .count();
        assert!(fresh < batch.len(), "batch must contain a duplicate");
        let added = e.add_edges(&batch);
        assert_eq!(added, fresh, "exactly the non-duplicate edges are added");
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn batched_edge_additions_mid_run() {
        let g = generators::erdos_renyi_gnm(60, 150, 4, 53);
        let mut e = engine(g, 4);
        e.rc_step();
        e.add_edges(&[(0, 30, 1), (1, 40, 2), (2, 50, 3)]);
        e.run_to_convergence(64);
        assert_oracle(&e);
    }

    #[test]
    fn batched_edge_deletions_match_oracle() {
        let g = generators::barabasi_albert(70, 3, 2, 55);
        let mut e = engine(g, 4);
        e.run_to_convergence(32);
        let victims: Vec<(VertexId, VertexId)> = e
            .graph()
            .edges()
            .step_by(7)
            .take(5)
            .map(|(u, v, _)| (u, v))
            .collect();
        let removed = e.delete_edges(&victims);
        assert_eq!(removed, victims.len());
        e.run_to_convergence(96);
        assert!(e.is_converged());
        assert_oracle(&e);
    }

    #[test]
    fn batched_deletions_with_shared_endpoints_and_misses() {
        let g = generators::path(12);
        let mut e = engine(g, 3);
        e.run_to_convergence(32);
        let removed = e.delete_edges(&[(3, 4), (4, 5), (0, 11)]); // last is absent
        assert_eq!(removed, 2);
        e.run_to_convergence(64);
        assert_oracle(&e);
        assert_eq!(e.distances_dense()[0][11], INF);
        assert_eq!(
            e.distances_dense()[4][4],
            0,
            "isolated middle vertex intact"
        );
    }

    #[test]
    fn empty_batches_are_noops() {
        let g = generators::path(6);
        let mut e = engine(g, 2);
        e.run_to_convergence(16);
        assert_eq!(e.add_edges(&[]), 0);
        assert_eq!(e.delete_edges(&[]), 0);
        assert!(e.is_converged(), "no-ops must not disturb convergence");
    }

    #[test]
    fn batch_validation() {
        let mut b = VertexBatch::new(2);
        b.connect(0, Endpoint::New(1), 1);
        b.connect(1, Endpoint::Existing(3), 2);
        assert!(b.validate(10).is_ok());
        assert!(b.validate(2).is_err(), "existing vertex 3 out of range");
        let mut bad = VertexBatch::new(1);
        bad.connect(0, Endpoint::New(0), 1);
        assert!(bad.validate(10).is_err(), "self-loop");
        let mut bad2 = VertexBatch::new(1);
        bad2.connect(0, Endpoint::New(5), 1);
        assert!(bad2.validate(10).is_err(), "new index out of range");
    }
}
