//! Engine-side observability: span capture, the anytime progress probe, and
//! the metrics export, all backed by the dependency-free `aa-obs` layer.
//!
//! The engine computes every number here from state it already owns — the
//! LogP virtual clock, the cost ledger, the distance vectors, the supervision
//! log — and feeds plain data into `aa-obs` types. Nothing reads a wall
//! clock: the modeled cost of a span is the virtual-makespan delta across
//! it, and the "measured" cost is the ledger's `compute_us` delta (which the
//! cluster charged from measured execution at record time).
//!
//! The progress probe is opt-in ([`AnytimeEngine::enable_progress_probe`])
//! because each sample compares the full distance state against an exact
//! APSP oracle — O(V·E log V) to (re)build after a mutation, O(V²) per
//! sample. The oracle is cached and only invalidated when the world graph
//! changes.

use crate::engine::AnytimeEngine;
use aa_graph::{algo, VertexId, Weight, INF};
use aa_logp::PhaseStats;
use aa_obs::{kendall_tau, MetricsRegistry, ProgressSample, SpanLog, SpanRecord};
use std::collections::BTreeMap;

/// Bucket bounds for the per-step recombination payload histogram (bytes).
const RC_BYTES_BOUNDS: [f64; 7] = [256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0];
/// Bucket bounds for the per-step modeled span duration histogram (µs).
const RC_SPAN_US_BOUNDS: [f64; 6] = [10.0, 100.0, 1000.0, 10000.0, 100000.0, 1000000.0];

/// Everything a span needs to remember from its opening instant.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanStart {
    start_us: f64,
    totals: PhaseStats,
}

/// Exact-APSP oracle cached between probe samples.
#[derive(Debug, Clone)]
struct Oracle {
    dist: Vec<Vec<Weight>>,
    closeness: Vec<f64>,
}

/// Observability state carried by the engine.
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineObs {
    /// Whether the (expensive) progress probe samples each RC step.
    probe_enabled: bool,
    pub(crate) spans: SpanLog,
    pub(crate) samples: Vec<ProgressSample>,
    /// Retransmit sends assembled (satellite of the ack-based protocol).
    pub(crate) retransmit_sends: u64,
    /// Row sends positively acknowledged by a delivery receipt.
    pub(crate) acked_sends: u64,
    /// Row sends negatively acknowledged (dropped; queued for retransmit).
    pub(crate) failed_sends: u64,
    oracle: Option<Oracle>,
    /// Dense estimate matrix at the previous sample, for regression counts.
    prev_dense: Option<Vec<Vec<Weight>>>,
    /// A recovery ran at or since the previous sample.
    recovering: bool,
    /// Monotone version bumped on every mutation or recovery; part of the
    /// snapshot publication cache key (the invalidation epoch alone misses
    /// relaxing changes, and the RC-step counter misses between-step ops).
    pub(crate) state_version: u64,
    /// Cached snapshot publication (see `publish.rs`).
    pub(crate) published: Option<crate::publish::PublishedFrame>,
    /// Publications that rebuilt the frame.
    pub(crate) publish_fresh: u64,
    /// Publications served from the cached frame (allocation-stable).
    pub(crate) publish_reused: u64,
    /// Whether the bound-delta feed records row changes (see `feed.rs`).
    pub(crate) feed_enabled: bool,
    /// Pending bound deltas awaiting a consumer drain.
    pub(crate) feed: Vec<crate::feed::BoundDelta>,
}

impl EngineObs {
    /// The world graph changed: the oracle is stale, and estimate
    /// comparisons across the mutation are meaningless (deletions reset
    /// entries upward by design).
    pub(crate) fn note_mutation(&mut self) {
        self.oracle = None;
        self.prev_dense = None;
        self.state_version += 1;
    }

    /// A recovery ladder invocation ran; the next probe sample is flagged so
    /// monotonicity assertions skip it (restores may legitimately regress).
    pub(crate) fn note_recovery(&mut self) {
        self.recovering = true;
        self.state_version += 1;
    }
}

impl AnytimeEngine {
    /// Turns on the anytime progress probe: every subsequent
    /// [`AnytimeEngine::rc_step`] appends one [`ProgressSample`] comparing
    /// the live distance state against a cached exact oracle. Expensive —
    /// see the module docs — and intended for analysis/test runs, not
    /// production-size graphs.
    pub fn enable_progress_probe(&mut self) {
        self.obs.probe_enabled = true;
    }

    /// Whether the progress probe is sampling.
    pub fn progress_probe_enabled(&self) -> bool {
        self.obs.probe_enabled
    }

    /// The probe's samples so far, one per RC step since it was enabled.
    pub fn progress_samples(&self) -> &[ProgressSample] {
        &self.obs.samples
    }

    /// The span log: one record per engine activity, in completion order.
    pub fn spans(&self) -> &SpanLog {
        &self.obs.spans
    }

    /// Opens a span: remembers the virtual clock and ledger totals.
    pub(crate) fn span_open(&self) -> SpanStart {
        SpanStart {
            start_us: self.cluster.makespan_us(),
            totals: self.cluster.ledger().totals(),
        }
    }

    /// Closes a span, recording the virtual-clock and ledger deltas since
    /// [`AnytimeEngine::span_open`].
    pub(crate) fn span_close(&mut self, start: SpanStart, name: &str, detail: String) {
        let t = self.cluster.ledger().totals();
        let b = start.totals;
        self.obs.spans.push(SpanRecord {
            name: name.to_string(),
            detail,
            rc_step: self.rc_steps_done as u64,
            start_us: start.start_us,
            end_us: self.cluster.makespan_us(),
            compute_us: (t.compute_us - b.compute_us).max(0.0),
            bytes: t.bytes.saturating_sub(b.bytes),
            messages: t.messages.saturating_sub(b.messages),
            dropped_messages: t.dropped_messages.saturating_sub(b.dropped_messages),
            dup_messages: t.dup_messages.saturating_sub(b.dup_messages),
            heartbeat_messages: t.heartbeat_messages.saturating_sub(b.heartbeat_messages),
        });
    }

    /// Closeness estimates from the current distance vectors, by vertex id,
    /// with the same formula as [`AnytimeEngine::snapshot`] but free of
    /// cluster charges (probe arithmetic is not part of the modeled run).
    fn closeness_estimates(&self) -> Vec<f64> {
        let mut closeness = vec![0.0f64; self.world.capacity()];
        for ps in &self.procs {
            for &v in ps.dv.vertices() {
                let row = ps.dv.row(v);
                let mut sum = 0u64;
                for (t, &d) in row.iter().enumerate() {
                    if t != v as usize && d != INF && d > 0 {
                        sum += u64::from(d);
                    }
                }
                closeness[v as usize] = if sum == 0 { 0.0 } else { 1.0 / sum as f64 };
            }
        }
        closeness
    }

    /// (Re)builds the exact oracle if a mutation invalidated it.
    fn ensure_oracle(&mut self) {
        if self.obs.oracle.is_some() {
            return;
        }
        let dist = algo::apsp_dijkstra(&self.world);
        let mut closeness = vec![0.0f64; self.world.capacity()];
        for v in self.world.vertices() {
            closeness[v as usize] = algo::closeness_from_distances(&dist[v as usize], v);
        }
        self.obs.oracle = Some(Oracle { dist, closeness });
    }

    /// Takes one progress sample (called at the end of each RC step while
    /// the probe is enabled; also callable directly to sample between steps,
    /// e.g. right after `initialize`). No-op while the probe is disabled.
    pub fn record_progress_sample(&mut self) {
        if !self.obs.probe_enabled {
            return;
        }
        self.ensure_oracle();
        let dense = self.distances_dense();
        let live: Vec<VertexId> = self.world.vertices().collect();

        let mut max_over = 0.0f64;
        let mut sum_over = 0.0f64;
        let mut finite_pairs = 0u64;
        let mut unreached = 0u64;
        let mut converged_rows = 0u64;
        let mut regressions = 0u64;
        let same_shape = self
            .obs
            .prev_dense
            .as_ref()
            .is_some_and(|p| p.len() == dense.len());
        {
            let oracle = match self.obs.oracle.as_ref() {
                Some(o) => o,
                None => return, // unreachable: ensure_oracle just ran
            };
            for &u in &live {
                let est_row = &dense[u as usize];
                let exact_row = &oracle.dist[u as usize];
                let mut row_equal = true;
                for &t in &live {
                    let est = est_row[t as usize];
                    let exact = exact_row[t as usize];
                    if est != exact {
                        row_equal = false;
                    }
                    match (est == INF, exact == INF) {
                        (false, false) => {
                            let over = f64::from(est) - f64::from(exact);
                            if over > max_over {
                                max_over = over;
                            }
                            sum_over += over;
                            finite_pairs += 1;
                        }
                        (true, true) => {}
                        _ => unreached += 1,
                    }
                }
                if row_equal {
                    converged_rows += 1;
                }
                if same_shape {
                    if let Some(prev) = self.obs.prev_dense.as_ref() {
                        let prev_row = &prev[u as usize];
                        for &t in &live {
                            if est_row[t as usize] > prev_row[t as usize] {
                                regressions += 1;
                            }
                        }
                    }
                }
            }
        }
        let estimates = self.closeness_estimates();
        let oracle_closeness: Vec<f64> = match self.obs.oracle.as_ref() {
            Some(o) => live.iter().map(|&v| o.closeness[v as usize]).collect(),
            None => return, // unreachable: ensure_oracle just ran
        };
        let est_closeness: Vec<f64> = live.iter().map(|&v| estimates[v as usize]).collect();

        let dirty_rows: usize = self.procs.iter().map(|ps| ps.dirty.len()).sum();
        let sample = ProgressSample {
            rc_step: self.rc_steps_done as u64,
            makespan_us: self.cluster.makespan_us(),
            max_overestimate: max_over,
            mean_overestimate: if finite_pairs == 0 {
                0.0
            } else {
                sum_over / finite_pairs as f64
            },
            kendall_tau: kendall_tau(&est_closeness, &oracle_closeness),
            converged_row_fraction: if live.is_empty() {
                1.0
            } else {
                converged_rows as f64 / live.len() as f64
            },
            unreached_pairs: unreached,
            outstanding_rows: self.outstanding_rows() as u64,
            dirty_rows: dirty_rows as u64,
            estimate_regressions: regressions,
            down_ranks: self.cluster.down_ranks().len() as u64,
            recovering: self.obs.recovering,
        };
        self.obs.samples.push(sample);
        self.obs.prev_dense = Some(dense);
        self.obs.recovering = false;
    }

    /// Exports the engine's current state as a metrics registry: phase
    /// counters from the cost ledger, protocol counters from the ack-based
    /// retransmission machinery, recovery counts by ladder rung, liveness
    /// gauges, and per-RC-step histograms derived from the span log.
    ///
    /// The registry is rebuilt on each call (cheap: one pass over ledger and
    /// spans), so it always reflects the state at the call.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set_help("aa_phase_messages_total", "Model messages sent, by phase");
        r.set_help("aa_phase_bytes_total", "Payload bytes moved, by phase");
        r.set_help(
            "aa_phase_compute_us",
            "Virtual compute charged, by phase (µs)",
        );
        r.set_help(
            "aa_dropped_messages_total",
            "Messages lost to injected network faults",
        );
        r.set_help(
            "aa_dup_messages_total",
            "Duplicate deliveries injected by the network",
        );
        r.set_help(
            "aa_heartbeat_messages_total",
            "Failure-detector heartbeat messages",
        );
        r.set_help("aa_rc_steps_total", "Recombination steps executed");
        r.set_help(
            "aa_retransmits_total",
            "Row retransmissions assembled after negative receipts",
        );
        r.set_help(
            "aa_acked_sends_total",
            "Row sends confirmed by a positive delivery receipt",
        );
        r.set_help(
            "aa_failed_sends_total",
            "Row sends negatively acknowledged and queued for retransmit",
        );
        r.set_help(
            "aa_recoveries_total",
            "Recovery-ladder invocations, by rung",
        );
        r.set_help("aa_makespan_us", "LogP virtual cluster time (µs)");
        r.set_help(
            "aa_outstanding_rows",
            "Row sends in flight awaiting acknowledgement",
        );
        r.set_help("aa_dirty_rows", "Rows scheduled for the next exchange");
        r.set_help("aa_live_ranks", "Processors currently up");
        r.set_help("aa_down_ranks", "Processors currently down");
        r.set_help(
            "aa_converged",
            "1 when the last RC step reported convergence",
        );
        r.set_help("aa_graph_vertices", "Live vertices in the world graph");
        r.set_help("aa_graph_edges", "Edges in the world graph");
        r.set_help(
            "aa_snapshot_publications_total",
            "Snapshot frame publications, by kind (fresh rebuild vs reused Arc)",
        );
        r.set_help(
            "aa_rc_step_bytes",
            "Payload bytes per recombination step (from spans)",
        );
        r.set_help(
            "aa_rc_step_span_us",
            "Modeled duration per recombination step (from spans, µs)",
        );

        let ledger = self.cluster.ledger();
        for phase in aa_logp::Phase::ALL {
            let s = ledger.phase(phase);
            let name = phase.to_string();
            let labels = [("phase", name.as_str())];
            r.inc_counter("aa_phase_messages_total", &labels, s.messages);
            r.inc_counter("aa_phase_bytes_total", &labels, s.bytes);
            r.set_gauge("aa_phase_compute_us", &labels, s.compute_us);
        }
        let totals = ledger.totals();
        r.inc_counter("aa_dropped_messages_total", &[], totals.dropped_messages);
        r.inc_counter("aa_dup_messages_total", &[], totals.dup_messages);
        r.inc_counter(
            "aa_heartbeat_messages_total",
            &[],
            totals.heartbeat_messages,
        );
        r.inc_counter("aa_rc_steps_total", &[], self.rc_steps_done as u64);
        r.inc_counter("aa_retransmits_total", &[], self.obs.retransmit_sends);
        r.inc_counter(
            "aa_snapshot_publications_total",
            &[("kind", "fresh")],
            self.obs.publish_fresh,
        );
        r.inc_counter(
            "aa_snapshot_publications_total",
            &[("kind", "reused")],
            self.obs.publish_reused,
        );
        r.inc_counter("aa_acked_sends_total", &[], self.obs.acked_sends);
        r.inc_counter("aa_failed_sends_total", &[], self.obs.failed_sends);

        let mut by_method: BTreeMap<String, u64> = BTreeMap::new();
        for ev in &self.supervision.log {
            *by_method.entry(ev.report.method.to_string()).or_insert(0) += 1;
        }
        for (method, count) in &by_method {
            r.inc_counter("aa_recoveries_total", &[("method", method)], *count);
        }

        r.set_gauge("aa_makespan_us", &[], self.cluster.makespan_us());
        r.set_gauge("aa_outstanding_rows", &[], self.outstanding_rows() as f64);
        let dirty_rows: usize = self.procs.iter().map(|ps| ps.dirty.len()).sum();
        r.set_gauge("aa_dirty_rows", &[], dirty_rows as f64);
        r.set_gauge("aa_live_ranks", &[], self.cluster.live_count() as f64);
        r.set_gauge("aa_down_ranks", &[], self.cluster.down_ranks().len() as f64);
        r.set_gauge("aa_converged", &[], if self.converged { 1.0 } else { 0.0 });
        r.set_gauge("aa_graph_vertices", &[], self.world.vertex_count() as f64);
        r.set_gauge("aa_graph_edges", &[], self.world.edge_count() as f64);

        r.declare_histogram("aa_rc_step_bytes", &RC_BYTES_BOUNDS);
        r.declare_histogram("aa_rc_step_span_us", &RC_SPAN_US_BOUNDS);
        for span in self.obs.spans.iter() {
            if span.name == "recombination" {
                r.observe("aa_rc_step_bytes", &[], span.bytes as f64);
                r.observe("aa_rc_step_span_us", &[], span.modeled_us());
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use aa_graph::generators;

    fn engine(p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(60, 2, 1, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn probe_samples_one_per_step_and_converges_to_exact() {
        let mut e = engine(4, 7);
        e.enable_progress_probe();
        let steps = e.run_to_convergence(32);
        let samples = e.progress_samples();
        assert_eq!(samples.len(), steps);
        let last = samples.last().unwrap();
        assert_eq!(last.max_overestimate, 0.0);
        assert_eq!(last.converged_row_fraction, 1.0);
        assert_eq!(last.unreached_pairs, 0);
        assert!(
            last.kendall_tau > 0.999,
            "tau at exactness: {}",
            last.kendall_tau
        );
        assert_eq!(last.outstanding_rows, 0);
    }

    #[test]
    fn probe_is_monotone_fault_free() {
        let mut e = engine(5, 13);
        e.enable_progress_probe();
        e.run_to_convergence(32);
        for s in e.progress_samples() {
            assert_eq!(s.estimate_regressions, 0, "step {}", s.rc_step);
            assert!(!s.recovering);
            assert_eq!(s.down_ranks, 0);
        }
        for w in e.progress_samples().windows(2) {
            assert!(
                w[1].converged_row_fraction >= w[0].converged_row_fraction,
                "converged fraction regressed at step {}",
                w[1].rc_step
            );
            assert!(w[1].max_overestimate <= w[0].max_overestimate);
        }
    }

    #[test]
    fn probe_disabled_by_default() {
        let mut e = engine(3, 5);
        e.run_to_convergence(16);
        assert!(!e.progress_probe_enabled());
        assert!(e.progress_samples().is_empty());
    }

    #[test]
    fn spans_cover_init_and_steps() {
        let mut e = engine(4, 9);
        let steps = e.run_to_convergence(32);
        let names: Vec<&str> = e.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"domain-decomposition"));
        assert!(names.contains(&"initial-approximation"));
        let rc_spans = names.iter().filter(|n| **n == "recombination").count();
        assert_eq!(rc_spans, steps);
        for s in e.spans().iter() {
            assert!(s.end_us >= s.start_us, "span {} runs backwards", s.name);
        }
        let bytes: u64 = e
            .spans()
            .iter()
            .filter(|s| s.name == "recombination")
            .map(|s| s.bytes)
            .sum();
        assert!(
            bytes > 0,
            "recombination spans must carry the exchange bytes"
        );
    }

    #[test]
    fn metrics_registry_reflects_run_state() {
        let mut e = engine(4, 11);
        let steps = e.run_to_convergence(32);
        let r = e.metrics_registry();
        assert_eq!(r.counter_value("aa_rc_steps_total", &[]), steps as u64);
        assert!(r.counter_value("aa_phase_bytes_total", &[("phase", "recombination")]) > 0);
        assert_eq!(r.gauge_value("aa_converged", &[]), Some(1.0));
        assert_eq!(r.gauge_value("aa_outstanding_rows", &[]), Some(0.0));
        assert_eq!(r.gauge_value("aa_down_ranks", &[]), Some(0.0));
        assert_eq!(r.gauge_value("aa_live_ranks", &[]), Some(4.0));
        let prom = r.to_prometheus_text();
        assert!(prom.contains("aa_rc_step_bytes_bucket"));
        assert!(prom.contains("# TYPE aa_rc_steps_total counter"));
    }

    #[test]
    fn mutation_invalidates_oracle_and_probe_recovers() {
        let mut e = engine(4, 17);
        e.enable_progress_probe();
        e.run_to_convergence(32);
        assert_eq!(e.progress_samples().last().unwrap().max_overestimate, 0.0);
        let (u, v, _) = e.graph().edges().nth(2).unwrap();
        assert!(e.delete_edge(u, v));
        e.run_to_convergence(64);
        let last = e.progress_samples().last().unwrap();
        assert_eq!(
            last.max_overestimate, 0.0,
            "probe must track the post-deletion oracle"
        );
        assert_eq!(last.converged_row_fraction, 1.0);
    }

    #[test]
    fn recovery_spans_and_counters_appear_under_faults() {
        let g = generators::barabasi_albert(80, 2, 1, 23);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 4,
                ..Default::default()
            },
        );
        e.initialize();
        e.schedule_crash(2, 1);
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert!(!e.recovery_log().is_empty(), "crash must trigger recovery");
        let names: Vec<&str> = e.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"recovery"));
        let r = e.metrics_registry();
        let total: u64 = ["checkpoint-restore", "sssp-reseed"]
            .iter()
            .map(|m| r.counter_value("aa_recoveries_total", &[("method", m)]))
            .sum();
        assert_eq!(total, e.recovery_log().len() as u64);
    }
}
