//! Engine checkpointing: save and restore the complete analysis state.
//!
//! Complements the processor-failure recovery in [`crate::resilience`]: a
//! periodic checkpoint bounds the recomputation after a *whole-cluster*
//! failure, the remaining fault-tolerance scenario the papers' future work
//! names. The format is a small self-contained little-endian binary layout
//! (magic + version header) holding the world graph, the partition and every
//! distance-vector row. Volatile state (boundary caches, delta baselines,
//! dirty sets, pending retransmits) is intentionally *not* saved: restore
//! marks every row dirty and downgrades all sends to full rows, which is
//! always safe and costs one re-exchange.
//!
//! Integrity: the header declares the body length, and the byte stream ends
//! in a CRC32 (IEEE) footer over the body (everything between the length
//! field and the footer). A short read is reported as a clean
//! [`io::ErrorKind::InvalidData`] error carrying the byte offset where the
//! stream ended and how many bytes the header promised; bit flips and other
//! corruption trip the checksum. Either way the restore path rejects the
//! blob instead of restoring a silently wrong analysis state.
//!
//! The framing helpers ([`write_framed`], [`read_framed`], [`crc32`]) are
//! public: the supervisor's per-rank checkpoints and the `aa-durable`
//! crash-consistency layer (write-ahead log + on-disk checkpoints) reuse
//! the same envelope with their own magic/version pairs.

use crate::config::EngineConfig;
use crate::engine::AnytimeEngine;
use crate::proc_state::ProcState;
use aa_graph::{Graph, VertexId, Weight};
use aa_partition::partition::UNASSIGNED;
use aa_partition::Partition;

use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"AACP";
const VERSION: u32 = 3;

/// CRC32 (IEEE 802.3, reflected polynomial) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Standard CRC32 (the zlib/PNG/Ethernet checksum).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Decodes the little-endian u32 at the start of `b`, surfacing short input
/// as a context-carrying `InvalidData` error instead of a panic (the restore
/// path must reject corruption, never abort on it).
pub(crate) fn le_u32(b: &[u8], what: &str) -> io::Result<u32> {
    let arr: [u8; 4] = b
        .get(..4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| bad(&format!("checkpoint truncated inside {what}")))?;
    Ok(u32::from_le_bytes(arr))
}

/// Bytes of framing overhead around a body: magic (4), version (4),
/// declared body length (8), CRC32 footer (4).
pub const FRAME_OVERHEAD: usize = 20;

/// Frames `body` in the v3 checkpoint envelope: magic, version, declared
/// body length, body, CRC32 footer over the body. Shared by the
/// whole-engine checkpoint, the supervisor's per-rank checkpoints, and the
/// `aa-durable` on-disk checkpoint wrapper.
pub fn write_framed(magic: &[u8; 4], version: u32, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + FRAME_OVERHEAD);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Unframes a v3-envelope byte stream: checks magic and version, compares
/// the available bytes against the declared body length, verifies the CRC32
/// footer, and returns the body. A short read surfaces as a clean
/// `InvalidData` error naming the byte offset where the stream ended and
/// the length the header declared; bit flips trip the checksum; wrong
/// headers are named as such.
pub fn read_framed<'a>(bytes: &'a [u8], magic: &[u8; 4], version: u32) -> io::Result<&'a [u8]> {
    if bytes.len() < 16 {
        return Err(bad(&format!(
            "checkpoint truncated at byte {}: shorter than the 16-byte header",
            bytes.len()
        )));
    }
    if &bytes[..4] != magic {
        return Err(bad("not an anytime-anywhere checkpoint"));
    }
    if le_u32(&bytes[4..8], "the version header")? != version {
        return Err(bad("unsupported checkpoint version"));
    }
    let body_len = u64::from_le_bytes(
        bytes[8..16]
            .try_into()
            .map_err(|_| bad("checkpoint truncated inside the length header"))?,
    ) as usize;
    let need = body_len
        .checked_add(FRAME_OVERHEAD)
        .ok_or_else(|| bad("declared checkpoint body length overflows"))?;
    if bytes.len() < need {
        return Err(bad(&format!(
            "checkpoint truncated at byte {}: header declares {body_len} body bytes \
             ({need} total expected)",
            bytes.len()
        )));
    }
    if bytes.len() > need {
        return Err(bad(&format!(
            "checkpoint has {} trailing bytes after the declared frame",
            bytes.len() - need
        )));
    }
    let body = &bytes[16..16 + body_len];
    let stored = le_u32(&bytes[16 + body_len..], "the integrity footer")?;
    if crc32(body) != stored {
        return Err(bad("checkpoint integrity checksum mismatch"));
    }
    Ok(body)
}

impl AnytimeEngine {
    /// Writes a checkpoint of the current analysis state, terminated by a
    /// CRC32 integrity footer.
    pub fn save_checkpoint<W: Write>(&self, w: &mut W) -> io::Result<()> {
        assert!(self.initialized, "call initialize() first");
        // Buffer the body so the CRC32 footer can be computed over it.
        let mut body = Vec::new();
        let b = &mut body;
        write_u64(b, self.rc_steps_done as u64)?;
        write_u32(b, self.config.num_procs as u32)?;
        write_u32(b, u32::from(self.converged))?;
        write_u64(b, self.rr_cursor as u64)?;

        // World graph: capacity, alive flags, edges.
        let cap = self.world.capacity();
        write_u64(b, cap as u64)?;
        for v in 0..cap as VertexId {
            b.push(u8::from(self.world.is_alive(v)));
        }
        write_u64(b, self.world.edge_count() as u64)?;
        for (u, v, weight) in self.world.edges() {
            write_u32(b, u)?;
            write_u32(b, v)?;
            write_u32(b, weight)?;
        }

        // Partition assignment (u32::MAX sentinel for unassigned).
        for slot in &self.partition.assignment {
            write_u32(
                b,
                if *slot == UNASSIGNED {
                    u32::MAX
                } else {
                    *slot as u32
                },
            )?;
        }

        // Distance-vector rows, per processor.
        for ps in &self.procs {
            write_u64(b, ps.dv.row_count() as u64)?;
            for &v in ps.dv.vertices() {
                write_u32(b, v)?;
                let row = ps.dv.row(v);
                write_u64(b, row.len() as u64)?;
                for &d in row {
                    write_u32(b, d)?;
                }
            }
        }

        w.write_all(&write_framed(MAGIC, VERSION, &body))?;
        Ok(())
    }

    /// Restores an engine from a checkpoint. The LogP accounting starts
    /// fresh (the reader decides whether past cost matters); every row is
    /// marked dirty and all delta baselines are reset, so the first
    /// recombination steps re-exchange boundary state — always safe.
    pub fn restore_checkpoint<R: Read>(r: &mut R, config: EngineConfig) -> io::Result<Self> {
        // Buffer the stream and validate the whole envelope (magic, version,
        // declared length, CRC32 footer) before trusting any of it: short
        // reads surface with the byte offset they ended at, bit flips trip
        // the checksum — both as clean InvalidData errors.
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let body = read_framed(&bytes, MAGIC, VERSION)?;
        let r = &mut &body[..];
        let rc_steps = read_u64(r)? as usize;
        let procs = read_u32(r)? as usize;
        if procs != config.num_procs {
            return Err(bad("processor count differs from the checkpointed run"));
        }
        let converged = read_u32(r)? != 0;
        let rr_cursor = read_u64(r)? as usize;

        // World graph.
        let cap = read_u64(r)? as usize;
        let mut alive = vec![false; cap];
        for flag in alive.iter_mut() {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            *flag = b[0] != 0;
        }
        let mut world = Graph::with_vertices(cap);
        let edges = read_u64(r)? as usize;
        for _ in 0..edges {
            let u = read_u32(r)?;
            let v = read_u32(r)?;
            let weight = read_u32(r)?;
            if u as usize >= cap || v as usize >= cap {
                return Err(bad("edge endpoint out of range"));
            }
            world.add_edge(u, v, weight);
        }
        for (v, &a) in alive.iter().enumerate() {
            if !a {
                world.remove_vertex(v as VertexId);
            }
        }

        // Partition.
        let mut partition = Partition::unassigned(cap, procs);
        for slot in partition.assignment.iter_mut() {
            let raw = read_u32(r)?;
            *slot = if raw == u32::MAX {
                UNASSIGNED
            } else {
                raw as usize
            };
        }
        partition
            .validate(&world)
            .map_err(|e| bad(&format!("invalid partition: {e}")))?;

        // Processor states with restored rows.
        let mut states = Vec::with_capacity(procs);
        for rank in 0..procs {
            let mut ps = ProcState::new(rank, cap);
            ps.rebuild_view(&world, &partition);
            let rows = read_u64(r)? as usize;
            for _ in 0..rows {
                let v = read_u32(r)?;
                if partition.part_of(v) != Some(rank) {
                    return Err(bad("row owned by the wrong processor"));
                }
                let len = read_u64(r)? as usize;
                if len > cap {
                    return Err(bad("row longer than the graph"));
                }
                let mut row = Vec::with_capacity(len);
                for _ in 0..len {
                    row.push(read_u32(r)? as Weight);
                }
                ps.dv.insert_row(v, row);
                ps.dirty.insert(v);
            }
            states.push(ps);
        }
        if !r.is_empty() {
            return Err(bad("checkpoint has trailing bytes"));
        }

        let p = config.num_procs;
        let cluster = crate::engine::build_cluster(&config);
        // Supervision restarts fresh: the whole-cluster checkpoint does not
        // carry per-rank checkpoints (they describe volatile replica state),
        // and the detector's clocks re-anchor to the restored step counter —
        // without the re-anchor every rank would look "silent since step 0".
        let mut supervision = crate::supervisor::Supervision::new(p, &config.supervision);
        for rank in 0..p {
            supervision.detector.mark_up(rank, rc_steps as u64);
        }
        let engine = AnytimeEngine {
            world,
            partition,
            procs: states,
            cluster,
            config,
            rc_steps_done: rc_steps,
            converged,
            initialized: true,
            rr_cursor,
            pivot_pending: vec![false; p],
            supervision,
            invalidation_epoch: 0,
            obs: crate::obs::EngineObs::default(),
        };
        engine
            .check_invariants()
            .map_err(|e| bad(&format!("inconsistent checkpoint: {e}")))?;
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{Endpoint, VertexBatch};
    use crate::strategy::AdditionStrategy;
    use aa_graph::{algo, generators};

    fn engine(n: usize, p: usize, seed: u64) -> AnytimeEngine {
        let g = generators::barabasi_albert(n, 2, 2, seed);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: p,
                seed,
                ..Default::default()
            },
        );
        e.initialize();
        e
    }

    #[test]
    fn roundtrip_preserves_distances() {
        let mut e = engine(70, 4, 3);
        e.run_to_convergence(64);
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();
        let restored =
            AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), e.config().clone()).unwrap();
        assert_eq!(restored.distances_dense(), e.distances_dense());
        assert_eq!(restored.rc_steps(), e.rc_steps());
        assert_eq!(restored.partition().assignment, e.partition().assignment);
    }

    #[test]
    fn restored_engine_continues_with_dynamic_updates() {
        let mut e = engine(60, 4, 5);
        e.run_to_convergence(64);
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();
        let mut restored =
            AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), e.config().clone()).unwrap();
        let mut batch = VertexBatch::new(2);
        batch.connect(0, Endpoint::Existing(7), 1);
        batch.connect(1, Endpoint::New(0), 2);
        restored.add_vertices(&batch, AdditionStrategy::CutEdgePs);
        restored.delete_edge(0, 1);
        restored.run_to_convergence(96);
        assert!(restored.is_converged());
        let dense = restored.distances_dense();
        let oracle = algo::apsp_dijkstra(restored.graph());
        for v in restored.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize]);
        }
    }

    #[test]
    fn mid_run_checkpoint_resumes_and_converges() {
        let mut e = engine(60, 4, 7);
        e.rc_step(); // partial state only
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();
        let mut restored =
            AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), e.config().clone()).unwrap();
        restored.run_to_convergence(64);
        let dense = restored.distances_dense();
        let oracle = algo::apsp_dijkstra(restored.graph());
        for v in restored.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize]);
        }
    }

    #[test]
    fn checkpoint_with_tombstones_roundtrips() {
        let mut e = engine(50, 3, 9);
        e.run_to_convergence(64);
        e.delete_vertex(10);
        e.run_to_convergence(64);
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();
        let restored =
            AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), e.config().clone()).unwrap();
        assert!(!restored.graph().is_alive(10));
        assert_eq!(restored.distances_dense(), e.distances_dense());
    }

    #[test]
    fn garbage_and_mismatches_rejected() {
        let e = {
            let mut e = engine(20, 2, 11);
            e.run_to_convergence(32);
            e
        };
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();

        // Wrong magic.
        let mut junk = buf.clone();
        junk[0] = b'X';
        assert!(
            AnytimeEngine::restore_checkpoint(&mut junk.as_slice(), e.config().clone()).is_err()
        );
        // Wrong processor count.
        let bad_config = EngineConfig {
            num_procs: 5,
            ..e.config().clone()
        };
        assert!(AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), bad_config).is_err());
        // Truncated stream.
        let truncated = &buf[..buf.len() / 2];
        assert!(
            AnytimeEngine::restore_checkpoint(&mut &truncated[..], e.config().clone()).is_err()
        );
    }

    #[test]
    fn truncated_mid_frame_reports_byte_offset() {
        // The short-read regression: a checkpoint cut mid-frame must
        // round-trip to a clean InvalidData error that names the byte
        // offset where the stream ended and the declared body length — not
        // a generic io error or a misleading checksum complaint.
        let e = {
            let mut e = engine(40, 3, 17);
            e.run_to_convergence(48);
            e
        };
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();
        let body_len = buf.len() - FRAME_OVERHEAD;
        for keep in [16, 17, buf.len() / 4, buf.len() / 2, buf.len() - 1] {
            let err = AnytimeEngine::restore_checkpoint(&mut &buf[..keep], e.config().clone())
                .map(|_| ())
                .unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "cut at {keep}: {err}"
            );
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("truncated at byte {keep}")),
                "cut at {keep}: error must carry the byte offset, got {msg:?}"
            );
            assert!(
                msg.contains(&format!("{body_len} body bytes")),
                "cut at {keep}: error must carry the declared length, got {msg:?}"
            );
        }
        // The same cuts through the shared framing helper (the supervisor's
        // per-rank blobs and aa-durable's checkpoint wrapper ride on it).
        let framed = write_framed(b"AATT", 1, b"some body bytes");
        let err = read_framed(&framed[..framed.len() - 3], b"AATT", 1)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("truncated at byte"));
        assert!(read_framed(&framed, b"AATT", 1).is_ok());
    }

    #[test]
    fn crc32_known_answer() {
        // The standard check value for CRC32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corruption_is_rejected_with_invalid_data() {
        let e = {
            let mut e = engine(30, 3, 13);
            e.run_to_convergence(32);
            e
        };
        let mut buf = Vec::new();
        e.save_checkpoint(&mut buf).unwrap();

        // A bit flip anywhere in the body trips the checksum (the body
        // starts at byte 16, after magic + version + declared length).
        for pos in [17, buf.len() / 2, buf.len() - 5] {
            let mut bad_buf = buf.clone();
            bad_buf[pos] ^= 0x40;
            let err =
                AnytimeEngine::restore_checkpoint(&mut bad_buf.as_slice(), e.config().clone())
                    .map(|_| ())
                    .unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "flip at {pos}: {err}"
            );
            assert!(err.to_string().contains("checksum"), "flip at {pos}: {err}");
        }
        // A corrupted footer is itself caught.
        let mut bad_footer = buf.clone();
        *bad_footer.last_mut().unwrap() ^= 0x01;
        let err = AnytimeEngine::restore_checkpoint(&mut bad_footer.as_slice(), e.config().clone())
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("checksum"));
        // Wrong version (byte 4 is the low byte of the version field).
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        let err =
            AnytimeEngine::restore_checkpoint(&mut bad_version.as_slice(), e.config().clone())
                .map(|_| ())
                .unwrap_err();
        assert!(err.to_string().contains("version"));
        // Truncations at every kind of boundary give clean errors, never
        // panics or silent acceptance.
        for keep in [0, 3, 4, 7, 8, 11, 15, 16, buf.len() / 3, buf.len() - 1] {
            let err = AnytimeEngine::restore_checkpoint(&mut &buf[..keep], e.config().clone())
                .map(|_| ())
                .unwrap_err();
            assert!(
                err.kind() == io::ErrorKind::InvalidData
                    || err.kind() == io::ErrorKind::UnexpectedEof,
                "truncation at {keep}: {err}"
            );
        }
        // Trailing garbage lands in the CRC window and is rejected too.
        let mut padded = buf.clone();
        padded.extend_from_slice(b"garbage");
        assert!(
            AnytimeEngine::restore_checkpoint(&mut padded.as_slice(), e.config().clone()).is_err()
        );
        // The pristine buffer still restores.
        assert!(AnytimeEngine::restore_checkpoint(&mut buf.as_slice(), e.config().clone()).is_ok());
    }
}
