//! The [`AnytimeEngine`]: domain decomposition, initial approximation, and
//! the recombination loop, orchestrated over the simulated cluster.

use crate::closeness::Snapshot;
use crate::config::{EngineConfig, FaultConfig, Refinement};
use crate::obs::EngineObs;
use crate::proc_state::{retry_backoff, Outstanding, ProcState, RowUpdate};
use crate::supervisor::Supervision;
use aa_graph::{Graph, VertexId, Weight, INF};
use aa_logp::Phase;
use aa_obs::Stopwatch;
use aa_partition::Partition;
use aa_runtime::{Cluster, TransferOut};
use std::collections::{HashMap, HashSet};

/// What a recombination exchange carries: boundary-row updates, plus the
/// supervision layer's piggybacked one-byte heartbeats.
#[derive(Debug, Clone)]
pub(crate) enum RcPayload {
    Row(VertexId, RowUpdate),
    Heartbeat,
}

/// Per-rank input to the receipt-settlement stage: row-send descriptors
/// `(row, dst, is_retransmit)`, heartbeat destinations, delivery receipts in
/// send order, and per-dirty-row trivially-delivered destinations.
type SettleInput = (
    Vec<(VertexId, usize, bool)>,
    Vec<usize>,
    Vec<bool>,
    Vec<(VertexId, Vec<usize>)>,
);

/// The distributed anytime-anywhere closeness-centrality engine.
///
/// Owns the "world" graph (the ground truth the environment mutates), the
/// current partition, one [`ProcState`] per virtual processor, and the
/// simulated cluster that accounts for every byte moved and every microsecond
/// computed. See the crate docs for the three-phase pipeline.
pub struct AnytimeEngine {
    pub(crate) world: Graph,
    pub(crate) partition: Partition,
    pub(crate) procs: Vec<ProcState>,
    pub(crate) cluster: Cluster,
    pub(crate) config: EngineConfig,
    pub(crate) rc_steps_done: usize,
    pub(crate) converged: bool,
    pub(crate) initialized: bool,
    /// Cursor for round-robin processor assignment of new vertices.
    pub(crate) rr_cursor: usize,
    /// Per-processor flag: a pivot pass improved something last step, so
    /// another pass is owed even if no new boundary rows arrive
    /// (PivotPass refinement only).
    pub(crate) pivot_pending: Vec<bool>,
    /// Failure detector, per-rank checkpoint store and recovery log.
    pub(crate) supervision: Supervision,
    /// Bumped by every deletion (and weight increase): per-rank checkpoints
    /// from an older epoch may hold underestimates and are unusable.
    pub(crate) invalidation_epoch: u64,
    /// Span log, progress-probe state and protocol counters (see
    /// [`crate::obs`]).
    pub(crate) obs: EngineObs,
}

/// Builds the execution backend an [`EngineConfig`] asks for, with the
/// configured fault plan and compute calibration installed. Shared by
/// [`AnytimeEngine::new`] and the whole-cluster checkpoint restore path.
pub(crate) fn build_cluster(config: &EngineConfig) -> Cluster {
    let mut cluster = Cluster::build(
        config.backend,
        config.num_procs,
        config.logp,
        config.exchange,
        config.threads,
    )
    // aa-lint: allow(AA01, backend availability is probed at CLI/config time via threads_available; failing here is construction-time misconfiguration, same contract as the num_procs assert)
    .unwrap_or_else(|e| panic!("cannot build execution backend: {e}"));
    cluster.set_compute_scale(config.compute_scale);
    cluster.set_fault_plan(config.build_fault_plan());
    cluster
}

impl AnytimeEngine {
    /// Creates an engine over `graph`. Call [`Self::initialize`] before
    /// stepping.
    pub fn new(graph: Graph, config: EngineConfig) -> Self {
        assert!(config.num_procs >= 1, "need at least one processor");
        let p = config.num_procs;
        let cluster = build_cluster(&config);
        let supervision = Supervision::new(p, &config.supervision);
        AnytimeEngine {
            partition: Partition::unassigned(graph.capacity(), p),
            world: graph,
            procs: Vec::new(),
            cluster,
            config,
            rc_steps_done: 0,
            converged: false,
            initialized: false,
            rr_cursor: 0,
            pivot_pending: vec![false; p],
            supervision,
            invalidation_epoch: 0,
            obs: EngineObs::default(),
        }
    }

    /// The partition rank owning `v`. Every vertex that reaches a mutation
    /// or recombination path has an assignment: `initialize()` partitions
    /// the whole world, and the vertex-addition strategies assign before
    /// attaching edges. An unassigned vertex here is a partition/world
    /// desync — a bug, not a runtime condition to degrade on.
    // aa-lint: allow(AA07, structural invariant — callers inherit the assignment guarantee rather than re-proving it at every use)
    pub(crate) fn owner_of(&self, v: VertexId) -> usize {
        self.partition
            .part_of(v)
            // aa-lint: allow(AA01, partition assignment is a structural invariant — initialize covers the world and add-vertex strategies assign before wiring edges)
            .expect("vertex assigned at initialize/add-vertex time")
    }

    /// Domain decomposition + initial approximation. Also used by the
    /// baseline-restart strategy to rebuild from scratch (accounting
    /// accumulates across restarts; use [`Cluster::reset_accounting`]
    /// via [`Self::cluster_mut`] to zero it).
    // aa-lint: allow(AA07, outbox is sized to num_procs which is asserted >= 1 at construction)
    pub fn initialize(&mut self) {
        let p = self.config.num_procs;

        // --- Domain decomposition ---------------------------------------
        let dd_span = self.span_open();
        let partitioner = self.config.partitioner.build(self.config.seed);
        let t = Stopwatch::start();
        self.partition = partitioner.partition(&self.world, p);
        let elapsed = t.elapsed();
        // The papers partition in parallel (ParMETIS); approximate by
        // spreading the measured cost evenly and synchronizing.
        for rank in 0..p {
            self.cluster
                // aa-lint: allow(AA05, p is the processor count, far below u32::MAX)
                .compute_measured(rank, Phase::DomainDecomposition, elapsed / p as u32);
        }
        self.cluster.barrier();

        // Distribute sub-graphs: charge each processor's incoming sub-graph
        // bytes (8 bytes per half-edge + 4 per vertex) from rank 0.
        let mut outbox: Vec<Vec<TransferOut<()>>> = (0..p).map(|_| Vec::new()).collect();
        let members = self.partition.members();
        for (rank, verts) in members.iter().enumerate() {
            if rank == 0 {
                continue;
            }
            let bytes: usize = verts.iter().map(|&v| 4 + 8 * self.world.degree(v)).sum();
            outbox[0].push(TransferOut {
                dst: rank,
                bytes,
                payload: (),
            });
        }
        self.cluster.exchange(Phase::DomainDecomposition, outbox);

        // Build processor states.
        self.procs = (0..p)
            .map(|rank| {
                let mut ps = ProcState::new(rank, self.world.capacity());
                ps.rebuild_view(&self.world, &self.partition);
                for &v in &members[rank] {
                    ps.dv.add_row(v);
                }
                ps
            })
            .collect();
        self.span_close(
            dd_span,
            "domain-decomposition",
            format!("{:?} p={p}", self.config.partitioner),
        );

        // --- Initial approximation ---------------------------------------
        // The heavy per-rank SSSP phase: one closure per rank on the
        // execution backend (sequential on the simulator, worker threads on
        // the threads backend).
        let ia_span = self.span_open();
        let ia = self.config.ia;
        self.cluster.run_on_ranks(
            Phase::InitialApproximation,
            &mut self.procs,
            vec![(); p],
            &vec![false; p],
            |_, ps, ()| ps.initial_approximation(ia),
        );
        self.cluster.barrier();
        self.span_close(ia_span, "initial-approximation", format!("p={p}"));

        self.rc_steps_done = 0;
        self.converged = false;
        self.initialized = true;
        self.pivot_pending = vec![false; p];
        // A (re)initialization resets supervision: old checkpoints describe
        // state the rebuild just discarded, and the detector's clocks restart
        // with the step counter.
        self.supervision = Supervision::new(p, &self.config.supervision);
    }

    /// One recombination step: exchange the distance vectors of boundary
    /// vertices updated since the last step, relax, refine, and agree on
    /// termination. Returns `true` when no processor has pending updates
    /// (the solution is the exact APSP of the current graph).
    ///
    /// Sends are ack-based: a destination is marked as holding a row only
    /// when the exchange's delivery receipt confirms it, and dropped sends
    /// are queued for retransmission with capped exponential backoff. A
    /// processor keeps voting "more updates pending" while any of its sends
    /// is unacknowledged, so [`Self::is_converged`] can never report `true`
    /// with data still in flight — this is what makes convergence loss-safe
    /// under the injected network faults (see `FaultConfig`).
    pub fn rc_step(&mut self) -> bool {
        assert!(self.initialized, "call initialize() first");
        let rc_span = self.span_open();
        let p = self.config.num_procs;
        self.rc_steps_done += 1;
        let now = self.rc_steps_done as u64;
        // Heartbeats (and with them automatic crash detection) need peers.
        let supervise = self.config.supervision.heartbeats && p > 1;

        // 0. Scheduled fail-stop crashes fire; then every live rank takes
        // its periodic checkpoint if one is due. A rank that crashes this
        // step keeps only its previous checkpoint — exactly what a real
        // fail-stop leaves behind.
        self.cluster.fire_crashes_due(now);
        self.take_periodic_checkpoints(now);
        // Per-step compute baseline for the straggler detector.
        let compute_before: Vec<f64> = self.cluster.compute_us_by_rank().to_vec();

        // 1. Assemble boundary-row sends: full rows on first contact, only
        // the changed entries afterwards (the papers' "send only the updated
        // values of the boundary DVs"), plus due retransmits of previously
        // dropped rows. `descs[rank][i]` describes `outbox[rank][i]`:
        // (row, destination, is_retransmit). Down ranks assemble nothing —
        // their dirty sets and retransmit queues stay frozen until recovery.
        // Each live rank assembles its sends on the execution backend (the
        // threads backend runs these closures on real workers); down ranks
        // are skipped and contribute empty plans without a compute charge.
        let down: Vec<bool> = (0..p).map(|r| self.cluster.is_down(r)).collect();
        let partition = &self.partition;
        let plans = self.cluster.run_on_ranks(
            Phase::Recombination,
            &mut self.procs,
            vec![(); p],
            &down,
            |_, ps, ()| {
                let mut outbox: Vec<TransferOut<RcPayload>> = Vec::new();
                let mut descs: Vec<(VertexId, usize, bool)> = Vec::new();
                let mut dirty_meta: Vec<(VertexId, Vec<usize>)> = Vec::new();
                let mut dirty: Vec<VertexId> = ps.dirty.drain().collect();
                dirty.sort_unstable(); // deterministic order
                for u in dirty {
                    // A fresh send supersedes any pending retransmit of the
                    // same row: destinations still neighbouring get the new
                    // data below, the rest no longer need the row at all.
                    ps.outstanding.retain(|&(v, _), _| v != u);
                    let ranks = ps.neighbor_ranks(u, partition);
                    if ranks.is_empty() {
                        continue; // interior vertex: no neighbour processor needs it
                    }
                    let mut trivial = Vec::new();
                    for &dst in &ranks {
                        if let Some(update) = ps.build_row_update(u, dst) {
                            outbox.push(TransferOut {
                                dst,
                                bytes: update.bytes(),
                                payload: RcPayload::Row(u, update),
                            });
                            descs.push((u, dst, false));
                        } else {
                            trivial.push(dst);
                        }
                    }
                    dirty_meta.push((u, trivial));
                }
                // Due retransmits. The destination was removed from `sent_to`
                // when its receipt came back negative, so these are always
                // full rows.
                let mut due: Vec<(VertexId, usize)> = ps
                    .outstanding
                    .iter()
                    .filter(|(_, o)| o.next_step <= now)
                    .map(|(&key, _)| key)
                    .collect();
                due.sort_unstable();
                for (u, dst) in due {
                    match ps.build_row_update(u, dst) {
                        Some(update) => {
                            outbox.push(TransferOut {
                                dst,
                                bytes: update.bytes(),
                                payload: RcPayload::Row(u, update),
                            });
                            descs.push((u, dst, true));
                        }
                        None => {
                            // dst already holds the current row (it was acked
                            // through another path); nothing left to deliver.
                            ps.outstanding.remove(&(u, dst));
                        }
                    }
                }
                (outbox, descs, dirty_meta)
            },
        );
        let mut outbox: Vec<Vec<TransferOut<RcPayload>>> = Vec::with_capacity(p);
        let mut descs: Vec<Vec<(VertexId, usize, bool)>> = Vec::with_capacity(p);
        // Per dirty row: destinations that were already up to date (no bytes
        // needed — trivially delivered).
        let mut dirty_meta: Vec<Vec<(VertexId, Vec<usize>)>> = Vec::with_capacity(p);
        for (ob, ds, dm) in plans {
            outbox.push(ob);
            descs.push(ds);
            dirty_meta.push(dm);
        }
        self.obs.retransmit_sends += descs
            .iter()
            .flatten()
            .filter(|&&(_, _, retry)| retry)
            .count() as u64;

        // 1b. Piggyback one-byte heartbeats from every live rank to every
        // other rank on the same exchange, so silent-but-alive ranks remain
        // distinguishable from crashed ones. Heartbeats ride the same faulty
        // network as the data: chaos drops them too, which is why suspicion
        // needs `detector_timeout` consecutive silent steps.
        let mut hb_dsts: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
        if supervise {
            for rank in 0..p {
                if self.cluster.is_down(rank) {
                    continue;
                }
                for dst in 0..p {
                    if dst != rank {
                        outbox[rank].push(TransferOut {
                            dst,
                            bytes: 1,
                            payload: RcPayload::Heartbeat,
                        });
                        hb_dsts[rank].push(dst);
                    }
                }
            }
        }

        // 2. Personalized all-to-all exchange, through the (possibly faulty)
        // network, with per-sender delivery receipts.
        let (inbox, receipts) = self
            .cluster
            .exchange_with_receipts(Phase::Recombination, outbox);
        if supervise {
            let sent: u64 = hb_dsts.iter().map(|d| d.len() as u64).sum();
            self.cluster
                .note_heartbeats(Phase::Recombination, sent, sent);
        }

        // 3a. Settle receipts *before* applying received rows: each row
        // still equals its value at send time, so an all-acked row's delta
        // baseline can be refreshed to exactly what every receiver now
        // holds. Positive receipts double as liveness evidence: an ack
        // proves the destination was up this step.
        // Every rank (down ranks have nothing to settle — empty descs and
        // receipts) settles on the backend; liveness contacts and protocol
        // counters are returned and applied centrally in rank order, since
        // the detector and `obs` are coordinator-side state.
        let no_skip = vec![false; p];
        let settle_inputs: Vec<SettleInput> = descs
            .into_iter()
            .zip(hb_dsts)
            .zip(receipts)
            .zip(dirty_meta)
            .map(|(((ds, hb), rc), dm)| (ds, hb, rc, dm))
            .collect();
        let settled = self.cluster.run_on_ranks(
            Phase::Recombination,
            &mut self.procs,
            settle_inputs,
            &no_skip,
            |_, ps, (descs_r, hb_r, receipts_r, dirty_r): SettleInput| {
                debug_assert_eq!(descs_r.len() + hb_r.len(), receipts_r.len());
                let mut contacts: Vec<usize> = Vec::new();
                let (mut acked_sends, mut failed_sends) = (0u64, 0u64);
                for (&dst, &ok) in hb_r.iter().zip(&receipts_r[descs_r.len()..]) {
                    if ok {
                        contacts.push(dst);
                    }
                }
                for (&(_, dst, _), &ok) in descs_r.iter().zip(&receipts_r) {
                    if ok {
                        contacts.push(dst);
                    }
                }
                for &ok in receipts_r.iter().take(descs_r.len()) {
                    if ok {
                        acked_sends += 1;
                    } else {
                        failed_sends += 1;
                    }
                }
                let mut acked: HashMap<VertexId, Vec<usize>> = HashMap::new();
                let mut failed: HashMap<VertexId, Vec<usize>> = HashMap::new();
                for (&(u, dst, is_retry), &ok) in descs_r.iter().zip(&receipts_r) {
                    if is_retry {
                        if ok {
                            // The receiver now caches the row as it was at
                            // send time, which is ≤ the (older) baseline
                            // snapshot, so future deltas against that
                            // snapshot stay a superset of what the receiver
                            // needs. Deliberately no baseline refresh: other
                            // members may still be on the older snapshot.
                            ps.sent_to.entry(u).or_default().insert(dst);
                            ps.outstanding.remove(&(u, dst));
                        } else {
                            let o = ps
                                .outstanding
                                .get_mut(&(u, dst))
                                .expect("retransmit has an outstanding entry");
                            o.attempts += 1;
                            o.next_step = now + retry_backoff(o.attempts);
                        }
                    } else if ok {
                        acked.entry(u).or_default().push(dst);
                    } else {
                        failed.entry(u).or_default().push(dst);
                    }
                }
                for (u, trivial) in dirty_r {
                    let mut delivered: HashSet<usize> = trivial.into_iter().collect();
                    delivered.extend(acked.remove(&u).unwrap_or_default());
                    let failures = failed.remove(&u).unwrap_or_default();
                    // Destinations that missed this send (dropped, or their
                    // cut edges to `u` came and went) are out of the
                    // up-to-date set: they get a full row on next contact.
                    ps.sent_to.insert(u, delivered);
                    // Refresh the delta baseline only when every destination
                    // got this send; otherwise keep the old baseline (an
                    // upper bound of every member's cache) so deltas remain
                    // supersets of what each member still needs. First sends
                    // always refresh — there is no older member to protect.
                    if failures.is_empty() || !ps.sent_snapshot.contains_key(&u) {
                        ps.sent_snapshot.insert(u, ps.dv.row(u).to_vec());
                    }
                    for dst in failures {
                        ps.outstanding.insert(
                            (u, dst),
                            Outstanding {
                                attempts: 1,
                                next_step: now + 1,
                            },
                        );
                    }
                }
                (contacts, acked_sends, failed_sends)
            },
        );
        for (contacts, acked_sends, failed_sends) in settled {
            for dst in contacts {
                self.supervision.detector.observe_contact(dst, now);
            }
            self.obs.acked_sends += acked_sends;
            self.obs.failed_sends += failed_sends;
        }

        // 3b. Apply received rows and refine locally, one closure per rank
        // on the backend. Every inbound message (row or heartbeat) is
        // liveness evidence for its sender, reported back as contacts and
        // observed centrally.
        let refinement = self.config.refinement;
        let apply_inputs: Vec<(Vec<(usize, RcPayload)>, bool)> = inbox
            .into_iter()
            .zip(self.pivot_pending.iter().copied())
            .collect();
        let applied = self.cluster.run_on_ranks(
            Phase::Recombination,
            &mut self.procs,
            apply_inputs,
            &no_skip,
            |_, ps, (received, pending): (Vec<(usize, RcPayload)>, bool)| {
                let mut contacts: Vec<usize> = Vec::new();
                let mut seeds = Vec::new();
                for (src, payload) in received {
                    contacts.push(src);
                    if let RcPayload::Row(v, update) = payload {
                        seeds.extend(ps.apply_row_update(v, update));
                    }
                }
                let pending = match refinement {
                    Refinement::WorklistRelax => {
                        ps.propagate_worklist(seeds);
                        pending
                    }
                    Refinement::PivotPass => {
                        if !seeds.is_empty() || pending {
                            ps.pivot_pass()
                        } else {
                            pending
                        }
                    }
                };
                (contacts, pending)
            },
        );
        for (rank, (contacts, pending)) in applied.into_iter().enumerate() {
            for src in contacts {
                self.supervision.detector.observe_contact(src, now);
            }
            self.pivot_pending[rank] = pending;
        }

        // 3c. Failure detection. Stragglers: compare this step's per-rank
        // compute deltas against the live median. Crashes: any rank silent
        // for more than the timeout is suspected; the supervisor confirms it
        // down and (policy permitting) runs the recovery ladder — no manual
        // call anywhere.
        let skip: Vec<bool> = (0..p).map(|r| self.cluster.is_down(r)).collect();
        let deltas: Vec<f64> = self
            .cluster
            .compute_us_by_rank()
            .iter()
            .zip(&compute_before)
            .map(|(a, b)| a - b)
            .collect();
        self.supervision
            .detector
            .observe_step_compute(&deltas, &skip);
        if supervise {
            for rank in self.supervision.detector.suspects(now) {
                self.supervision.detector.mark_down(rank);
                if self.config.supervision.auto_recover {
                    self.recover_rank_ladder(rank, now);
                }
            }
        }

        // 4. Global termination test. Flags are computed *after* recovery so
        // freshly re-dirtied rows count as pending work; a down rank always
        // votes "pending" — its frozen state is not the fixed point.
        let mut flags = vec![false; p];
        for (rank, flag) in flags.iter_mut().enumerate() {
            *flag = self.cluster.is_down(rank)
                || !self.procs[rank].dirty.is_empty()
                || self.pivot_pending[rank]
                || !self.procs[rank].outstanding.is_empty();
        }
        let any = self.cluster.all_reduce_or(Phase::Recombination, &flags);
        self.converged = !any;
        self.span_close(rc_span, "recombination", format!("step {now}"));
        self.record_progress_sample();
        self.feed_capture(false);
        self.converged
    }

    /// Runs recombination steps until convergence or `max_steps`. Returns the
    /// number of steps executed.
    pub fn run_to_convergence(&mut self, max_steps: usize) -> usize {
        let mut steps = 0;
        while steps < max_steps {
            steps += 1;
            if self.rc_step() {
                break;
            }
        }
        steps
    }

    /// The current world graph.
    pub fn graph(&self) -> &Graph {
        &self.world
    }

    /// The current partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The execution backend (clocks + ledger, sim or threads).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (e.g. to reset accounting between experiment
    /// phases).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Virtual cluster time elapsed so far, in microseconds.
    pub fn makespan_us(&self) -> f64 {
        self.cluster.makespan_us()
    }

    /// Recombination steps executed so far (across dynamic updates).
    pub fn rc_steps(&self) -> usize {
        self.rc_steps_done
    }

    /// Whether the last recombination step reported convergence.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Whether [`AnytimeEngine::initialize`] has run (domain decomposition
    /// and initial approximation are done, `rc_step` is legal).
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Row sends that are currently unacknowledged (dropped by the network
    /// and awaiting retransmission), totalled across processors. While this
    /// is non-zero the convergence test cannot report convergence.
    pub fn outstanding_rows(&self) -> usize {
        self.procs.iter().map(|ps| ps.outstanding.len()).sum()
    }

    /// Enables lossy-link chaos injection on the recombination data plane
    /// (drop rate `p_drop`, duplication rate `p_dup`); both zero disables
    /// it. Reordering and the fault seed keep their configured (or default)
    /// values. Takes effect from the next exchange; outstanding
    /// retransmissions keep running either way.
    pub fn set_chaos(&mut self, p_drop: f64, p_dup: f64) {
        // aa-lint: allow(AA03, exact zero is the user-set "chaos off" sentinel, not a computed estimate)
        if p_drop == 0.0 && p_dup == 0.0 {
            self.config.fault = None;
        } else {
            let fc = FaultConfig {
                p_drop,
                p_dup,
                ..self.config.fault.unwrap_or_default()
            };
            self.config.fault = Some(fc);
        }
        // Rebuild the combined plan so any configured processor faults
        // (crash schedule, stragglers) survive the link-rate change.
        let plan = self.config.build_fault_plan();
        self.cluster.set_fault_plan(plan);
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// An anytime snapshot: closeness estimates from the current (possibly
    /// partial) distance vectors. Charges the small result gather.
    ///
    /// Graceful degradation: while a rank is down, estimates for its
    /// vertices are served from its frozen pre-crash state and flagged
    /// [`Snapshot::stale`] — still valid anytime upper-bound-derived
    /// estimates, just not improving until recovery.
    // aa-lint: allow(AA07, processor ranks come from owner_of or down_ranks and procs has one entry per rank from initialize; vertex ids are below world capacity)
    pub fn snapshot(&mut self) -> Snapshot {
        let snap_span = self.span_open();
        let cap = self.world.capacity();
        let mut closeness = vec![0.0f64; cap];
        let mut harmonic = vec![0.0f64; cap];
        let mut stale = vec![false; cap];
        let mut dist_sum = vec![0u64; cap];
        let mut finite_targets = vec![0u32; cap];
        // A slot is quiescent when its owning row has no scheduled or
        // in-flight refinement work and its rank is up; dead/unowned slots
        // stay non-quiescent so consumers never treat them as settled.
        let mut row_quiescent = vec![false; cap];
        for rank in self.cluster.down_ranks() {
            for &v in self.procs[rank].dv.vertices() {
                stale[v as usize] = true;
            }
        }
        let p = self.config.num_procs;
        let mut outbox: Vec<Vec<TransferOut<()>>> = (0..p).map(|_| Vec::new()).collect();
        for (rank, ps) in self.procs.iter().enumerate() {
            let t = Stopwatch::start();
            let rank_down = self.cluster.is_down(rank);
            let in_flight: HashSet<VertexId> = ps.outstanding.keys().map(|&(v, _)| v).collect();
            for &v in ps.dv.vertices() {
                let row = ps.dv.row(v);
                let mut sum = 0u64;
                let mut h = 0.0f64;
                let mut finite = 0u32;
                for (t_idx, &d) in row.iter().enumerate() {
                    if t_idx != v as usize && d != INF && d > 0 {
                        sum += d as u64;
                        h += 1.0 / d as f64;
                        finite += 1;
                    }
                }
                closeness[v as usize] = if sum == 0 { 0.0 } else { 1.0 / sum as f64 };
                harmonic[v as usize] = h;
                dist_sum[v as usize] = sum;
                finite_targets[v as usize] = finite;
                row_quiescent[v as usize] =
                    !rank_down && !ps.dirty.contains(&v) && !in_flight.contains(&v);
            }
            self.cluster
                .compute_measured(rank, Phase::Recombination, t.elapsed());
            if rank != 0 {
                // 16 bytes (two f64) per owned vertex to the master.
                outbox[rank].push(TransferOut {
                    dst: 0,
                    bytes: 16 * ps.dv.row_count(),
                    payload: (),
                });
            }
        }
        self.cluster.exchange(Phase::Recombination, outbox);
        let down_ranks = self.cluster.down_ranks().len();
        let snap = Snapshot {
            rc_step: self.rc_steps_done,
            makespan_us: self.cluster.makespan_us(),
            closeness,
            harmonic,
            dist_sum,
            finite_targets,
            row_quiescent,
            stale,
            outstanding_rows: self.outstanding_rows(),
            live_ranks: self.cluster.live_count(),
            down_ranks,
        };
        self.span_close(
            snap_span,
            "snapshot",
            format!("step {}", self.rc_steps_done),
        );
        snap
    }

    /// Gathers the full distance matrix by source vertex id (test/debug
    /// helper; free of cluster charges). Unowned/dead slots yield `INF` rows.
    // aa-lint: allow(AA07, the dense output is sized to world capacity and row vertex ids are below it)
    pub fn distances_dense(&self) -> Vec<Vec<Weight>> {
        let cap = self.world.capacity();
        let mut out = vec![vec![INF; cap]; cap];
        for ps in &self.procs {
            for &v in ps.dv.vertices() {
                let row = ps.dv.row(v);
                out[v as usize][..row.len()].copy_from_slice(row);
            }
        }
        out
    }

    /// Internal consistency checks (tests): every live vertex has exactly one
    /// owning row; views agree with the partition.
    // aa-lint: allow(AA07, the diagnostic tables are sized to world capacity and row vertex ids are below it)
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut owned = vec![0usize; self.world.capacity()];
        for ps in &self.procs {
            for &v in ps.dv.vertices() {
                owned[v as usize] += 1;
                if !ps.is_local[v as usize] {
                    return Err(format!("proc {} owns row {v} but not locality", ps.rank));
                }
                if self.partition.part_of(v) != Some(ps.rank) {
                    return Err(format!("proc {} owns {v} against the partition", ps.rank));
                }
            }
        }
        for v in 0..self.world.capacity() as VertexId {
            let expect = usize::from(self.world.is_alive(v));
            if owned[v as usize] != expect {
                return Err(format!(
                    "vertex {v}: {} owners, expected {expect}",
                    owned[v as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionerKind;
    use aa_graph::{algo, generators};

    fn config(p: usize) -> EngineConfig {
        EngineConfig {
            num_procs: p,
            ..Default::default()
        }
    }

    fn assert_matches_oracle(engine: &AnytimeEngine) {
        let dense = engine.distances_dense();
        let oracle = algo::apsp_dijkstra(engine.graph());
        for v in 0..engine.graph().capacity() {
            if engine.graph().is_alive(v as VertexId) {
                assert_eq!(dense[v], oracle[v], "row {v} differs from oracle");
            }
        }
    }

    #[test]
    fn static_pipeline_matches_oracle_scale_free() {
        let g = generators::barabasi_albert(150, 2, 3, 11);
        let mut e = AnytimeEngine::new(g, config(4));
        e.initialize();
        e.check_invariants().unwrap();
        let steps = e.run_to_convergence(32);
        assert!(e.is_converged(), "did not converge in 32 steps");
        // Steps are bounded by the maximum number of cut-edge crossings on
        // any shortest path (the papers bound this by P−1 for processor
        // chains); small-world graphs stay in the single digits.
        assert!(
            steps <= 10,
            "static convergence took too long: {steps} steps"
        );
        assert_matches_oracle(&e);
    }

    #[test]
    fn static_pipeline_matches_oracle_many_procs() {
        let g = generators::erdos_renyi_gnm(120, 360, 4, 5);
        let mut e = AnytimeEngine::new(g, config(8));
        e.initialize();
        e.run_to_convergence(64);
        assert!(e.is_converged());
        assert_matches_oracle(&e);
    }

    #[test]
    fn single_processor_degenerates_to_local_apsp() {
        let g = generators::barabasi_albert(60, 2, 1, 3);
        let mut e = AnytimeEngine::new(g, config(1));
        e.initialize();
        let steps = e.run_to_convergence(8);
        assert!(e.is_converged());
        assert_eq!(steps, 1, "one processor converges in a single step");
        assert_matches_oracle(&e);
    }

    #[test]
    fn disconnected_graph_converges_with_inf_across_components() {
        let mut g = generators::path(20);
        g.remove_edge(9, 10);
        let mut e = AnytimeEngine::new(g, config(4));
        e.initialize();
        e.run_to_convergence(32);
        assert!(e.is_converged());
        assert_matches_oracle(&e);
        let d = e.distances_dense();
        assert_eq!(d[0][19], INF);
    }

    #[test]
    fn pivot_pass_refinement_also_converges_to_oracle() {
        let g = generators::barabasi_albert(120, 2, 2, 9);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 4,
                refinement: Refinement::PivotPass,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(200);
        assert!(e.is_converged(), "pivot-pass refinement failed to converge");
        assert_matches_oracle(&e);
    }

    #[test]
    fn all_partitioners_converge_to_oracle() {
        for kind in [
            PartitionerKind::RoundRobin,
            PartitionerKind::Hash,
            PartitionerKind::BfsGrow,
            PartitionerKind::Multilevel,
        ] {
            let g = generators::watts_strogatz(80, 3, 0.2, 2, 6);
            let mut e = AnytimeEngine::new(
                g,
                EngineConfig {
                    num_procs: 5,
                    partitioner: kind,
                    ..Default::default()
                },
            );
            e.initialize();
            e.run_to_convergence(64);
            assert!(e.is_converged(), "{kind:?} did not converge");
            assert_matches_oracle(&e);
        }
    }

    #[test]
    fn anytime_estimates_are_monotone_nonincreasing() {
        let g = generators::barabasi_albert(150, 2, 1, 21);
        let mut e = AnytimeEngine::new(g, config(6));
        e.initialize();
        let mut prev = e.distances_dense();
        for _ in 0..40 {
            let done = e.rc_step();
            let cur = e.distances_dense();
            for (pr, cr) in prev.iter().zip(&cur) {
                for (&a, &b) in pr.iter().zip(cr) {
                    assert!(b <= a, "distance estimate increased: {a} -> {b}");
                }
            }
            prev = cur;
            if done {
                break;
            }
        }
        assert!(e.is_converged());
    }

    #[test]
    fn snapshot_closeness_matches_exact_at_convergence() {
        let g = generators::barabasi_albert(100, 2, 1, 8);
        let exact = algo::exact_closeness(&g);
        let mut e = AnytimeEngine::new(g, config(4));
        e.initialize();
        e.run_to_convergence(32);
        let snap = e.snapshot();
        for (v, (&got, &want)) in snap.closeness.iter().zip(&exact).enumerate() {
            assert!(
                (got - want).abs() < 1e-12,
                "closeness of {v}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn makespan_and_ledger_accumulate() {
        let g = generators::barabasi_albert(80, 2, 1, 4);
        let mut e = AnytimeEngine::new(g, config(4));
        e.initialize();
        let after_init = e.makespan_us();
        assert!(after_init > 0.0);
        e.run_to_convergence(32);
        assert!(e.makespan_us() > after_init);
        let ledger = e.cluster().ledger();
        assert!(ledger.phase(Phase::InitialApproximation).compute_us > 0.0);
        assert!(ledger.phase(Phase::Recombination).bytes > 0);
    }

    #[test]
    #[should_panic(expected = "call initialize")]
    fn stepping_before_initialize_panics() {
        let g = generators::path(4);
        let mut e = AnytimeEngine::new(g, config(2));
        e.rc_step();
    }
}
