//! Engine configuration.

use aa_logp::LogPParams;
use aa_partition::{
    BfsGrowPartitioner, HashPartitioner, MultilevelKWay, Partitioner, RoundRobinPartitioner,
};
use aa_runtime::{BackendKind, ExchangeMode, FaultPlan};

/// Which partitioner drives domain decomposition (and repartitioning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionerKind {
    /// Cyclic assignment by vertex id.
    RoundRobin,
    /// Multiplicative hash of the vertex id.
    Hash,
    /// BFS region growing from high-degree seeds.
    BfsGrow,
    /// Multilevel k-way with FM refinement (the METIS substitute; default).
    Multilevel,
}

impl PartitionerKind {
    /// Instantiates the partitioner, seeding randomized ones with `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::RoundRobin => Box::new(RoundRobinPartitioner),
            PartitionerKind::Hash => Box::new(HashPartitioner),
            PartitionerKind::BfsGrow => Box::new(BfsGrowPartitioner),
            PartitionerKind::Multilevel => Box::new(MultilevelKWay {
                seed,
                ..MultilevelKWay::default()
            }),
        }
    }
}

/// Which single-source shortest-path algorithm the initial-approximation
/// phase runs inside each local sub-graph. The papers use multithreaded
/// Dijkstra ("a possible algorithm to implement the IA ... is Dijkstra's");
/// Delta-stepping and Bellman-Ford are the classic alternatives, available as
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IaAlgorithm {
    /// Binary-heap Dijkstra (default).
    Dijkstra,
    /// Delta-stepping bucketed label correcting with the given bucket width.
    DeltaStepping {
        /// Bucket width (>= 1).
        delta: u32,
    },
    /// Bellman-Ford sweeps to a fixed point.
    BellmanFord,
}

/// How a processor refines its local distance vectors after receiving
/// boundary updates in a recombination step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refinement {
    /// Label-correcting worklist over local edges until the local fixed point
    /// (default). Static convergence is then bounded by the processor count.
    WorklistRelax,
    /// The papers' Floyd–Warshall variant: a single pass pivoting through
    /// local boundary vertices. Cheaper per step, may need more steps; gives
    /// "more up-to-date partial results" between exchanges.
    PivotPass,
}

/// How the Repartition-S strategy recomputes the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepartitionMode {
    /// ParMETIS-style adaptive multilevel repartitioning: coarsen with
    /// label-constrained matching, project the current partition, refine on
    /// the way up (default — the scheme ParMETIS applies when reused for
    /// repartitioning, as the papers do).
    AdaptiveMultilevel,
    /// Full fresh multilevel repartition with part labels greedily remapped
    /// onto the old partition. Maximum cut quality, heavy migration
    /// (ablation).
    FullRemap,
    /// Flat stability-aware refinement from the current assignment;
    /// near-zero migration, weakest cut (ablation).
    Adaptive,
}

/// Lossy-interconnect fault injection (see `aa_runtime::fault`): every
/// recombination transfer is independently dropped with probability
/// `p_drop` and, when delivered, duplicated with probability `p_dup`;
/// receiver inboxes may additionally be reordered. The ack-based send
/// protocol retransmits dropped rows, so the engine still converges to the
/// exact APSP for any `p_drop < 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-transfer drop probability in `[0, 1]`.
    pub p_drop: f64,
    /// Per-delivered-transfer duplication probability in `[0, 1]`.
    pub p_dup: f64,
    /// Whether receiver inboxes are deterministically reordered.
    pub reorder: bool,
    /// Seed of the fault schedule, independent of the engine seed so the
    /// same chaos replays across algorithm configurations.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            p_drop: 0.0,
            p_dup: 0.0,
            reorder: true,
            seed: 0xFA_017,
        }
    }
}

impl FaultConfig {
    /// Builds the runtime fault plan this configuration describes.
    pub fn build_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed, self.p_drop, self.p_dup).with_reorder(self.reorder)
    }
}

/// Processor-level fault injection: scheduled fail-stop crashes and
/// straggler slowdowns (see `aa_runtime::fault`). Crashes fire
/// automatically at the scheduled recombination step; the supervision layer
/// (see [`SupervisorConfig`]) detects them via heartbeat timeout and
/// recovers the rank without any manual call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcFaultConfig {
    /// `(step, rank)` pairs: `rank` fail-stops at recombination step `step`.
    pub crashes: Vec<(u64, usize)>,
    /// `(rank, scale)` pairs: `rank`'s compute runs `scale`× slower.
    pub stragglers: Vec<(usize, f64)>,
}

impl ProcFaultConfig {
    /// Whether any processor fault is actually configured.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.stragglers.is_empty()
    }
}

/// Self-healing supervision: heartbeat failure detection and
/// checkpoint-assisted recovery (see `crate::supervisor`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Piggyback one-byte heartbeats on every recombination exchange so
    /// silent ranks are detectable even when no rows are flowing. On by
    /// default; turning it off also disables automatic crash detection.
    pub heartbeats: bool,
    /// Recombination steps of silence before a rank is suspected crashed.
    /// With lossy links, a rank is "heard" when any of its messages or acks
    /// survives, so the false-positive rate per step is roughly
    /// `p_drop^(2·(P−1))` — 5 steps is conservative even at `p_drop` 0.5.
    pub detector_timeout: u64,
    /// A rank is flagged straggling when its per-step compute exceeds this
    /// multiple of the live median...
    pub straggler_factor: f64,
    /// ...and an absolute floor (µs, masks measurement noise)...
    pub straggler_floor_us: f64,
    /// ...for this many consecutive steps.
    pub straggler_patience: u32,
    /// Take a per-rank checkpoint every this many recombination steps
    /// (0 disables periodic checkpoints; recovery then always falls back to
    /// the SSSP reseed).
    pub checkpoint_interval: usize,
    /// Recover suspected ranks automatically inside `rc_step`. When off the
    /// engine only reports suspicion via `health_report()`.
    pub auto_recover: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeats: true,
            detector_timeout: 5,
            straggler_factor: 16.0,
            straggler_floor_us: 100.0,
            straggler_patience: 3,
            checkpoint_interval: 0,
            auto_recover: true,
        }
    }
}

/// Configuration of an [`crate::AnytimeEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of virtual processors `P`.
    pub num_procs: usize,
    /// LogP parameters of the simulated interconnect.
    pub logp: LogPParams,
    /// All-to-all schedule (the papers' serialized schedule by default).
    pub exchange: ExchangeMode,
    /// Local refinement strategy inside recombination steps.
    pub refinement: Refinement,
    /// Local SSSP algorithm for the initial approximation (and reseeds).
    pub ia: IaAlgorithm,
    /// Domain-decomposition partitioner.
    pub partitioner: PartitionerKind,
    /// Repartition-S flavour.
    pub repartition: RepartitionMode,
    /// Compute calibration: measured wall time is multiplied by this before
    /// entering the virtual clocks (≈10 models the papers' 2012-era Xeons on
    /// a modern host). Default 1.0.
    pub compute_scale: f64,
    /// Seed for all randomized components.
    pub seed: u64,
    /// Network fault injection on the recombination data plane
    /// (`None` = perfect network).
    pub fault: Option<FaultConfig>,
    /// Processor fault injection: scheduled crashes and stragglers
    /// (`None` = trustworthy processors).
    pub proc_fault: Option<ProcFaultConfig>,
    /// Failure detection + recovery policy.
    pub supervision: SupervisorConfig,
    /// Execution backend: the deterministic simulator (default, the
    /// correctness oracle) or real OS threads with the same schedule and
    /// accounting (see `aa_runtime::backend`).
    pub backend: BackendKind,
    /// Worker-thread cap for the threads backend (`0` = one worker per
    /// rank). Must be 0 or 1 on the sim backend, which is strictly
    /// sequential — requesting more fails loudly at construction.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_procs: 16,
            logp: LogPParams::ethernet_1gbe(),
            exchange: ExchangeMode::Serialized,
            refinement: Refinement::WorklistRelax,
            ia: IaAlgorithm::Dijkstra,
            partitioner: PartitionerKind::Multilevel,
            repartition: RepartitionMode::AdaptiveMultilevel,
            compute_scale: 1.0,
            seed: 0xA17A,
            fault: None,
            proc_fault: None,
            supervision: SupervisorConfig::default(),
            backend: BackendKind::Sim,
            threads: 0,
        }
    }
}

impl EngineConfig {
    /// Builds the combined runtime fault plan (network + processor faults),
    /// or `None` when neither kind is configured.
    pub fn build_fault_plan(&self) -> Option<FaultPlan> {
        let needs_plan =
            self.fault.is_some() || self.proc_fault.as_ref().is_some_and(|pf| !pf.is_empty());
        if !needs_plan {
            return None;
        }
        let mut plan = self
            .fault
            .unwrap_or(FaultConfig {
                p_drop: 0.0,
                p_dup: 0.0,
                reorder: false,
                ..FaultConfig::default()
            })
            .build_plan();
        if let Some(pf) = &self.proc_fault {
            for &(step, rank) in &pf.crashes {
                plan.schedule_crash(step, rank);
            }
            for &(rank, scale) in &pf.stragglers {
                plan.set_straggler(rank, scale);
            }
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_graph::generators;

    #[test]
    fn every_kind_builds_and_partitions() {
        let g = generators::barabasi_albert(80, 2, 1, 1);
        for kind in [
            PartitionerKind::RoundRobin,
            PartitionerKind::Hash,
            PartitionerKind::BfsGrow,
            PartitionerKind::Multilevel,
        ] {
            let p = kind.build(7).partition(&g, 4);
            p.validate(&g).unwrap();
        }
    }

    #[test]
    fn default_config_matches_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.num_procs, 16, "the papers evaluate on 16 processors");
        assert_eq!(c.refinement, Refinement::WorklistRelax);
        assert_eq!(c.exchange, ExchangeMode::Serialized);
    }
}
