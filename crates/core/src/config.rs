//! Engine configuration.

use aa_logp::LogPParams;
use aa_partition::{
    BfsGrowPartitioner, HashPartitioner, MultilevelKWay, Partitioner, RoundRobinPartitioner,
};
use aa_runtime::{ExchangeMode, FaultPlan};

/// Which partitioner drives domain decomposition (and repartitioning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionerKind {
    /// Cyclic assignment by vertex id.
    RoundRobin,
    /// Multiplicative hash of the vertex id.
    Hash,
    /// BFS region growing from high-degree seeds.
    BfsGrow,
    /// Multilevel k-way with FM refinement (the METIS substitute; default).
    Multilevel,
}

impl PartitionerKind {
    /// Instantiates the partitioner, seeding randomized ones with `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::RoundRobin => Box::new(RoundRobinPartitioner),
            PartitionerKind::Hash => Box::new(HashPartitioner),
            PartitionerKind::BfsGrow => Box::new(BfsGrowPartitioner),
            PartitionerKind::Multilevel => Box::new(MultilevelKWay {
                seed,
                ..MultilevelKWay::default()
            }),
        }
    }
}

/// Which single-source shortest-path algorithm the initial-approximation
/// phase runs inside each local sub-graph. The papers use multithreaded
/// Dijkstra ("a possible algorithm to implement the IA ... is Dijkstra's");
/// Delta-stepping and Bellman-Ford are the classic alternatives, available as
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IaAlgorithm {
    /// Binary-heap Dijkstra (default).
    Dijkstra,
    /// Delta-stepping bucketed label correcting with the given bucket width.
    DeltaStepping {
        /// Bucket width (>= 1).
        delta: u32,
    },
    /// Bellman-Ford sweeps to a fixed point.
    BellmanFord,
}

/// How a processor refines its local distance vectors after receiving
/// boundary updates in a recombination step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refinement {
    /// Label-correcting worklist over local edges until the local fixed point
    /// (default). Static convergence is then bounded by the processor count.
    WorklistRelax,
    /// The papers' Floyd–Warshall variant: a single pass pivoting through
    /// local boundary vertices. Cheaper per step, may need more steps; gives
    /// "more up-to-date partial results" between exchanges.
    PivotPass,
}

/// How the Repartition-S strategy recomputes the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepartitionMode {
    /// ParMETIS-style adaptive multilevel repartitioning: coarsen with
    /// label-constrained matching, project the current partition, refine on
    /// the way up (default — the scheme ParMETIS applies when reused for
    /// repartitioning, as the papers do).
    AdaptiveMultilevel,
    /// Full fresh multilevel repartition with part labels greedily remapped
    /// onto the old partition. Maximum cut quality, heavy migration
    /// (ablation).
    FullRemap,
    /// Flat stability-aware refinement from the current assignment;
    /// near-zero migration, weakest cut (ablation).
    Adaptive,
}

/// Lossy-interconnect fault injection (see `aa_runtime::fault`): every
/// recombination transfer is independently dropped with probability
/// `p_drop` and, when delivered, duplicated with probability `p_dup`;
/// receiver inboxes may additionally be reordered. The ack-based send
/// protocol retransmits dropped rows, so the engine still converges to the
/// exact APSP for any `p_drop < 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-transfer drop probability in `[0, 1]`.
    pub p_drop: f64,
    /// Per-delivered-transfer duplication probability in `[0, 1]`.
    pub p_dup: f64,
    /// Whether receiver inboxes are deterministically reordered.
    pub reorder: bool,
    /// Seed of the fault schedule, independent of the engine seed so the
    /// same chaos replays across algorithm configurations.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            p_drop: 0.0,
            p_dup: 0.0,
            reorder: true,
            seed: 0xFA_017,
        }
    }
}

impl FaultConfig {
    /// Builds the runtime fault plan this configuration describes.
    pub fn build_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed, self.p_drop, self.p_dup).with_reorder(self.reorder)
    }
}

/// Configuration of an [`crate::AnytimeEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of virtual processors `P`.
    pub num_procs: usize,
    /// LogP parameters of the simulated interconnect.
    pub logp: LogPParams,
    /// All-to-all schedule (the papers' serialized schedule by default).
    pub exchange: ExchangeMode,
    /// Local refinement strategy inside recombination steps.
    pub refinement: Refinement,
    /// Local SSSP algorithm for the initial approximation (and reseeds).
    pub ia: IaAlgorithm,
    /// Domain-decomposition partitioner.
    pub partitioner: PartitionerKind,
    /// Repartition-S flavour.
    pub repartition: RepartitionMode,
    /// Compute calibration: measured wall time is multiplied by this before
    /// entering the virtual clocks (≈10 models the papers' 2012-era Xeons on
    /// a modern host). Default 1.0.
    pub compute_scale: f64,
    /// Seed for all randomized components.
    pub seed: u64,
    /// Network fault injection on the recombination data plane
    /// (`None` = perfect network).
    pub fault: Option<FaultConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_procs: 16,
            logp: LogPParams::ethernet_1gbe(),
            exchange: ExchangeMode::Serialized,
            refinement: Refinement::WorklistRelax,
            ia: IaAlgorithm::Dijkstra,
            partitioner: PartitionerKind::Multilevel,
            repartition: RepartitionMode::AdaptiveMultilevel,
            compute_scale: 1.0,
            seed: 0xA17A,
            fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_graph::generators;

    #[test]
    fn every_kind_builds_and_partitions() {
        let g = generators::barabasi_albert(80, 2, 1, 1);
        for kind in [
            PartitionerKind::RoundRobin,
            PartitionerKind::Hash,
            PartitionerKind::BfsGrow,
            PartitionerKind::Multilevel,
        ] {
            let p = kind.build(7).partition(&g, 4);
            p.validate(&g).unwrap();
        }
    }

    #[test]
    fn default_config_matches_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.num_procs, 16, "the papers evaluate on 16 processors");
        assert_eq!(c.refinement, Refinement::WorklistRelax);
        assert_eq!(c.exchange, ExchangeMode::Serialized);
    }
}
