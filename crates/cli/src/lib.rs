#![forbid(unsafe_code)]
//! Library backing the `aa` command-line tool: argument parsing, graph file
//! loading in three formats, and the dynamic-update stream language.
//!
//! The update stream is a plain-text file, one command per line
//! (`#`-comments allowed):
//!
//! ```text
//! ae  u v w        # add edge
//! de  u v          # delete edge
//! cw  u v w        # change edge weight
//! dv  v            # delete vertex
//! av  a1,a2,...    # add one vertex with unit edges to existing anchors
//! step             # run one recombination step
//! converge         # run recombination to convergence
//! rebalance        # migrate rows to rebalance load
//! fail r           # crash and recover processor r
//! snapshot k       # print the current top-k closeness ranking
//! ```
//!
//! Tokens may be double-quoted (`ae "0" 5 2`); inside quotes `#` and
//! whitespace are literal. Streams replay through the shared ingest path
//! ([`stream::apply_batch`]): `aa analyze --stream` flushes every command
//! for per-op semantics, while `aa stream` coalesces and batches updates
//! under a drain policy with bounded-queue backpressure (see `aa-ingest`).

pub mod commands;
pub mod stream;

use aa_graph::{io as gio, Graph};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Supported graph file formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Whitespace `u v [w]` edge list, 0-based.
    EdgeList,
    /// Pajek `.net`.
    Pajek,
    /// METIS `.graph`.
    Metis,
}

impl Format {
    /// Parses a format name.
    pub fn parse(name: &str) -> Result<Format, String> {
        match name.to_ascii_lowercase().as_str() {
            "edgelist" | "edges" | "txt" => Ok(Format::EdgeList),
            "pajek" | "net" => Ok(Format::Pajek),
            "metis" | "graph" => Ok(Format::Metis),
            other => Err(format!("unknown format {other:?} (edgelist|pajek|metis)")),
        }
    }

    /// Guesses from a file extension, defaulting to the edge list.
    pub fn from_path(path: &Path) -> Format {
        match path.extension().and_then(|e| e.to_str()) {
            Some("net") => Format::Pajek,
            Some("graph") | Some("metis") => Format::Metis,
            _ => Format::EdgeList,
        }
    }
}

/// Loads a graph file in the given (or guessed) format.
pub fn load_graph(path: &Path, format: Option<Format>) -> Result<Graph, String> {
    let format = format.unwrap_or_else(|| Format::from_path(path));
    let file = File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let reader = BufReader::new(file);
    let result = match format {
        Format::EdgeList => gio::read_edge_list(reader),
        Format::Pajek => gio::read_pajek(reader),
        Format::Metis => gio::read_metis(reader),
    };
    result.map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Writes a graph file in the given format. The write is atomic
/// (write→fsync→rename via `aa-durable`): an interrupted save leaves the
/// previous file intact instead of a truncated graph that silently parses
/// as a smaller one.
pub fn save_graph(g: &Graph, path: &Path, format: Option<Format>) -> Result<(), String> {
    let format = format.unwrap_or_else(|| Format::from_path(path));
    let mut buf: Vec<u8> = Vec::new();
    let result = match format {
        Format::EdgeList => gio::write_edge_list(g, &mut buf),
        Format::Pajek => gio::write_pajek(g, &mut buf),
        Format::Metis => gio::write_metis(g, &mut buf),
    };
    result.map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    aa_durable::atomic_write_file(path, &buf)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing() {
        assert_eq!(Format::parse("pajek").unwrap(), Format::Pajek);
        assert_eq!(Format::parse("METIS").unwrap(), Format::Metis);
        assert_eq!(Format::parse("edgelist").unwrap(), Format::EdgeList);
        assert!(Format::parse("gml").is_err());
    }

    #[test]
    fn format_guessing() {
        assert_eq!(Format::from_path(Path::new("a.net")), Format::Pajek);
        assert_eq!(Format::from_path(Path::new("a.graph")), Format::Metis);
        assert_eq!(Format::from_path(Path::new("a.txt")), Format::EdgeList);
        assert_eq!(Format::from_path(Path::new("noext")), Format::EdgeList);
    }

    #[test]
    fn load_save_roundtrip() {
        let g = aa_graph::generators::barabasi_albert(30, 2, 3, 1);
        let dir = std::env::temp_dir().join("aa_cli_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, fmt) in [
            ("g.txt", Format::EdgeList),
            ("g.net", Format::Pajek),
            ("g.graph", Format::Metis),
        ] {
            let path = dir.join(name);
            save_graph(&g, &path, Some(fmt)).unwrap();
            let h = load_graph(&path, None).unwrap();
            assert_eq!(h.edge_count(), g.edge_count(), "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = load_graph(Path::new("/definitely/not/here.txt"), None).unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
