//! The dynamic-update stream language: parsing and application.

use aa_core::{AdditionStrategy, AnytimeEngine, Endpoint, VertexBatch};
use aa_graph::{VertexId, Weight};

/// One parsed stream command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `ae u v w` — add edge.
    AddEdge(VertexId, VertexId, Weight),
    /// `de u v` — delete edge.
    DeleteEdge(VertexId, VertexId),
    /// `cw u v w` — change edge weight.
    ChangeWeight(VertexId, VertexId, Weight),
    /// `dv v` — delete vertex.
    DeleteVertex(VertexId),
    /// `av a1,a2,…` — add one vertex with unit edges to the anchors.
    AddVertex(Vec<VertexId>),
    /// `step` — one recombination step.
    Step,
    /// `converge` — recombination to convergence.
    Converge,
    /// `rebalance` — migrate rows to rebalance load.
    Rebalance,
    /// `fail r` — crash and recover processor `r`.
    Fail(usize),
    /// `snapshot k` — print the top-k closeness ranking.
    Snapshot(usize),
}

/// Parses a stream file's contents. Returns commands or a message naming the
/// offending line.
pub fn parse_stream(text: &str) -> Result<Vec<Command>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let op = toks.next().unwrap();
        let mut arg = |what: &str| -> Result<u32, String> {
            toks.next()
                .ok_or_else(|| format!("line {lineno}: missing {what}"))?
                .parse()
                .map_err(|_| format!("line {lineno}: invalid {what}"))
        };
        let cmd = match op {
            "ae" => Command::AddEdge(arg("u")?, arg("v")?, arg("w")?),
            "de" => Command::DeleteEdge(arg("u")?, arg("v")?),
            "cw" => Command::ChangeWeight(arg("u")?, arg("v")?, arg("w")?),
            "dv" => Command::DeleteVertex(arg("v")?),
            "av" => {
                let anchors_tok = toks
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing anchor list"))?;
                let anchors: Result<Vec<VertexId>, _> =
                    anchors_tok.split(',').map(|a| a.parse()).collect();
                Command::AddVertex(
                    anchors.map_err(|_| format!("line {lineno}: invalid anchor list"))?,
                )
            }
            "step" => Command::Step,
            "converge" => Command::Converge,
            "rebalance" => Command::Rebalance,
            "fail" => Command::Fail(arg("rank")? as usize),
            "snapshot" => Command::Snapshot(arg("k")? as usize),
            other => return Err(format!("line {lineno}: unknown command {other:?}")),
        };
        if toks.next().is_some() {
            return Err(format!("line {lineno}: trailing tokens"));
        }
        out.push(cmd);
    }
    Ok(out)
}

/// Applies one command to a running engine. Returns lines to print (empty
/// for silent commands).
pub fn apply(engine: &mut AnytimeEngine, cmd: &Command, strategy: AdditionStrategy) -> Vec<String> {
    match cmd {
        Command::AddEdge(u, v, w) => {
            let added = engine.add_edge(*u, *v, *w);
            if added {
                vec![]
            } else {
                vec![format!("warning: edge ({u},{v}) already present")]
            }
        }
        Command::DeleteEdge(u, v) => {
            if engine.delete_edge(*u, *v) {
                vec![]
            } else {
                vec![format!("warning: edge ({u},{v}) not found")]
            }
        }
        Command::ChangeWeight(u, v, w) => {
            if engine.change_edge_weight(*u, *v, *w) {
                vec![]
            } else {
                vec![format!("warning: weight change on ({u},{v}) was a no-op")]
            }
        }
        Command::DeleteVertex(v) => {
            if engine.graph().is_alive(*v) {
                engine.delete_vertex(*v);
                vec![]
            } else {
                vec![format!("warning: vertex {v} not alive")]
            }
        }
        Command::AddVertex(anchors) => {
            let mut batch = VertexBatch::new(1);
            let mut dropped = Vec::new();
            for &a in anchors {
                if engine.graph().is_alive(a) {
                    batch.connect(0, Endpoint::Existing(a), 1);
                } else {
                    dropped.push(a);
                }
            }
            let ids = engine.add_vertices(&batch, strategy);
            let mut out = vec![format!("added vertex {}", ids[0])];
            if !dropped.is_empty() {
                out.push(format!("warning: dead anchors skipped: {dropped:?}"));
            }
            out
        }
        Command::Step => {
            engine.rc_step();
            vec![]
        }
        Command::Converge => {
            let steps = engine.run_to_convergence(16 * engine.config().num_procs + 64);
            vec![format!("converged in {steps} steps")]
        }
        Command::Rebalance => {
            let moved = engine.rebalance();
            vec![format!("rebalanced: {moved} vertices migrated")]
        }
        Command::Fail(rank) => {
            let report = engine.fail_and_recover_processor(*rank);
            vec![format!(
                "processor {rank} crashed and recovered: {} rows reseeded, {} rows resent",
                report.reseeded_rows, report.resent_rows
            )]
        }
        Command::Snapshot(k) => {
            let snap = engine.snapshot();
            let mut out = vec![format!(
                "snapshot at RC{} ({:.1} ms cluster time):",
                snap.rc_step,
                snap.makespan_us / 1000.0
            )];
            for (v, c) in snap.top_k(*k) {
                out.push(format!("  vertex {v:>6}  closeness {c:.6e}"));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::EngineConfig;
    use aa_graph::generators;

    #[test]
    fn parse_full_language() {
        let text = "\
# demo stream
ae 0 5 2
de 1 2
cw 3 4 9
dv 7
av 1,2,3
step
converge
rebalance
fail 2
snapshot 10
";
        let cmds = parse_stream(text).unwrap();
        assert_eq!(cmds.len(), 10);
        assert_eq!(cmds[0], Command::AddEdge(0, 5, 2));
        assert_eq!(cmds[4], Command::AddVertex(vec![1, 2, 3]));
        assert_eq!(cmds[8], Command::Fail(2));
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert!(parse_stream("ae 0").unwrap_err().contains("line 1"));
        assert!(parse_stream("\nxx 1").unwrap_err().contains("line 2"));
        assert!(parse_stream("ae 0 1 2 3").unwrap_err().contains("trailing"));
        assert!(parse_stream("av one,two").unwrap_err().contains("anchor"));
    }

    #[test]
    fn apply_stream_end_to_end() {
        let g = generators::barabasi_albert(40, 2, 1, 3);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 3,
                ..Default::default()
            },
        );
        e.initialize();
        let cmds = parse_stream("converge\nae 0 20 1\nav 5,6\nstep\nde 0 1\nconverge\nsnapshot 3\n")
            .unwrap();
        let mut printed = Vec::new();
        for cmd in &cmds {
            printed.extend(apply(&mut e, cmd, AdditionStrategy::RoundRobinPs));
        }
        assert!(e.is_converged());
        assert!(printed.iter().any(|l| l.contains("added vertex 40")));
        assert!(printed.iter().any(|l| l.contains("snapshot")));
        // Final state is exact.
        let dense = e.distances_dense();
        let oracle = aa_graph::algo::apsp_dijkstra(e.graph());
        for v in e.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize]);
        }
    }

    #[test]
    fn apply_warns_on_noops() {
        let g = generators::path(5);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 2,
                ..Default::default()
            },
        );
        e.initialize();
        let warn = apply(&mut e, &Command::DeleteEdge(0, 4), AdditionStrategy::RoundRobinPs);
        assert!(warn[0].contains("not found"));
        let warn = apply(&mut e, &Command::DeleteVertex(99), AdditionStrategy::RoundRobinPs);
        assert!(warn[0].contains("not alive"));
    }
}
