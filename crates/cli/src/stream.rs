//! The dynamic-update stream language: parsing and application.

use aa_core::{AdditionStrategy, AnytimeEngine, Endpoint, VertexBatch};
use aa_graph::{VertexId, Weight};
use aa_ingest::{Admission, IngestPipeline, UpdateOp};
use aa_query::{Confidence, TopKAnswer, TopKTracker};

/// One parsed stream command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `ae u v w` — add edge.
    AddEdge(VertexId, VertexId, Weight),
    /// `de u v` — delete edge.
    DeleteEdge(VertexId, VertexId),
    /// `cw u v w` — change edge weight.
    ChangeWeight(VertexId, VertexId, Weight),
    /// `dv v` — delete vertex.
    DeleteVertex(VertexId),
    /// `av a1,a2,…` — add one vertex with unit edges to the anchors.
    AddVertex(Vec<VertexId>),
    /// `step` — one recombination step.
    Step,
    /// `converge` — recombination to convergence.
    Converge,
    /// `rebalance` — migrate rows to rebalance load.
    Rebalance,
    /// `fail r` — crash and recover processor `r`.
    Fail(usize),
    /// `chaos p_drop p_dup` — set lossy-link fault injection rates
    /// (both zero disables chaos).
    Chaos(f64, f64),
    /// `snapshot k` — print the top-k closeness ranking.
    Snapshot(usize),
}

/// Parses one numeric token of a stream line.
fn num_arg<'a, T: std::str::FromStr>(
    toks: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, String> {
    toks.next()
        .ok_or_else(|| format!("line {lineno}: missing {what}"))?
        .parse()
        .map_err(|_| format!("line {lineno}: invalid {what}"))
}

/// Splits one stream line into tokens. Double quotes group a run of
/// characters into (part of) a token with whitespace and `#` taken
/// literally; outside quotes `#` starts a comment that runs to end of line.
/// A naive `split('#')` would truncate quoted arguments mid-token and make
/// the remainder look like a comment instead of being rejected.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    let mut in_token = false;
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '#' => break,
            '"' => {
                in_token = true;
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(inner) => cur.push(inner),
                        None => return Err("unterminated quote".to_string()),
                    }
                }
            }
            c if c.is_whitespace() => {
                if in_token {
                    toks.push(std::mem::take(&mut cur));
                    in_token = false;
                }
            }
            c => {
                in_token = true;
                cur.push(c);
            }
        }
    }
    if in_token {
        toks.push(cur);
    }
    Ok(toks)
}

/// Parses a stream file's contents. Returns `(line number, command)` pairs —
/// the line numbers let [`apply`] failures point back at the offending
/// source line — or a message naming the line that failed to parse.
/// Unconsumed tokens after a complete command are an error, never silently
/// ignored.
pub fn parse_stream(text: &str) -> Result<Vec<(usize, Command)>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let tokens = tokenize(raw).map_err(|e| format!("line {lineno}: {e}"))?;
        let mut toks = tokens.iter().map(String::as_str);
        let Some(op) = toks.next() else {
            continue;
        };
        let cmd = match op {
            "ae" => Command::AddEdge(
                num_arg(&mut toks, lineno, "u")?,
                num_arg(&mut toks, lineno, "v")?,
                num_arg(&mut toks, lineno, "w")?,
            ),
            "de" => Command::DeleteEdge(
                num_arg(&mut toks, lineno, "u")?,
                num_arg(&mut toks, lineno, "v")?,
            ),
            "cw" => Command::ChangeWeight(
                num_arg(&mut toks, lineno, "u")?,
                num_arg(&mut toks, lineno, "v")?,
                num_arg(&mut toks, lineno, "w")?,
            ),
            "dv" => Command::DeleteVertex(num_arg(&mut toks, lineno, "v")?),
            "av" => {
                let anchors_tok = toks
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing anchor list"))?;
                let anchors: Result<Vec<VertexId>, _> =
                    anchors_tok.split(',').map(|a| a.parse()).collect();
                Command::AddVertex(
                    anchors.map_err(|_| format!("line {lineno}: invalid anchor list"))?,
                )
            }
            "step" => Command::Step,
            "converge" => Command::Converge,
            "rebalance" => Command::Rebalance,
            "fail" => Command::Fail(num_arg::<u32>(&mut toks, lineno, "rank")? as usize),
            "chaos" => {
                let p_drop: f64 = num_arg(&mut toks, lineno, "p_drop")?;
                let p_dup: f64 = num_arg(&mut toks, lineno, "p_dup")?;
                if !(0.0..=1.0).contains(&p_drop) || !(0.0..=1.0).contains(&p_dup) {
                    return Err(format!(
                        "line {lineno}: chaos probabilities must lie in [0, 1]"
                    ));
                }
                if p_drop >= 1.0 {
                    return Err(format!(
                        "line {lineno}: p_drop must be below 1 (a network that drops everything can never converge)"
                    ));
                }
                Command::Chaos(p_drop, p_dup)
            }
            "snapshot" => Command::Snapshot(num_arg::<u32>(&mut toks, lineno, "k")? as usize),
            other => return Err(format!("line {lineno}: unknown command {other:?}")),
        };
        if toks.next().is_some() {
            return Err(format!("line {lineno}: trailing tokens"));
        }
        out.push((lineno, cmd));
    }
    Ok(out)
}

/// Rejects vertex ids that are out of range or deleted before they reach
/// graph-layer operations that would panic on them.
fn check_vertex(engine: &AnytimeEngine, v: VertexId) -> Result<(), String> {
    if engine.graph().is_alive(v) {
        Ok(())
    } else {
        Err(format!("vertex {v} is out of range or not alive"))
    }
}

/// Applies one command to a running engine. Returns lines to print (empty
/// for silent commands), or an error for commands whose arguments are
/// invalid for the current engine state — bad ranks, dead endpoints, zero
/// weights. Harmless no-ops (deleting a missing edge, re-adding an existing
/// one) stay warnings, not errors.
pub fn apply(
    engine: &mut AnytimeEngine,
    cmd: &Command,
    strategy: AdditionStrategy,
) -> Result<Vec<String>, String> {
    let out = match cmd {
        Command::AddEdge(u, v, w) => {
            check_vertex(engine, *u)?;
            check_vertex(engine, *v)?;
            if u == v {
                return Err(format!("self-loop ({u},{u}) is not a valid edge"));
            }
            if *w == 0 {
                return Err(format!("edge ({u},{v}) weight must be at least 1"));
            }
            let added = engine.add_edge(*u, *v, *w);
            if added {
                vec![]
            } else {
                vec![format!("warning: edge ({u},{v}) already present")]
            }
        }
        Command::DeleteEdge(u, v) => {
            check_vertex(engine, *u)?;
            check_vertex(engine, *v)?;
            if engine.delete_edge(*u, *v) {
                vec![]
            } else {
                vec![format!("warning: edge ({u},{v}) not found")]
            }
        }
        Command::ChangeWeight(u, v, w) => {
            check_vertex(engine, *u)?;
            check_vertex(engine, *v)?;
            if *w == 0 {
                return Err(format!("edge ({u},{v}) weight must be at least 1"));
            }
            if engine.change_edge_weight(*u, *v, *w) {
                vec![]
            } else {
                vec![format!("warning: weight change on ({u},{v}) was a no-op")]
            }
        }
        Command::DeleteVertex(v) => {
            if engine.graph().is_alive(*v) {
                engine.delete_vertex(*v);
                vec![]
            } else {
                vec![format!("warning: vertex {v} not alive")]
            }
        }
        Command::AddVertex(anchors) => {
            let mut batch = VertexBatch::new(1);
            let mut dropped = Vec::new();
            for &a in anchors {
                if engine.graph().is_alive(a) {
                    batch.connect(0, Endpoint::Existing(a), 1);
                } else {
                    dropped.push(a);
                }
            }
            let ids = engine.add_vertices(&batch, strategy);
            let mut out = vec![format!("added vertex {}", ids[0])];
            if !dropped.is_empty() {
                out.push(format!("warning: dead anchors skipped: {dropped:?}"));
            }
            out
        }
        Command::Step => {
            engine.rc_step();
            vec![]
        }
        Command::Converge => {
            let steps = engine.run_to_convergence(16 * engine.config().num_procs + 64);
            vec![format!("converged in {steps} steps")]
        }
        Command::Rebalance => {
            let moved = engine.rebalance();
            vec![format!("rebalanced: {moved} vertices migrated")]
        }
        Command::Fail(rank) => {
            let report = engine
                .fail_and_recover_processor(*rank)
                .map_err(|e| e.to_string())?;
            vec![format!(
                "processor {rank} crashed and recovered via {}: {} rows reseeded, {} rows resent",
                report.method, report.reseeded_rows, report.resent_rows
            )]
        }
        Command::Chaos(p_drop, p_dup) => {
            engine.set_chaos(*p_drop, *p_dup);
            // aa-lint: allow(AA03, exact echo of the user-typed "chaos off" zeros, not a computed estimate)
            if *p_drop == 0.0 && *p_dup == 0.0 {
                vec!["chaos disabled: links are reliable again".to_string()]
            } else {
                vec![format!(
                    "chaos enabled: p_drop {p_drop}, p_dup {p_dup} on recombination links"
                )]
            }
        }
        Command::Snapshot(k) => {
            let snap = engine.snapshot();
            let mut out = vec![format!(
                "snapshot at RC{} ({:.1} ms cluster time):",
                snap.rc_step,
                snap.makespan_us / 1000.0
            )];
            for (v, c) in snap.top_k(*k) {
                out.push(format!("  vertex {v:>6}  closeness {c:.6e}"));
            }
            out
        }
    };
    Ok(out)
}

/// Folds the engine's current published frame and drained bound deltas into
/// the top-k tracker, keeping its bounds current with whatever the stream
/// just applied or stepped.
pub(crate) fn observe_frame(engine: &mut AnytimeEngine, tracker: &mut TopKTracker) {
    let frame = engine.publish_snapshot();
    let deltas = engine.drain_bound_deltas();
    tracker.observe(&frame, engine.graph(), &deltas);
}

/// Advances the engine to convergence (or the step budget), observing every
/// superstep so the tracker's pruning statistics cover the whole run rather
/// than just the terminal state. Returns the steps taken, matching
/// `run_to_convergence`.
pub(crate) fn run_observed(
    engine: &mut AnytimeEngine,
    tracker: &mut TopKTracker,
    budget: usize,
) -> usize {
    observe_frame(engine, tracker);
    let mut steps = 0;
    while !engine.is_converged() && steps < budget {
        engine.rc_step();
        steps += 1;
        observe_frame(engine, tracker);
    }
    steps
}

/// One-line confidence summary of a top-k answer.
pub(crate) fn confidence_line(tracker: &TopKTracker, ans: &TopKAnswer) -> String {
    match &ans.confidence {
        Confidence::Exact => format!(
            "top-{} confidence: exact{} ({} pivots)",
            ans.k,
            tracker
                .resolution_step()
                .map(|s| format!(", resolved at RC step {s}"))
                .unwrap_or_default(),
            tracker.pivots().len()
        ),
        Confidence::Anytime {
            kth_bound_gap,
            unresolved_candidates,
        } => format!(
            "top-{} confidence: anytime — {} unresolved candidate(s), kth bound gap {:.3e}, \
             {:.1}% of non-members pruned",
            ans.k,
            unresolved_candidates,
            kth_bound_gap,
            tracker.pruned_fraction() * 100.0
        ),
    }
}

/// Converts a mutation command into its ingest op; `None` for control
/// commands (steps, barriers, chaos, snapshots), which don't buffer.
fn to_update_op(cmd: &Command) -> Option<UpdateOp> {
    match cmd {
        Command::AddEdge(u, v, w) => Some(UpdateOp::AddEdge(*u, *v, *w)),
        Command::DeleteEdge(u, v) => Some(UpdateOp::DeleteEdge(*u, *v)),
        Command::ChangeWeight(u, v, w) => Some(UpdateOp::Reweight(*u, *v, *w)),
        Command::DeleteVertex(v) => Some(UpdateOp::DeleteVertex(*v)),
        Command::AddVertex(anchors) => Some(UpdateOp::AddVertex {
            anchors: anchors.iter().map(|&a| (a, 1)).collect(),
        }),
        _ => None,
    }
}

/// Applies a parsed command run through the shared ingest path — the single
/// application route used by both `aa analyze --stream` replay and
/// `aa stream` serving.
///
/// Mutation commands are pushed into `pipeline` (validated against the
/// projected state, coalesced, and drained per its policy); control
/// commands are barriers — the buffer is flushed before they run through
/// [`apply`]. A trailing flush guarantees nothing stays buffered. Errors
/// carry the offending stream line number; backpressure decisions surface
/// as printed lines, never as errors.
///
/// When a [`TopKTracker`] is attached it is re-observed after every flush
/// and control command, so its bounds stay current across batched ingest —
/// `snapshot k` commands then also print the tracker's confidence for the
/// requested k.
pub fn apply_batch(
    engine: &mut AnytimeEngine,
    pipeline: &mut IngestPipeline,
    cmds: &[(usize, Command)],
    strategy: AdditionStrategy,
    mut tracker: Option<&mut TopKTracker>,
) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (lineno, cmd) in cmds {
        let ctx = |e: String| format!("stream line {lineno}: {e}");
        match to_update_op(cmd) {
            Some(op) => {
                let outcome = pipeline.push(engine, op).map_err(ctx)?;
                if let Some(id) = outcome.new_vertex {
                    out.push(format!("added vertex {id}"));
                }
                out.extend(outcome.warnings);
                match outcome.admission {
                    Admission::Accepted => {
                        pipeline.maybe_flush(engine).map_err(ctx)?;
                    }
                    Admission::Throttled { retry_after } => {
                        out.push(format!(
                            "backpressure: line {lineno} throttled — backing off until \
                             {retry_after} ops drain"
                        ));
                        // Honor the retry hint instead of busy-resubmitting
                        // into a queue above its watermark: one barrier
                        // flush drains the whole buffer (≥ retry_after
                        // ops), so the next push is admitted below the
                        // watermark again. Bounded backoff — at most one
                        // flush per throttle decision.
                        pipeline.flush(engine).map_err(ctx)?;
                    }
                    Admission::Shed => {
                        out.push(format!(
                            "warning: line {lineno} shed — ingest queue at capacity ({})",
                            pipeline.config().queue_cap
                        ));
                        pipeline.maybe_flush(engine).map_err(ctx)?;
                    }
                }
                if let Some(t) = tracker.as_deref_mut() {
                    observe_frame(engine, t);
                }
            }
            None => {
                pipeline.flush(engine).map_err(ctx)?;
                out.extend(apply(engine, cmd, strategy).map_err(ctx)?);
                if let Some(t) = tracker.as_deref_mut() {
                    observe_frame(engine, t);
                    if let Command::Snapshot(k) = cmd {
                        if let Some(ans) = t.answer(*k) {
                            out.push(format!("  {}", confidence_line(t, &ans)));
                        }
                    }
                }
            }
        }
    }
    pipeline
        .flush(engine)
        .map_err(|e| format!("stream flush: {e}"))?;
    if let Some(t) = tracker {
        observe_frame(engine, t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::EngineConfig;
    use aa_graph::generators;

    #[test]
    fn parse_full_language() {
        let text = "\
# demo stream
ae 0 5 2
de 1 2
cw 3 4 9
dv 7
av 1,2,3
step
converge
rebalance
fail 2
chaos 0.25 0.1
snapshot 10
";
        let cmds = parse_stream(text).unwrap();
        assert_eq!(cmds.len(), 11);
        assert_eq!(cmds[0], (2, Command::AddEdge(0, 5, 2)));
        assert_eq!(cmds[4], (6, Command::AddVertex(vec![1, 2, 3])));
        assert_eq!(cmds[8], (10, Command::Fail(2)));
        assert_eq!(cmds[9], (11, Command::Chaos(0.25, 0.1)));
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert!(parse_stream("ae 0").unwrap_err().contains("line 1"));
        assert!(parse_stream("\nxx 1").unwrap_err().contains("line 2"));
        assert!(parse_stream("ae 0 1 2 3").unwrap_err().contains("trailing"));
        assert!(parse_stream("av one,two").unwrap_err().contains("anchor"));
        assert!(parse_stream("chaos 0.5").unwrap_err().contains("p_dup"));
        assert!(parse_stream("chaos -0.1 0").unwrap_err().contains("[0, 1]"));
        assert!(parse_stream("chaos 0.1 1.5")
            .unwrap_err()
            .contains("[0, 1]"));
        assert!(parse_stream("chaos 1.0 0").unwrap_err().contains("below 1"));
    }

    #[test]
    fn parse_quoted_args_and_comment_stripping() {
        // Quoted tokens parse like bare ones, and a `#` outside quotes still
        // starts a comment.
        let cmds = parse_stream("ae \"0\" 5 2 # comment\nsnapshot \"3\"\nav \"1,2\"\n").unwrap();
        assert_eq!(cmds[0], (1, Command::AddEdge(0, 5, 2)));
        assert_eq!(cmds[1], (2, Command::Snapshot(3)));
        assert_eq!(cmds[2], (3, Command::AddVertex(vec![1, 2])));
        // `#` inside quotes belongs to the token: the bad weight is reported
        // instead of the argument being truncated into a phantom comment.
        assert!(parse_stream("ae 0 5 \"2#x\"")
            .unwrap_err()
            .contains("invalid w"));
        // Unterminated quotes and junk after a command are line-numbered errors.
        let err = parse_stream("\nae 0 1 \"2").unwrap_err();
        assert!(
            err.contains("line 2") && err.contains("unterminated"),
            "{err}"
        );
        assert!(parse_stream("snapshot \"5\" junk")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_stream("step 1").unwrap_err().contains("trailing"));
    }

    #[test]
    fn apply_batch_coalesces_and_matches_unbatched_replay() {
        let text = "\
ae 0 30 2
de 0 30      # cancels the add above
cw 1 2 7
cw 1 2 4     # last-wins
av 3,4
dv 5
converge
snapshot 3
";
        let cmds = parse_stream(text).unwrap();
        let build = || {
            // A path graph pins the edge set: (0,30) is absent, (1,2) exists.
            let g = generators::path(40);
            let mut e = AnytimeEngine::new(
                g,
                EngineConfig {
                    num_procs: 3,
                    ..Default::default()
                },
            );
            e.initialize();
            e.run_to_convergence(256);
            e
        };
        // Unbatched replay: one `apply` per command.
        let mut unbatched = build();
        for (_, cmd) in &cmds {
            apply(&mut unbatched, cmd, AdditionStrategy::RoundRobinPs).unwrap();
        }
        unbatched.run_to_convergence(256);
        // Batched replay through the shared ingest path.
        let mut batched = build();
        let mut pipeline = aa_ingest::IngestPipeline::new(aa_ingest::IngestConfig {
            strategy: AdditionStrategy::RoundRobinPs,
            ..Default::default()
        })
        .unwrap();
        let printed = apply_batch(
            &mut batched,
            &mut pipeline,
            &cmds,
            AdditionStrategy::RoundRobinPs,
            None,
        )
        .unwrap();
        batched.run_to_convergence(256);
        assert!(printed.iter().any(|l| l.contains("added vertex 40")));
        // The coalescer absorbed the add/delete pair and one reweight.
        assert!(pipeline.stats().coalesce_ratio() > 0.0);
        // Same final graph, same exact distances.
        let (du, db) = (unbatched.distances_dense(), batched.distances_dense());
        let oracle = aa_graph::algo::apsp_dijkstra(unbatched.graph());
        for v in unbatched.graph().vertices() {
            assert_eq!(du[v as usize], oracle[v as usize]);
            assert_eq!(db[v as usize], oracle[v as usize]);
        }
        assert_eq!(unbatched.graph().edge_count(), batched.graph().edge_count());
    }

    #[test]
    fn apply_batch_keeps_tracker_current_and_snapshot_prints_confidence() {
        let g = generators::barabasi_albert(60, 2, 1, 11);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 3,
                ..Default::default()
            },
        );
        e.initialize();
        e.enable_bound_feed();
        let mut tracker = TopKTracker::new(aa_query::TopKConfig {
            k: 3,
            max_pivots: 8,
        });
        run_observed(&mut e, &mut tracker, 256);
        assert!(tracker.is_exact(), "converged run must resolve the top-k");
        let cmds = parse_stream("snapshot 3\nae 0 30 1\nde 0 1\nconverge\nsnapshot 3\n").unwrap();
        let mut pipeline = aa_ingest::IngestPipeline::new(aa_ingest::IngestConfig {
            strategy: AdditionStrategy::RoundRobinPs,
            ..Default::default()
        })
        .unwrap();
        let printed = apply_batch(
            &mut e,
            &mut pipeline,
            &cmds,
            AdditionStrategy::RoundRobinPs,
            Some(&mut tracker),
        )
        .unwrap();
        let confidence_lines: Vec<&String> = printed
            .iter()
            .filter(|l| l.contains("top-3 confidence"))
            .collect();
        assert_eq!(confidence_lines.len(), 2, "{printed:?}");
        assert!(
            confidence_lines[0].contains("exact"),
            "{confidence_lines:?}"
        );
        // The deletion forced a rebuild and the trailing converge resolved
        // the new generation again.
        assert!(
            confidence_lines[1].contains("exact"),
            "{confidence_lines:?}"
        );
        assert!(tracker.is_exact());
        let ans = tracker.answer(3).unwrap();
        let exact = aa_graph::algo::exact_closeness(e.graph());
        let mut ranked: Vec<(VertexId, f64)> = exact
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0.0)
            .map(|(v, &c)| (v as VertexId, c))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(3);
        assert_eq!(
            ans.ids(),
            ranked.iter().map(|&(v, _)| v).collect::<Vec<_>>()
        );
    }

    #[test]
    fn apply_batch_backs_off_on_throttle_instead_of_shedding() {
        let g = generators::path(40);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 3,
                ..Default::default()
            },
        );
        e.initialize();
        e.run_to_convergence(256);
        // Tiny queue, drain policy that never triggers on its own: without
        // the backoff, pushes 9..12 would hit hard capacity and be shed.
        let mut pipeline = aa_ingest::IngestPipeline::new(aa_ingest::IngestConfig {
            queue_cap: 8,
            high_watermark: 4,
            policy: aa_ingest::DrainPolicy::SizeTriggered(64),
            strategy: AdditionStrategy::RoundRobinPs,
        })
        .unwrap();
        let cmds: Vec<(usize, Command)> = (0..12)
            .map(|i| (i + 1, Command::AddEdge(i as u32, i as u32 + 2, 1)))
            .collect();
        let printed = apply_batch(
            &mut e,
            &mut pipeline,
            &cmds,
            AdditionStrategy::RoundRobinPs,
            None,
        )
        .unwrap();
        let stats = pipeline.stats();
        assert_eq!(stats.shed, 0, "backoff must prevent shedding");
        assert!(stats.throttled >= 1, "the tiny watermark must throttle");
        assert!(
            stats.flushes >= 2,
            "each throttle decision must drain early, not just the final barrier"
        );
        assert!(printed.iter().any(|l| l.contains("backing off")));
        // Nothing was lost: every edge made it into the engine.
        e.run_to_convergence(256);
        for i in 0..12u32 {
            assert!(e.graph().edge_weight(i, i + 2).is_some(), "edge ({i},..)");
        }
    }

    #[test]
    fn apply_stream_end_to_end() {
        let g = generators::barabasi_albert(40, 2, 1, 3);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 3,
                ..Default::default()
            },
        );
        e.initialize();
        let cmds =
            parse_stream("converge\nae 0 20 1\nav 5,6\nstep\nde 0 1\nconverge\nsnapshot 3\n")
                .unwrap();
        let mut printed = Vec::new();
        for (_, cmd) in &cmds {
            printed.extend(apply(&mut e, cmd, AdditionStrategy::RoundRobinPs).unwrap());
        }
        assert!(e.is_converged());
        assert!(printed.iter().any(|l| l.contains("added vertex 40")));
        assert!(printed.iter().any(|l| l.contains("snapshot")));
        // Final state is exact.
        let dense = e.distances_dense();
        let oracle = aa_graph::algo::apsp_dijkstra(e.graph());
        for v in e.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize]);
        }
    }

    #[test]
    fn apply_warns_on_noops() {
        let g = generators::path(5);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 2,
                ..Default::default()
            },
        );
        e.initialize();
        let warn = apply(
            &mut e,
            &Command::DeleteEdge(0, 4),
            AdditionStrategy::RoundRobinPs,
        )
        .unwrap();
        assert!(warn[0].contains("not found"));
        let warn = apply(
            &mut e,
            &Command::DeleteVertex(99),
            AdditionStrategy::RoundRobinPs,
        )
        .unwrap();
        assert!(warn[0].contains("not alive"));
    }

    #[test]
    fn apply_rejects_invalid_commands_without_panicking() {
        let g = generators::path(6);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 2,
                ..Default::default()
            },
        );
        e.initialize();
        let s = AdditionStrategy::RoundRobinPs;
        // Out-of-range crash target used to panic deep inside resilience.rs.
        let err = apply(&mut e, &Command::Fail(999_999), s).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // Edge commands touching dead or out-of-range vertices.
        assert!(apply(&mut e, &Command::AddEdge(0, 500, 1), s).is_err());
        assert!(apply(&mut e, &Command::DeleteEdge(700, 0), s).is_err());
        assert!(apply(&mut e, &Command::ChangeWeight(0, 99, 3), s).is_err());
        // Zero weights and self-loops are rejected before the graph asserts.
        assert!(apply(&mut e, &Command::AddEdge(0, 3, 0), s).is_err());
        assert!(apply(&mut e, &Command::ChangeWeight(0, 1, 0), s).is_err());
        assert!(apply(&mut e, &Command::AddEdge(2, 2, 1), s).is_err());
        // The engine is still usable afterwards.
        e.run_to_convergence(64);
        assert!(e.is_converged());
    }

    #[test]
    fn apply_chaos_toggles_fault_injection() {
        let g = generators::barabasi_albert(30, 2, 1, 5);
        let mut e = AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: 3,
                ..Default::default()
            },
        );
        e.initialize();
        let s = AdditionStrategy::RoundRobinPs;
        let msg = apply(&mut e, &Command::Chaos(0.3, 0.1), s).unwrap();
        assert!(msg[0].contains("chaos enabled"));
        apply(&mut e, &Command::Converge, s).unwrap();
        assert!(e.is_converged());
        let totals = e.cluster().ledger().totals();
        assert!(totals.dropped_messages > 0, "chaos should drop something");
        let msg = apply(&mut e, &Command::Chaos(0.0, 0.0), s).unwrap();
        assert!(msg[0].contains("chaos disabled"));
        // Exactness survives the lossy phase.
        let dense = e.distances_dense();
        let oracle = aa_graph::algo::apsp_dijkstra(e.graph());
        for v in e.graph().vertices() {
            assert_eq!(dense[v as usize], oracle[v as usize]);
        }
    }
}
