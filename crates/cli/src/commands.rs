//! Subcommand implementations for the `aa` binary.

use crate::{load_graph, save_graph, Format};
use aa_core::{
    AdditionStrategy, AnytimeEngine, EngineConfig, FaultConfig, ProcFaultConfig, SupervisorConfig,
};
use aa_durable::atomic_write_file;
use aa_partition::{
    quality, BfsGrowPartitioner, HashPartitioner, MultilevelKWay, Partitioner,
    RoundRobinPartitioner,
};
use aa_runtime::{threads_available, BackendKind};
use std::path::{Path, PathBuf};

/// Validates a `--backend`/`--threads` combination up front, so a
/// misconfiguration fails with a clear CLI error instead of a
/// construction-time panic deep inside the engine. Two loud failure modes:
/// the simulator is strictly sequential (the vendored rayon stub has no real
/// thread pool, so `--threads N > 1` would silently run on one core), and
/// the threads backend needs the host to actually spawn OS threads.
pub fn validate_backend(backend: BackendKind, threads: usize) -> Result<(), String> {
    match backend {
        BackendKind::Sim if threads > 1 => Err(format!(
            "--threads {threads} is incompatible with --backend sim: the simulator is \
             single-threaded and the vendored rayon stub has no real thread pool, so the run \
             would silently execute sequentially; use --backend threads for real parallelism"
        )),
        BackendKind::Threads if !threads_available() => Err(
            "--backend threads: this host cannot spawn OS threads; use --backend sim".to_string(),
        ),
        _ => Ok(()),
    }
}

/// Options shared by the analysis subcommands.
#[derive(Debug, Clone)]
pub struct AnalyzeOpts {
    /// Graph file.
    pub input: PathBuf,
    /// Explicit input format (otherwise guessed from the extension).
    pub format: Option<Format>,
    /// Virtual processors.
    pub procs: usize,
    /// Ranking size to print.
    pub top: usize,
    /// Run the anytime top-k tracker alongside the computation: sound
    /// closeness bounds observed every superstep, bound-based candidate
    /// pruning, and an exact/anytime confidence in the report.
    pub top_k: Option<usize>,
    /// Vertex-addition strategy for `av` stream commands.
    pub strategy: AdditionStrategy,
    /// Optional update stream file to apply after the static analysis.
    pub stream: Option<PathBuf>,
    /// Optional checkpoint file to write at the end.
    pub save_checkpoint: Option<PathBuf>,
    /// Optional checkpoint file to resume from (skips loading `input`).
    pub resume: Option<PathBuf>,
    /// Extra measures to report alongside closeness.
    pub measures: Vec<Measure>,
    /// Optional CSV file to dump the communication trace to.
    pub trace: Option<PathBuf>,
    /// Probability of dropping each recombination transfer (lossy links).
    pub drop_rate: f64,
    /// Scheduled fail-stop crashes: `(step, rank)` pairs.
    pub crash_at: Vec<(u64, usize)>,
    /// Injected stragglers: `(rank, scale)` pairs (compute runs `scale`× slower).
    pub stragglers: Vec<(usize, f64)>,
    /// Override the heartbeat failure-detector timeout (RC steps of silence).
    pub detector_timeout: Option<u64>,
    /// Take per-rank checkpoints every N RC steps (0 disables them).
    pub checkpoint_interval: Option<usize>,
    /// Optional JSON file to dump the metrics registry to.
    pub metrics_out: Option<PathBuf>,
    /// Optional JSONL file to dump anytime progress samples to (enables the
    /// progress probe, which computes an exact oracle — expensive on large
    /// graphs).
    pub progress_out: Option<PathBuf>,
    /// Optional JSONL file to dump phase spans to.
    pub spans_out: Option<PathBuf>,
    /// Execution backend (`--backend sim|threads`).
    pub backend: BackendKind,
    /// Worker-thread cap for the threads backend (`--threads`, 0 = one per rank).
    pub threads: usize,
}

/// Additional measures the `analyze` subcommand can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Distributed degree centrality.
    Degree,
    /// Distributed eigenvector centrality.
    Eigenvector,
    /// Distributed PageRank (d = 0.85).
    Pagerank,
    /// Distributed maximal clique enumeration (summary only).
    Cliques,
}

impl Measure {
    /// Parses a measure name.
    pub fn parse(name: &str) -> Result<Measure, String> {
        match name.to_ascii_lowercase().as_str() {
            "degree" => Ok(Measure::Degree),
            "eigenvector" | "eigen" => Ok(Measure::Eigenvector),
            "pagerank" | "pr" => Ok(Measure::Pagerank),
            "cliques" => Ok(Measure::Cliques),
            other => Err(format!(
                "unknown measure {other:?} (degree|eigenvector|pagerank|cliques)"
            )),
        }
    }
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            input: PathBuf::new(),
            format: None,
            procs: 8,
            top: 10,
            top_k: None,
            strategy: AdditionStrategy::CutEdgePs,
            stream: None,
            save_checkpoint: None,
            resume: None,
            measures: Vec::new(),
            trace: None,
            drop_rate: 0.0,
            crash_at: Vec::new(),
            stragglers: Vec::new(),
            detector_timeout: None,
            checkpoint_interval: None,
            metrics_out: None,
            progress_out: None,
            spans_out: None,
            backend: BackendKind::Sim,
            threads: 0,
        }
    }
}

/// `aa analyze`: run the pipeline (or resume a checkpoint), apply an optional
/// update stream, print the ranking and cost ledger. Returns the printed
/// report (also printed to stdout by the binary).
pub fn analyze(opts: &AnalyzeOpts) -> Result<String, String> {
    if !(0.0..1.0).contains(&opts.drop_rate) {
        return Err(format!(
            "drop rate {} must lie in [0, 1) — a network that drops everything can never converge",
            opts.drop_rate
        ));
    }
    for &(step, rank) in &opts.crash_at {
        if rank >= opts.procs {
            return Err(format!(
                "--crash-at {step}:{rank}: rank {rank} out of range (cluster has {} processors)",
                opts.procs
            ));
        }
    }
    for &(rank, scale) in &opts.stragglers {
        if rank >= opts.procs {
            return Err(format!(
                "--straggler {rank}:{scale}: rank {rank} out of range (cluster has {} processors)",
                opts.procs
            ));
        }
        if scale <= 0.0 || scale.is_nan() {
            return Err(format!(
                "--straggler {rank}:{scale}: scale must be positive"
            ));
        }
    }
    let fault = (opts.drop_rate > 0.0).then(|| FaultConfig {
        p_drop: opts.drop_rate,
        ..Default::default()
    });
    let proc_fault =
        (!opts.crash_at.is_empty() || !opts.stragglers.is_empty()).then(|| ProcFaultConfig {
            crashes: opts.crash_at.clone(),
            stragglers: opts.stragglers.clone(),
        });
    if opts.detector_timeout == Some(0) {
        return Err("--detector-timeout must be at least 1 RC step".to_string());
    }
    validate_backend(opts.backend, opts.threads)?;
    let supervision = SupervisorConfig {
        detector_timeout: opts
            .detector_timeout
            .unwrap_or(SupervisorConfig::default().detector_timeout),
        checkpoint_interval: opts
            .checkpoint_interval
            .unwrap_or(SupervisorConfig::default().checkpoint_interval),
        ..Default::default()
    };
    let config = EngineConfig {
        num_procs: opts.procs,
        fault,
        proc_fault,
        supervision,
        backend: opts.backend,
        threads: opts.threads,
        ..Default::default()
    };
    let mut engine = if let Some(ckpt) = &opts.resume {
        let mut file = std::fs::File::open(ckpt)
            .map_err(|e| format!("cannot open checkpoint {}: {e}", ckpt.display()))?;
        AnytimeEngine::restore_checkpoint(&mut file, config)
            .map_err(|e| format!("cannot restore checkpoint: {e}"))?
    } else {
        let graph = load_graph(&opts.input, opts.format)?;
        let mut e = AnytimeEngine::new(graph, config);
        e.initialize();
        e
    };

    if opts.trace.is_some() {
        engine.cluster_mut().enable_trace();
    }
    if opts.progress_out.is_some() {
        engine.enable_progress_probe();
    }
    if opts.top_k == Some(0) {
        return Err("--top-k must be at least 1".to_string());
    }
    let mut tracker = opts.top_k.map(|k| {
        engine.enable_bound_feed();
        aa_query::TopKTracker::new(aa_query::TopKConfig {
            k,
            max_pivots: 16.max(k),
        })
    });
    let mut out = String::new();
    let budget = 16 * opts.procs + 64;
    let steps = match tracker.as_mut() {
        Some(t) => crate::stream::run_observed(&mut engine, t, budget),
        None => engine.run_to_convergence(budget),
    };
    out.push_str(&format!(
        "graph: {} vertices, {} edges — converged in {steps} RC steps\n",
        engine.graph().vertex_count(),
        engine.graph().edge_count()
    ));

    if let Some(stream_path) = &opts.stream {
        let text = std::fs::read_to_string(stream_path)
            .map_err(|e| format!("cannot read stream {}: {e}", stream_path.display()))?;
        let cmds = crate::stream::parse_stream(&text)?;
        out.push_str(&format!("applying {} stream commands…\n", cmds.len()));
        // Replay goes through the same ingest path as `aa stream`; a batch
        // target of 1 keeps per-command semantics (every op flushes
        // immediately, so warnings and effects land in command order).
        let mut pipeline = aa_ingest::IngestPipeline::new(aa_ingest::IngestConfig {
            policy: aa_ingest::DrainPolicy::SizeTriggered(1),
            strategy: opts.strategy,
            ..Default::default()
        })?;
        let lines = crate::stream::apply_batch(
            &mut engine,
            &mut pipeline,
            &cmds,
            opts.strategy,
            tracker.as_mut(),
        )?;
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        match tracker.as_mut() {
            Some(t) => {
                crate::stream::run_observed(&mut engine, t, budget);
            }
            None => {
                engine.run_to_convergence(budget);
            }
        }
    }

    let snap = engine.snapshot();
    out.push_str(&format!(
        "\ntop-{} closeness (cluster time {:.1} ms over {} RC steps):\n",
        opts.top,
        snap.makespan_us / 1000.0,
        engine.rc_steps()
    ));
    for (v, c) in snap.top_k(opts.top) {
        out.push_str(&format!("  vertex {v:>8}  closeness {c:.6e}\n"));
    }
    if let Some(t) = &tracker {
        let k = t.config().k;
        if let Some(ans) = t.answer(k) {
            out.push_str(&format!(
                "\nanytime top-{k} ({} pivots, {:.1}% of non-member candidates pruned):\n",
                t.pivots().len(),
                t.pruned_fraction() * 100.0
            ));
            for (v, c) in &ans.members {
                out.push_str(&format!("  vertex {v:>8}  closeness {c:.6e}\n"));
            }
            out.push_str(&format!("  {}\n", crate::stream::confidence_line(t, &ans)));
        }
    }
    for measure in &opts.measures {
        match measure {
            Measure::Degree => {
                out.push_str(&format!("\ntop-{} degree centrality:\n", opts.top));
                push_top(&mut out, &engine.degree_centrality(), opts.top);
            }
            Measure::Eigenvector => {
                out.push_str(&format!("\ntop-{} eigenvector centrality:\n", opts.top));
                push_top(
                    &mut out,
                    &engine.eigenvector_centrality(300, 1e-10),
                    opts.top,
                );
            }
            Measure::Pagerank => {
                out.push_str(&format!("\ntop-{} pagerank:\n", opts.top));
                push_top(&mut out, &engine.pagerank(0.85, 200, 1e-12), opts.top);
            }
            Measure::Cliques => {
                let cliques = engine.maximal_cliques();
                let largest = cliques.iter().map(|c| c.len()).max().unwrap_or(0);
                out.push_str(&format!(
                    "\nmaximal cliques: {} found, largest size {largest}\n",
                    cliques.len()
                ));
            }
        }
    }
    let health = engine.health_report();
    if !engine.recovery_log().is_empty()
        || !health.stragglers.is_empty()
        || !health.down_ranks.is_empty()
    {
        out.push_str("\ncluster health:\n");
        for ev in engine.recovery_log() {
            out.push_str(&format!(
                "  RC{}: rank {} recovered via {} ({} rows restored, {} reseeded, {} resent)\n",
                ev.step,
                ev.report.rank,
                ev.report.method,
                ev.report.restored_rows,
                ev.report.reseeded_rows,
                ev.report.resent_rows
            ));
        }
        for &rank in &health.stragglers {
            out.push_str(&format!("  rank {rank} is straggling\n"));
        }
        for &rank in &health.down_ranks {
            out.push_str(&format!("  rank {rank} is DOWN (results may be stale)\n"));
        }
    }

    out.push_str(&format!("\n{}", engine.cluster().ledger().report()));
    let totals = engine.cluster().ledger().totals();
    if totals.dropped_messages > 0 || totals.dup_messages > 0 {
        out.push_str(&format!(
            "lossy links: {} transfers dropped ({} B), {} duplicated ({} B); all rows acknowledged\n",
            totals.dropped_messages, totals.dropped_bytes, totals.dup_messages, totals.dup_bytes
        ));
    }

    if let Some(path) = &opts.trace {
        use std::io::Write;
        let events = engine.cluster_mut().take_trace();
        // aa-lint: allow(AA09, streamed diagnostic trace — overwritten on every run and never read back by recovery; a torn file cannot corrupt a restart)
        let raw = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let mut file = std::io::BufWriter::new(raw);
        writeln!(file, "src,dst,bytes,phase,makespan_us,kind")
            .map_err(|e| format!("trace write failed: {e}"))?;
        for ev in &events {
            writeln!(
                file,
                "{},{},{},{},{:.3},{}",
                ev.src, ev.dst, ev.bytes, ev.phase, ev.makespan_us, ev.kind
            )
            .map_err(|e| format!("trace write failed: {e}"))?;
        }
        out.push_str(&format!(
            "communication trace ({} events) written to {}\n",
            events.len(),
            path.display()
        ));
    }

    if let Some(path) = &opts.metrics_out {
        let mut registry = engine.metrics_registry();
        if let Some(t) = &tracker {
            registry.merge(&t.metrics_registry());
        }
        atomic_write_file(path, registry.to_json().as_bytes())
            .map_err(|e| format!("cannot write metrics {}: {e}", path.display()))?;
        out.push_str(&format!("metrics written to {}\n", path.display()));
    }
    if let Some(path) = &opts.progress_out {
        let samples = engine.progress_samples();
        atomic_write_file(path, aa_core::encode_jsonl(samples).as_bytes())
            .map_err(|e| format!("cannot write progress {}: {e}", path.display()))?;
        out.push_str(&format!(
            "progress probe ({} samples) written to {}\n",
            samples.len(),
            path.display()
        ));
    }
    if let Some(path) = &opts.spans_out {
        let spans = engine.spans();
        atomic_write_file(path, spans.to_jsonl().as_bytes())
            .map_err(|e| format!("cannot write spans {}: {e}", path.display()))?;
        out.push_str(&format!(
            "phase spans ({} records) written to {}\n",
            spans.len(),
            path.display()
        ));
    }
    if let Some(path) = &opts.save_checkpoint {
        // Buffer then publish atomically: a crash mid-save must never leave
        // a torn checkpoint where a good one (or nothing) should be.
        let mut bytes = Vec::new();
        engine
            .save_checkpoint(&mut bytes)
            .map_err(|e| format!("cannot encode checkpoint: {e}"))?;
        atomic_write_file(path, &bytes)
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
        out.push_str(&format!("checkpoint written to {}\n", path.display()));
    }
    Ok(out)
}

/// Options for the `aa stream` subcommand.
#[derive(Debug, Clone)]
pub struct StreamOpts {
    /// Graph file.
    pub input: PathBuf,
    /// Explicit input format (otherwise guessed from the extension).
    pub format: Option<Format>,
    /// Update stream file to serve.
    pub updates: PathBuf,
    /// Virtual processors.
    pub procs: usize,
    /// Ranking size to print after the stream drains.
    pub top: usize,
    /// Keep an anytime top-k tracker current across batched ingest flushes
    /// and report its confidence alongside the final ranking.
    pub top_k: Option<usize>,
    /// Vertex-addition strategy for flushed vertex batches.
    pub strategy: AdditionStrategy,
    /// Batch target for the size-triggered drain policy (`--batch`).
    pub batch: usize,
    /// Hard ingest queue capacity (`--queue-cap`); ops beyond it are shed.
    pub queue_cap: usize,
    /// Drain policy spec (`--drain-policy size|steps:K|adaptive`).
    pub drain_policy: String,
    /// Probability of dropping each recombination transfer (lossy links).
    pub drop_rate: f64,
    /// Optional JSON file for the merged engine + ingest metrics registry.
    pub metrics_out: Option<PathBuf>,
    /// Execution backend (`--backend sim|threads`).
    pub backend: BackendKind,
    /// Worker-thread cap for the threads backend (`--threads`, 0 = one per rank).
    pub threads: usize,
}

impl Default for StreamOpts {
    fn default() -> Self {
        StreamOpts {
            input: PathBuf::new(),
            format: None,
            updates: PathBuf::new(),
            procs: 8,
            top: 10,
            top_k: None,
            strategy: AdditionStrategy::CutEdgePs,
            batch: 64,
            queue_cap: 4096,
            drain_policy: "size".to_string(),
            drop_rate: 0.0,
            metrics_out: None,
            backend: BackendKind::Sim,
            threads: 0,
        }
    }
}

/// Parses a `--drain-policy` spec. `size` drains at the `--batch` target,
/// `steps:K` drains every K RC steps (driven by `step`/`converge` commands
/// in the stream), `adaptive` drains when outstanding-row pressure is zero,
/// forced at 4 batches of staleness.
pub fn parse_drain_policy(
    spec: &str,
    batch: usize,
    queue_cap: usize,
) -> Result<aa_ingest::DrainPolicy, String> {
    let lower = spec.to_ascii_lowercase();
    if lower == "size" {
        return Ok(aa_ingest::DrainPolicy::SizeTriggered(batch));
    }
    if let Some(k) = lower.strip_prefix("steps:") {
        return k
            .parse()
            .ok()
            .filter(|&k: &usize| k > 0)
            .map(aa_ingest::DrainPolicy::RcStepInterleaved)
            .ok_or_else(|| format!("invalid --drain-policy {spec:?} (expected steps:K, K >= 1)"));
    }
    if lower == "adaptive" {
        return Ok(aa_ingest::DrainPolicy::Adaptive {
            max_outstanding: 0,
            max_pending: (4 * batch.max(1)).min(queue_cap),
        });
    }
    Err(format!(
        "unknown --drain-policy {spec:?} (size|steps:K|adaptive)"
    ))
}

/// `aa stream`: serve an update stream through the ingestion pipeline —
/// bounded admission queue, coalescing buffer, policy-driven batch flushes —
/// then report the post-convergence ranking plus ingest statistics.
pub fn stream_serve(opts: &StreamOpts) -> Result<String, String> {
    if !(0.0..1.0).contains(&opts.drop_rate) {
        return Err(format!(
            "drop rate {} must lie in [0, 1) — a network that drops everything can never converge",
            opts.drop_rate
        ));
    }
    let policy = parse_drain_policy(&opts.drain_policy, opts.batch, opts.queue_cap)?;
    validate_backend(opts.backend, opts.threads)?;
    let fault = (opts.drop_rate > 0.0).then(|| FaultConfig {
        p_drop: opts.drop_rate,
        ..Default::default()
    });
    let config = EngineConfig {
        num_procs: opts.procs,
        fault,
        backend: opts.backend,
        threads: opts.threads,
        ..Default::default()
    };
    if opts.top_k == Some(0) {
        return Err("--top-k must be at least 1".to_string());
    }
    let graph = load_graph(&opts.input, opts.format)?;
    let mut engine = AnytimeEngine::new(graph, config);
    engine.initialize();
    let mut tracker = opts.top_k.map(|k| {
        engine.enable_bound_feed();
        aa_query::TopKTracker::new(aa_query::TopKConfig {
            k,
            max_pivots: 16.max(k),
        })
    });
    let budget = 16 * opts.procs + 64;
    let steps = match tracker.as_mut() {
        Some(t) => crate::stream::run_observed(&mut engine, t, budget),
        None => engine.run_to_convergence(budget),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "graph: {} vertices, {} edges — converged in {steps} RC steps\n",
        engine.graph().vertex_count(),
        engine.graph().edge_count()
    ));

    let text = std::fs::read_to_string(&opts.updates)
        .map_err(|e| format!("cannot read stream {}: {e}", opts.updates.display()))?;
    let cmds = crate::stream::parse_stream(&text)?;
    let mut pipeline = aa_ingest::IngestPipeline::new(aa_ingest::IngestConfig {
        queue_cap: opts.queue_cap,
        high_watermark: opts.queue_cap - opts.queue_cap / 4,
        policy,
        strategy: opts.strategy,
    })?;
    out.push_str(&format!(
        "serving {} stream commands (drain {policy}, queue cap {})…\n",
        cmds.len(),
        opts.queue_cap
    ));
    let lines = crate::stream::apply_batch(
        &mut engine,
        &mut pipeline,
        &cmds,
        opts.strategy,
        tracker.as_mut(),
    )?;
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    match tracker.as_mut() {
        Some(t) => {
            crate::stream::run_observed(&mut engine, t, budget);
        }
        None => {
            engine.run_to_convergence(budget);
        }
    }

    let stats = pipeline.stats();
    out.push_str(&format!(
        "ingest: {} accepted, {} throttled, {} shed, {} no-ops, {} rejected\n",
        stats.accepted, stats.throttled, stats.shed, stats.noops, stats.rejected
    ));
    out.push_str(&format!(
        "coalescing: {} raw ops → {} engine actions in {} flushes (ratio {:.2})\n",
        stats.raw_in,
        stats.actions_out,
        stats.flushes,
        stats.coalesce_ratio()
    ));
    let snap = engine.snapshot();
    out.push_str(&format!(
        "\ntop-{} closeness (cluster time {:.1} ms over {} RC steps):\n",
        opts.top,
        snap.makespan_us / 1000.0,
        engine.rc_steps()
    ));
    for (v, c) in snap.top_k(opts.top) {
        out.push_str(&format!("  vertex {v:>8}  closeness {c:.6e}\n"));
    }
    if let Some(t) = &tracker {
        let k = t.config().k;
        if let Some(ans) = t.answer(k) {
            out.push_str(&format!(
                "\nanytime top-{k} ({} pivots, {:.1}% of non-member candidates pruned):\n",
                t.pivots().len(),
                t.pruned_fraction() * 100.0
            ));
            for (v, c) in &ans.members {
                out.push_str(&format!("  vertex {v:>8}  closeness {c:.6e}\n"));
            }
            out.push_str(&format!("  {}\n", crate::stream::confidence_line(t, &ans)));
        }
    }
    if let Some(path) = &opts.metrics_out {
        let mut registry = engine.metrics_registry();
        registry.merge(&pipeline.metrics_registry());
        if let Some(t) = &tracker {
            registry.merge(&t.metrics_registry());
        }
        atomic_write_file(path, registry.to_json().as_bytes())
            .map_err(|e| format!("cannot write metrics {}: {e}", path.display()))?;
        out.push_str(&format!("metrics written to {}\n", path.display()));
    }
    Ok(out)
}

/// Options for the `aa serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Graph file.
    pub input: PathBuf,
    /// Explicit input format (otherwise guessed from the extension).
    pub format: Option<Format>,
    /// Virtual processors.
    pub procs: usize,
    /// Ranking size to print when the run drains.
    pub top: usize,
    /// Serving turns to drive with offered load.
    pub turns: usize,
    /// Requests offered per turn.
    pub offered: usize,
    /// Fraction of offered requests that are reads.
    pub read_fraction: f64,
    /// Fraction of reads that are top-k queries (the rest are single-vertex
    /// lookups).
    pub topk_read_mix: f64,
    /// Read deadline relative to submission (virtual µs).
    pub deadline_us: f64,
    /// Workload seed.
    pub seed: u64,
    /// Probability of dropping each recombination transfer (lossy links).
    pub drop_rate: f64,
    /// Scheduled fail-stop crashes: `(step, rank)` pairs.
    pub crash_at: Vec<(u64, usize)>,
    /// Injected stragglers: `(rank, scale)` pairs.
    pub stragglers: Vec<(usize, f64)>,
    /// Optional JSON file for the merged engine + ingest + serve metrics.
    pub metrics_out: Option<PathBuf>,
    /// Durability directory: recover from it on startup, WAL every accepted
    /// write, checkpoint periodically and on shutdown. `None` = in-memory.
    pub data_dir: Option<PathBuf>,
    /// Take a durable checkpoint every N turns (0 = only on shutdown).
    pub checkpoint_every: usize,
    /// After shutdown, re-run recovery against the data dir and verify the
    /// restarted engine reproduces the served ranking exactly.
    pub verify_recovery: bool,
    /// Execution backend (`--backend sim|threads`).
    pub backend: BackendKind,
    /// Worker-thread cap for the threads backend (`--threads`, 0 = one per rank).
    pub threads: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            input: PathBuf::new(),
            format: None,
            procs: 8,
            top: 10,
            turns: 64,
            offered: 32,
            read_fraction: 0.8,
            topk_read_mix: 0.7,
            deadline_us: 5_000_000.0,
            seed: 42,
            drop_rate: 0.0,
            crash_at: Vec::new(),
            stragglers: Vec::new(),
            metrics_out: None,
            data_dir: None,
            checkpoint_every: 16,
            verify_recovery: false,
            backend: BackendKind::Sim,
            threads: 0,
        }
    }
}

/// `aa serve`: run the resident server under a deterministic mixed
/// read/write workload — snapshot-isolated reads, admission-controlled
/// writes, degraded-mode service under injected faults — then report
/// latency quantiles, outcome totals, and the final ranking.
pub fn serve_cmd(opts: &ServeOpts) -> Result<String, String> {
    if !(0.0..1.0).contains(&opts.drop_rate) {
        return Err(format!(
            "drop rate {} must lie in [0, 1) — a network that drops everything can never converge",
            opts.drop_rate
        ));
    }
    if !(0.0..=1.0).contains(&opts.read_fraction) {
        return Err(format!(
            "read fraction {} must lie in [0, 1]",
            opts.read_fraction
        ));
    }
    if !(0.0..=1.0).contains(&opts.topk_read_mix) {
        return Err(format!(
            "top-k read mix {} must lie in [0, 1]",
            opts.topk_read_mix
        ));
    }
    for &(step, rank) in &opts.crash_at {
        if rank >= opts.procs {
            return Err(format!(
                "--crash-at {step}:{rank}: rank {rank} out of range (cluster has {} processors)",
                opts.procs
            ));
        }
    }
    for &(rank, scale) in &opts.stragglers {
        if rank >= opts.procs {
            return Err(format!(
                "--straggler {rank}:{scale}: rank {rank} out of range (cluster has {} processors)",
                opts.procs
            ));
        }
        if scale <= 0.0 || scale.is_nan() {
            return Err(format!(
                "--straggler {rank}:{scale}: scale must be positive"
            ));
        }
    }
    let fault = (opts.drop_rate > 0.0).then(|| FaultConfig {
        p_drop: opts.drop_rate,
        ..Default::default()
    });
    let proc_fault =
        (!opts.crash_at.is_empty() || !opts.stragglers.is_empty()).then(|| ProcFaultConfig {
            crashes: opts.crash_at.clone(),
            stragglers: opts.stragglers.clone(),
        });
    if opts.verify_recovery && opts.data_dir.is_none() {
        return Err("--verify-recovery requires --data-dir".to_string());
    }
    validate_backend(opts.backend, opts.threads)?;
    let config = EngineConfig {
        num_procs: opts.procs,
        fault,
        proc_fault,
        backend: opts.backend,
        threads: opts.threads,
        ..Default::default()
    };
    let serve_config = aa_serve::ServeConfig {
        default_deadline_us: opts.deadline_us,
        ..Default::default()
    };
    let graph = load_graph(&opts.input, opts.format)?;
    let mut engine = AnytimeEngine::new(graph, config.clone());
    engine.initialize();
    let mut out = String::new();
    let mut recovery_metrics = None;
    let mut server = if let Some(dir) = &opts.data_dir {
        // Recover whatever a previous (possibly killed) run left behind,
        // then reopen the WAL at the recovered sequence.
        let t0 = std::time::Instant::now();
        let mut storage = aa_durable::DiskStorage::open(dir)
            .map_err(|e| format!("cannot open data dir {}: {e}", dir.display()))?;
        let recovered = aa_durable::recover(&mut storage, engine, serve_config.ingest)?;
        let r = &recovered.report;
        out.push_str(&format!(
            "recovery: checkpoint seq {} ({}), {} records replayed, {} uncommitted dropped, \
             {} frames quarantined ({} B), next seq {}\n",
            r.checkpoint_seq,
            if r.used_checkpoint {
                "loaded"
            } else {
                "none — cold start"
            },
            r.records_replayed,
            r.records_uncommitted,
            r.frames_quarantined,
            r.bytes_quarantined,
            recovered.next_seq
        ));
        for note in &r.notes {
            out.push_str(&format!("  recovery note: {note}\n"));
        }
        let mut metrics = recovered.metrics;
        metrics.set_help(
            "aa_recovery_duration_us",
            "Wall-clock duration of the last startup recovery",
        );
        metrics.set_gauge(
            "aa_recovery_duration_us",
            &[],
            t0.elapsed().as_micros() as f64,
        );
        recovery_metrics = Some(metrics);
        let log = aa_durable::DurableLog::open(
            &mut storage,
            recovered.next_seq,
            aa_durable::DurabilityConfig {
                checkpoint_every_turns: opts.checkpoint_every,
                ..Default::default()
            },
        )
        .map_err(|e| format!("cannot open WAL in {}: {e}", dir.display()))?;
        let mut server = aa_serve::Server::new(recovered.engine, serve_config)?;
        server.attach_durability(Box::new(storage), log);
        server
    } else {
        aa_serve::Server::new(engine, serve_config)?
    };
    let mut gen = aa_serve::LoadGen::new(aa_serve::WorkloadConfig {
        seed: opts.seed,
        offered_per_turn: opts.offered,
        read_fraction: opts.read_fraction,
        topk_read_mix: opts.topk_read_mix,
        top_k: opts.top,
    });

    out.push_str(&format!(
        "graph: {} vertices, {} edges — serving {} turns × {} offered ({}% reads)\n",
        server.engine().graph().vertex_count(),
        server.engine().graph().edge_count(),
        opts.turns,
        opts.offered,
        (opts.read_fraction * 100.0).round()
    ));
    let mut degraded_turns = 0usize;
    let mut topk_exact = 0u64;
    let mut topk_anytime = 0u64;
    let mut count_topk = |outcomes: &[aa_serve::ReadOutcome]| {
        for o in outcomes {
            if let aa_serve::ReadOutcome::Served {
                value: aa_serve::ReadValue::TopK(ans),
                ..
            } = o
            {
                if ans.is_exact() {
                    topk_exact += 1;
                } else {
                    topk_anytime += 1;
                }
            }
        }
    };
    for _ in 0..opts.turns {
        for op in gen.turn_ops(server.engine()) {
            match op {
                aa_serve::ClientOp::Read(kind) => {
                    server.submit_read(kind);
                }
                aa_serve::ClientOp::Write(op) => {
                    server.submit_write(op);
                }
            }
        }
        let report = server.turn()?;
        count_topk(&report.served);
        if report.mode == aa_serve::ServeMode::Degraded {
            degraded_turns += 1;
        }
    }
    // Resolve everything still queued; nothing may hang. A durable server
    // additionally commits stragglers and takes a final covering checkpoint.
    let drain_turns = 16 * opts.procs + 256;
    let final_ckpt = if server.is_durable() {
        let (outcomes, seq) = server.shutdown(drain_turns)?;
        count_topk(&outcomes);
        seq
    } else {
        let outcomes = server.drain(drain_turns)?;
        count_topk(&outcomes);
        None
    };

    let stats = server.stats();
    out.push_str(&format!(
        "reads:  {} submitted, {} served, {} throttled, {} shed (capacity {}, deadline {})\n",
        stats.reads_submitted,
        stats.reads_served,
        stats.reads_throttled,
        stats.reads_shed_capacity + stats.reads_shed_deadline,
        stats.reads_shed_capacity,
        stats.reads_shed_deadline
    ));
    if topk_exact + topk_anytime > 0 {
        out.push_str(&format!(
            "top-k reads: {topk_exact} exact, {topk_anytime} anytime ({} resident pivots)\n",
            server.topk_tracker().pivots().len()
        ));
    }
    out.push_str(&format!(
        "writes: {} submitted, {} accepted, {} throttled, {} shed (queue {}, budget {}), {} rejected\n",
        stats.writes_submitted,
        stats.writes_accepted,
        stats.writes_throttled,
        stats.writes_shed_queue + stats.writes_shed_budget,
        stats.writes_shed_queue,
        stats.writes_shed_budget,
        stats.writes_rejected
    ));
    if server.is_durable() {
        out.push_str(&format!(
            "durability: {} logged, {} aborted, {} commit errors; committed seq {}, \
             {} checkpoints (final covers {})\n",
            stats.writes_logged,
            stats.writes_aborted,
            stats.wal_commit_errors,
            server.durable_committed_seq().unwrap_or(0),
            stats.checkpoints_taken,
            final_ckpt.map_or("none".to_string(), |s| s.to_string())
        ));
    }
    if let Some((p50, p99)) = server.latency_quantiles() {
        out.push_str(&format!(
            "read latency: p50 {:.1} µs, p99 {:.1} µs (virtual); shed rate {:.4}\n",
            p50,
            p99,
            stats.read_shed_rate()
        ));
    }
    out.push_str(&format!(
        "mode: {} degraded turns over {} total; {} degraded entries; {} recoveries\n",
        degraded_turns,
        stats.turns,
        stats.degraded_entries,
        server.engine().recovery_log().len()
    ));
    let frame = server.frame();
    out.push_str(&format!(
        "final frame: epoch {}, fresh {}, quiescent rows {:.2}, bound {:.1}\n",
        frame.meta.epoch,
        frame.meta.fresh,
        frame.meta.quiescent_row_fraction,
        frame.meta.max_overestimate_bound
    ));
    out.push_str(&format!("\ntop-{} closeness:\n", opts.top));
    for (v, c) in frame.snapshot.top_k(opts.top) {
        out.push_str(&format!("  vertex {v:>8}  closeness {c:.6e}\n"));
    }
    if opts.verify_recovery {
        let dir = opts
            .data_dir
            .as_ref()
            .ok_or("--verify-recovery requires --data-dir")?;
        // Simulated restart: recover a fresh engine from disk alone and
        // check it reproduces the ranking the live server ended on.
        let graph = load_graph(&opts.input, opts.format)?;
        let mut base = AnytimeEngine::new(graph, config);
        base.initialize();
        let mut storage = aa_durable::DiskStorage::open(dir)
            .map_err(|e| format!("cannot reopen data dir {}: {e}", dir.display()))?;
        let recovered = aa_durable::recover(&mut storage, base, server.config().ingest)?;
        let mut eng = recovered.engine;
        eng.run_to_convergence(16 * opts.procs + 256);
        let got = eng.snapshot();
        let max_diff = frame
            .snapshot
            .closeness
            .iter()
            .zip(got.closeness.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        if frame.snapshot.closeness.len() != got.closeness.len() || max_diff > 1e-9 {
            return Err(format!(
                "recovery verification FAILED: restarted engine diverges (max |Δ| {max_diff:.3e}, \
                 {} vs {} vertices)",
                frame.snapshot.closeness.len(),
                got.closeness.len()
            ));
        }
        out.push_str(&format!(
            "recovery verified: restart from {} reproduces the served ranking (max |Δ| {max_diff:.3e})\n",
            dir.display()
        ));
    }
    if let Some(path) = &opts.metrics_out {
        let mut registry = server.metrics_registry();
        if let Some(rm) = &recovery_metrics {
            registry.merge(rm);
        }
        atomic_write_file(path, registry.to_json().as_bytes())
            .map_err(|e| format!("cannot write metrics {}: {e}", path.display()))?;
        out.push_str(&format!("metrics written to {}\n", path.display()));
    }
    Ok(out)
}

/// Appends a top-k listing of a score vector to the report.
fn push_top(out: &mut String, scores: &[f64], k: usize) {
    let mut idx: Vec<usize> = (0..scores.len()).filter(|&v| scores[v] > 0.0).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    for v in idx.into_iter().take(k) {
        out.push_str(&format!("  vertex {v:>8}  score {:.6e}\n", scores[v]));
    }
}

/// `aa partition`: compare all partitioners on a graph file.
pub fn partition_report(path: &Path, format: Option<Format>, k: usize) -> Result<String, String> {
    let g = load_graph(path, format)?;
    let mut out = format!(
        "{} vertices, {} edges, k = {k}\n{:<18} {:>9} {:>9} {:>10}\n",
        g.vertex_count(),
        g.edge_count(),
        "partitioner",
        "cut",
        "balance",
        "max part"
    );
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(MultilevelKWay::default()),
        Box::new(BfsGrowPartitioner),
        Box::new(RoundRobinPartitioner),
        Box::new(HashPartitioner),
    ];
    for p in partitioners {
        let part = p.partition(&g, k);
        part.validate(&g)
            .map_err(|e| format!("{}: {e}", p.name()))?;
        out.push_str(&format!(
            "{:<18} {:>9} {:>9.3} {:>10}\n",
            p.name(),
            quality::edge_cut(&g, &part),
            quality::balance(&part),
            part.part_sizes().into_iter().max().unwrap_or(0),
        ));
    }
    Ok(out)
}

/// `aa convert`: read one format, write another.
pub fn convert(
    input: &Path,
    in_format: Option<Format>,
    output: &Path,
    out_format: Option<Format>,
) -> Result<String, String> {
    let g = load_graph(input, in_format)?;
    save_graph(&g, output, out_format)?;
    Ok(format!(
        "converted {} ({} vertices, {} edges) -> {}\n",
        input.display(),
        g.vertex_count(),
        g.edge_count(),
        output.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_graph::generators;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aa_cli_{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_test_graph(dir: &Path) -> PathBuf {
        let g = generators::barabasi_albert(50, 2, 1, 7);
        let path = dir.join("g.txt");
        save_graph(&g, &path, Some(Format::EdgeList)).unwrap();
        path
    }

    #[test]
    fn analyze_produces_ranking_and_ledger() {
        let dir = temp_dir("analyze");
        let input = write_test_graph(&dir);
        let report = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            top: 5,
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("converged"));
        assert!(report.contains("top-5 closeness"));
        assert!(report.contains("recombination"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_top_k_reports_anytime_section_with_exact_confidence() {
        let dir = temp_dir("analyze_topk");
        let input = write_test_graph(&dir);
        let report = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            top: 5,
            top_k: Some(3),
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("anytime top-3"), "report:\n{report}");
        assert!(
            report.contains("top-3 confidence: exact"),
            "converged batch run must resolve to exact confidence:\n{report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_rejects_zero_top_k() {
        let dir = temp_dir("analyze_topk0");
        let input = write_test_graph(&dir);
        let err = analyze(&AnalyzeOpts {
            input,
            top_k: Some(0),
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("--top-k"), "unexpected error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_with_stream_and_checkpoint_roundtrip() {
        let dir = temp_dir("stream_ckpt");
        let input = write_test_graph(&dir);
        let stream = dir.join("updates.txt");
        std::fs::write(&stream, "ae 0 30 1\nav 1,2\nconverge\nsnapshot 3\n").unwrap();
        let ckpt = dir.join("state.aacp");
        let report = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            top: 3,
            stream: Some(stream),
            save_checkpoint: Some(ckpt.clone()),
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("added vertex 50"));
        assert!(report.contains("checkpoint written"));

        // Resume from the checkpoint without the input graph.
        let resumed = analyze(&AnalyzeOpts {
            procs: 4,
            top: 3,
            resume: Some(ckpt),
            ..Default::default()
        })
        .unwrap();
        assert!(resumed.contains("51 vertices"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_serve_batches_and_reports_ingest_stats() {
        let dir = temp_dir("stream_serve");
        let input = write_test_graph(&dir);
        let stream = dir.join("updates.txt");
        // The add/delete pair cancels in the coalescer; av/dv exercise the
        // vertex path; the snapshot is a barrier mid-stream.
        std::fs::write(
            &stream,
            "ae 0 30 2\nde 0 30\nae 1 40 3\nav 1,2\nsnapshot 3\ndv 5\nconverge\n",
        )
        .unwrap();
        let metrics = dir.join("metrics.json");
        let report = stream_serve(&StreamOpts {
            input,
            updates: stream,
            procs: 4,
            top: 3,
            batch: 4,
            metrics_out: Some(metrics.clone()),
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("added vertex 50"), "{report}");
        assert!(report.contains("ingest:"), "{report}");
        assert!(report.contains("coalescing:"), "{report}");
        assert!(report.contains("top-3 closeness"), "{report}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("aa_ingest_batch_size"), "merged registry");
        assert!(json.contains("aa_rc_steps_total"), "engine series present");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_serve_rejects_bad_drain_policies() {
        assert!(parse_drain_policy("size", 64, 4096).is_ok());
        assert!(parse_drain_policy("steps:3", 64, 4096).is_ok());
        assert!(parse_drain_policy("adaptive", 64, 4096).is_ok());
        assert!(parse_drain_policy("steps:0", 64, 4096).is_err());
        assert!(parse_drain_policy("sometimes", 64, 4096).is_err());
    }

    #[test]
    fn analyze_writes_a_trace_csv() {
        let dir = temp_dir("trace");
        let input = write_test_graph(&dir);
        let trace = dir.join("trace.csv");
        let report = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            trace: Some(trace.clone()),
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("communication trace"));
        let csv = std::fs::read_to_string(&trace).unwrap();
        assert!(csv.starts_with("src,dst,bytes,phase,makespan_us,kind"));
        assert!(csv.lines().count() > 10, "trace should have many events");
        assert!(csv.contains("delivered"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_with_lossy_links_reports_drops_and_stays_exact() {
        let dir = temp_dir("chaos");
        let input = write_test_graph(&dir);
        let trace = dir.join("chaos_trace.csv");
        let report = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            drop_rate: 0.3,
            trace: Some(trace.clone()),
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("converged"));
        assert!(
            report.contains("lossy links:") && report.contains("dropped"),
            "fault summary missing from:\n{report}"
        );
        assert!(report.contains("dropped_b"), "ledger fault column missing");
        let csv = std::fs::read_to_string(&trace).unwrap();
        assert!(
            csv.contains(",dropped"),
            "dropped events missing from trace"
        );
        std::fs::remove_dir_all(&dir).ok();

        let err = analyze(&AnalyzeOpts {
            input: PathBuf::from("/nope.txt"),
            drop_rate: 1.0,
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("[0, 1)"));
    }

    #[test]
    fn analyze_with_scheduled_crash_reports_recovery() {
        let dir = temp_dir("selfheal");
        let input = write_test_graph(&dir);
        let report = analyze(&AnalyzeOpts {
            input: input.clone(),
            procs: 4,
            top: 3,
            crash_at: vec![(3, 1)],
            detector_timeout: Some(2),
            checkpoint_interval: Some(1),
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("converged"));
        assert!(
            report.contains("recovered via checkpoint-restore"),
            "recovery summary missing from:\n{report}"
        );
        std::fs::remove_dir_all(&dir).ok();

        // Bad fault specs fail fast, before any work.
        let err = analyze(&AnalyzeOpts {
            input: input.clone(),
            procs: 4,
            crash_at: vec![(3, 9)],
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            stragglers: vec![(1, 0.0)],
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("must be positive"), "{err}");
    }

    #[test]
    fn analyze_writes_metrics_progress_and_spans() {
        let dir = temp_dir("obs_out");
        let input = write_test_graph(&dir);
        let metrics = dir.join("m.json");
        let progress = dir.join("p.jsonl");
        let spans = dir.join("s.jsonl");
        let report = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            metrics_out: Some(metrics.clone()),
            progress_out: Some(progress.clone()),
            spans_out: Some(spans.clone()),
            ..Default::default()
        })
        .unwrap();
        assert!(report.contains("metrics written"));
        assert!(report.contains("progress probe"));
        assert!(report.contains("phase spans"));

        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"aa_rc_steps_total\""));
        assert!(json.contains("\"aa_converged\""));

        let samples = aa_core::decode_jsonl(&std::fs::read_to_string(&progress).unwrap()).unwrap();
        assert!(!samples.is_empty());
        let last = samples.last().unwrap();
        assert!(last.converged_row_fraction >= 0.999);
        assert!(last.max_overestimate <= 1e-9);

        let log = aa_core::SpanLog::from_jsonl(&std::fs::read_to_string(&spans).unwrap()).unwrap();
        assert!(log.iter().any(|s| s.name == "domain-decomposition"));
        assert!(log.iter().any(|s| s.name == "recombination"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partition_report_lists_all_partitioners() {
        let dir = temp_dir("partition");
        let input = write_test_graph(&dir);
        let report = partition_report(&input, None, 4).unwrap();
        for name in ["multilevel-kway", "bfs-grow", "round-robin", "hash"] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_between_formats() {
        let dir = temp_dir("convert");
        let input = write_test_graph(&dir);
        let out = dir.join("g.net");
        let msg = convert(&input, None, &out, None).unwrap();
        assert!(msg.contains("converted"));
        let g = load_graph(&out, None).unwrap();
        assert_eq!(g.vertex_count(), 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_reports_latency_and_final_ranking() {
        let dir = temp_dir("serve");
        let input = write_test_graph(&dir);
        let metrics = dir.join("serve_metrics.json");
        let report = serve_cmd(&ServeOpts {
            input,
            procs: 4,
            top: 3,
            turns: 24,
            offered: 16,
            metrics_out: Some(metrics.clone()),
            ..Default::default()
        })
        .unwrap();
        assert!(
            report.contains("read latency: p50"),
            "no quantiles in:\n{report}"
        );
        assert!(
            report.contains("top-3 closeness"),
            "no ranking in:\n{report}"
        );
        assert!(
            report.contains("fresh true"),
            "drain must end fresh:\n{report}"
        );
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("aa_serve_requests_total"));
        assert!(json.contains("aa_snapshot_publications_total"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_under_faults_reports_degraded_turns() {
        let dir = temp_dir("serve_faults");
        let input = write_test_graph(&dir);
        let report = serve_cmd(&ServeOpts {
            input,
            procs: 4,
            top: 3,
            turns: 32,
            offered: 16,
            drop_rate: 0.2,
            crash_at: vec![(3, 1)],
            ..Default::default()
        })
        .unwrap();
        assert!(
            report.contains("recoveries"),
            "no recovery line in:\n{report}"
        );
        assert!(
            report.contains("fresh true"),
            "drain must end fresh:\n{report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_durable_recovers_across_runs_and_verifies() {
        let dir = temp_dir("serve_durable");
        let input = write_test_graph(&dir);
        let data = dir.join("data");
        // A prior aborted run may have left durable state behind; the first
        // run below must observe a cold start.
        std::fs::remove_dir_all(&data).ok();
        let opts = ServeOpts {
            input,
            procs: 4,
            top: 3,
            turns: 12,
            offered: 16,
            read_fraction: 0.5,
            data_dir: Some(data.clone()),
            checkpoint_every: 4,
            verify_recovery: true,
            ..Default::default()
        };
        let first = serve_cmd(&opts).unwrap();
        assert!(
            first.contains("recovery: checkpoint seq 0 (none — cold start)"),
            "first run must cold-start:\n{first}"
        );
        assert!(first.contains("durability:"), "{first}");
        assert!(
            first.contains("recovery verified"),
            "verification missing:\n{first}"
        );
        // Second run recovers the first run's state (its final checkpoint),
        // keeps serving, and still verifies.
        let second = serve_cmd(&ServeOpts { seed: 43, ..opts }).unwrap();
        assert!(
            second.contains("(loaded)"),
            "second run must load the first run's checkpoint:\n{second}"
        );
        assert!(second.contains("recovery verified"), "{second}");
        let wal_files = std::fs::read_dir(&data)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".aawl"))
            .count();
        assert!(wal_files >= 1, "a WAL segment must exist");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_rejects_bad_rates() {
        let err = serve_cmd(&ServeOpts {
            input: PathBuf::from("/nope.txt"),
            drop_rate: 1.0,
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("drop rate"));
        let err = serve_cmd(&ServeOpts {
            input: PathBuf::from("/nope.txt"),
            crash_at: vec![(1, 99)],
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn sim_backend_with_threads_fails_loudly_everywhere() {
        // The vendored rayon stub is silently single-threaded, so asking the
        // sim for parallelism must be a hard CLI error — on every subcommand
        // that builds an engine, and before any file I/O happens.
        let err = analyze(&AnalyzeOpts {
            input: PathBuf::from("/nope.txt"),
            threads: 8,
            ..Default::default()
        })
        .unwrap_err();
        assert!(
            err.contains("single-threaded") && err.contains("--backend threads"),
            "unhelpful error: {err}"
        );
        let err = stream_serve(&StreamOpts {
            input: PathBuf::from("/nope.txt"),
            threads: 2,
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("incompatible with --backend sim"), "{err}");
        let err = serve_cmd(&ServeOpts {
            input: PathBuf::from("/nope.txt"),
            threads: 4,
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("incompatible with --backend sim"), "{err}");
        // threads <= 1 is the sequential contract the sim satisfies.
        for threads in [0, 1] {
            assert!(validate_backend(BackendKind::Sim, threads).is_ok());
        }
    }

    #[test]
    fn analyze_on_threads_backend_matches_sim() {
        let dir = temp_dir("backend_threads");
        let input = write_test_graph(&dir);
        let sim = analyze(&AnalyzeOpts {
            input: input.clone(),
            procs: 4,
            top: 5,
            drop_rate: 0.2,
            ..Default::default()
        })
        .unwrap();
        let threads = analyze(&AnalyzeOpts {
            input,
            procs: 4,
            top: 5,
            drop_rate: 0.2,
            backend: BackendKind::Threads,
            threads: 4,
            ..Default::default()
        })
        .unwrap();
        // The ranking and the fault accounting are part of the cross-backend
        // determinism contract; cluster time is measured-compute-derived and
        // is not, so compare the deterministic report lines only.
        let deterministic = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| l.starts_with("  vertex") || l.starts_with("lossy links:"))
                .map(str::to_string)
                .collect()
        };
        assert!(threads.contains("converged"), "{threads}");
        assert_eq!(
            deterministic(&sim),
            deterministic(&threads),
            "threads backend diverged from the sim oracle"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_missing_input_fails_cleanly() {
        let err = analyze(&AnalyzeOpts {
            input: PathBuf::from("/nope.txt"),
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
