//! The `aa` command-line tool.
//!
//! ```text
//! aa analyze  <graph> [--format F] [--procs P] [--top K] [--strategy S]
//!                     [--stream FILE] [--save-checkpoint FILE] [--resume FILE]
//! aa stream   <graph> <updates> [--batch N] [--queue-cap N] [--drain-policy P]
//! aa partition <graph> --parts K [--format F]
//! aa convert  <in> <out> [--from F] [--to F]
//! ```

// CLI entry point: nonzero process exits on usage/runtime errors are the
// shell contract, unlike in library code where the workspace denies them.
#![allow(clippy::exit)]

use aa_cli::commands::{
    analyze, convert, partition_report, serve_cmd, stream_serve, AnalyzeOpts, Measure, ServeOpts,
    StreamOpts,
};
use aa_cli::Format;
use aa_core::AdditionStrategy;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
usage:
  aa analyze  <graph> [--format edgelist|pajek|metis] [--procs P] [--top K]
              [--top-k K]  (anytime top-k tracker: bound-based pruning + confidence)
              [--strategy roundrobin|cutedge|repartition|restart]
              [--stream FILE] [--save-checkpoint FILE] [--resume FILE]
              [--measure degree|eigenvector|pagerank|cliques]... [--trace CSV]
              [--drop-rate P]   (inject lossy links: drop each transfer w.p. P)
              [--crash-at STEP:RANK]...   (fail-stop RANK at RC step STEP)
              [--straggler RANK:SCALE]... (RANK's compute runs SCALE x slower)
              [--detector-timeout N]      (RC steps of silence before suspicion)
              [--checkpoint-interval N]   (per-rank checkpoint every N RC steps)
              [--metrics-out JSON]        (dump the metrics registry)
              [--progress-out JSONL]      (anytime progress probe samples)
              [--spans-out JSONL]         (phase spans: DD/IA/RC/recovery)
              [--backend sim|threads]     (execution backend, default sim)
              [--threads N]               (threads-backend workers, 0 = per rank)
  aa stream   <graph> <updates> [--format F] [--procs P] [--top K]
              [--top-k K]  (keep the anytime top-k tracker current across flushes)
              [--strategy roundrobin|cutedge|repartition|restart]
              [--batch N]         (size-policy batch target, default 64)
              [--queue-cap N]     (ingest queue hard capacity, default 4096)
              [--drain-policy size|steps:K|adaptive]
              [--drop-rate P] [--metrics-out JSON]
              [--backend sim|threads] [--threads N]
  aa serve    <graph> [--format F] [--procs P] [--top K]
              [--turns N]         (serving turns to drive, default 64)
              [--offered N]       (requests offered per turn, default 32)
              [--read-fraction R] (read share of offered load, default 0.8)
              [--topk-read-mix R] (top-k share of reads, default 0.7)
              [--deadline-us D]   (read deadline in virtual microseconds)
              [--seed S]          (workload seed)
              [--drop-rate P] [--crash-at STEP:RANK]... [--straggler RANK:SCALE]...
              [--metrics-out JSON]
              [--data-dir DIR]    (crash-consistent: recover, WAL, checkpoints)
              [--checkpoint-every N] (durable checkpoint cadence in turns)
              [--verify-recovery] (after shutdown, prove a restart replays exactly)
              [--backend sim|threads] [--threads N]
  aa partition <graph> --parts K [--format F]
  aa convert  <in> <out> [--from F] [--to F]
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    exit(2)
}

/// Parses a `"A:B"` pair where both halves parse via `FromStr`
/// (e.g. `--crash-at 12:3`, `--straggler 2:50.0`).
fn parse_pair<A: std::str::FromStr, B: std::str::FromStr>(s: &str) -> Option<(A, B)> {
    let (a, b) = s.split_once(':')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_strategy(s: &str) -> AdditionStrategy {
    match s.to_ascii_lowercase().as_str() {
        "roundrobin" | "rr" => AdditionStrategy::RoundRobinPs,
        "cutedge" | "ce" => AdditionStrategy::CutEdgePs,
        "repartition" | "rs" => AdditionStrategy::RepartitionS,
        "restart" => AdditionStrategy::BaselineRestart,
        other => fail(&format!("unknown strategy {other:?}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else {
        fail("missing subcommand")
    };
    let rest = &args[1..];

    let result = match sub.as_str() {
        "analyze" => run_analyze(rest),
        "stream" => run_stream(rest),
        "serve" => run_serve(rest),
        "partition" => run_partition(rest),
        "convert" => run_convert(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return;
        }
        other => fail(&format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

fn run_analyze(args: &[String]) -> Result<String, String> {
    let mut opts = AnalyzeOpts::default();
    let mut positional: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--format" => opts.format = Some(Format::parse(&value("--format"))?),
            "--procs" => opts.procs = value("--procs").parse().map_err(|_| "invalid --procs")?,
            "--top" => opts.top = value("--top").parse().map_err(|_| "invalid --top")?,
            "--top-k" => {
                opts.top_k = Some(value("--top-k").parse().map_err(|_| "invalid --top-k")?)
            }
            "--strategy" => opts.strategy = parse_strategy(&value("--strategy")),
            "--stream" => opts.stream = Some(PathBuf::from(value("--stream"))),
            "--save-checkpoint" => {
                opts.save_checkpoint = Some(PathBuf::from(value("--save-checkpoint")))
            }
            "--resume" => opts.resume = Some(PathBuf::from(value("--resume"))),
            "--measure" => opts.measures.push(Measure::parse(&value("--measure"))?),
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace"))),
            "--drop-rate" => {
                opts.drop_rate = value("--drop-rate")
                    .parse()
                    .map_err(|_| "invalid --drop-rate")?
            }
            "--crash-at" => {
                let v = value("--crash-at");
                let (step, rank) = parse_pair(&v)
                    .ok_or_else(|| format!("invalid --crash-at {v:?} (expected STEP:RANK)"))?;
                opts.crash_at.push((step, rank));
            }
            "--straggler" => {
                let v = value("--straggler");
                let (rank, scale) = parse_pair(&v)
                    .ok_or_else(|| format!("invalid --straggler {v:?} (expected RANK:SCALE)"))?;
                opts.stragglers.push((rank, scale));
            }
            "--detector-timeout" => {
                opts.detector_timeout = Some(
                    value("--detector-timeout")
                        .parse()
                        .map_err(|_| "invalid --detector-timeout")?,
                )
            }
            "--checkpoint-interval" => {
                opts.checkpoint_interval = Some(
                    value("--checkpoint-interval")
                        .parse()
                        .map_err(|_| "invalid --checkpoint-interval")?,
                )
            }
            "--metrics-out" => opts.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
            "--progress-out" => opts.progress_out = Some(PathBuf::from(value("--progress-out"))),
            "--spans-out" => opts.spans_out = Some(PathBuf::from(value("--spans-out"))),
            "--backend" => opts.backend = value("--backend").parse()?,
            "--threads" => {
                opts.threads = value("--threads")
                    .parse()
                    .map_err(|_| "invalid --threads")?
            }
            other if !other.starts_with('-') => positional = Some(PathBuf::from(other)),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    match positional {
        Some(p) => opts.input = p,
        None if opts.resume.is_some() => {}
        None => fail("analyze needs a graph file (or --resume)"),
    }
    analyze(&opts)
}

fn run_stream(args: &[String]) -> Result<String, String> {
    let mut opts = StreamOpts::default();
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--format" => opts.format = Some(Format::parse(&value("--format"))?),
            "--procs" => opts.procs = value("--procs").parse().map_err(|_| "invalid --procs")?,
            "--top" => opts.top = value("--top").parse().map_err(|_| "invalid --top")?,
            "--top-k" => {
                opts.top_k = Some(value("--top-k").parse().map_err(|_| "invalid --top-k")?)
            }
            "--strategy" => opts.strategy = parse_strategy(&value("--strategy")),
            "--batch" => opts.batch = value("--batch").parse().map_err(|_| "invalid --batch")?,
            "--queue-cap" => {
                opts.queue_cap = value("--queue-cap")
                    .parse()
                    .map_err(|_| "invalid --queue-cap")?
            }
            "--drain-policy" => opts.drain_policy = value("--drain-policy"),
            "--drop-rate" => {
                opts.drop_rate = value("--drop-rate")
                    .parse()
                    .map_err(|_| "invalid --drop-rate")?
            }
            "--metrics-out" => opts.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
            "--backend" => opts.backend = value("--backend").parse()?,
            "--threads" => {
                opts.threads = value("--threads")
                    .parse()
                    .map_err(|_| "invalid --threads")?
            }
            other if !other.starts_with('-') => positional.push(PathBuf::from(other)),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if positional.len() != 2 {
        fail("stream needs <graph> and <updates>");
    }
    opts.updates = positional.pop().unwrap_or_default();
    opts.input = positional.pop().unwrap_or_default();
    stream_serve(&opts)
}

fn run_serve(args: &[String]) -> Result<String, String> {
    let mut opts = ServeOpts::default();
    let mut positional: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--format" => opts.format = Some(Format::parse(&value("--format"))?),
            "--procs" => opts.procs = value("--procs").parse().map_err(|_| "invalid --procs")?,
            "--top" => opts.top = value("--top").parse().map_err(|_| "invalid --top")?,
            "--turns" => opts.turns = value("--turns").parse().map_err(|_| "invalid --turns")?,
            "--offered" => {
                opts.offered = value("--offered")
                    .parse()
                    .map_err(|_| "invalid --offered")?
            }
            "--read-fraction" => {
                opts.read_fraction = value("--read-fraction")
                    .parse()
                    .map_err(|_| "invalid --read-fraction")?
            }
            "--topk-read-mix" => {
                opts.topk_read_mix = value("--topk-read-mix")
                    .parse()
                    .map_err(|_| "invalid --topk-read-mix")?
            }
            "--deadline-us" => {
                opts.deadline_us = value("--deadline-us")
                    .parse()
                    .map_err(|_| "invalid --deadline-us")?
            }
            "--seed" => opts.seed = value("--seed").parse().map_err(|_| "invalid --seed")?,
            "--drop-rate" => {
                opts.drop_rate = value("--drop-rate")
                    .parse()
                    .map_err(|_| "invalid --drop-rate")?
            }
            "--crash-at" => {
                let v = value("--crash-at");
                let (step, rank) = parse_pair(&v)
                    .ok_or_else(|| format!("invalid --crash-at {v:?} (expected STEP:RANK)"))?;
                opts.crash_at.push((step, rank));
            }
            "--straggler" => {
                let v = value("--straggler");
                let (rank, scale) = parse_pair(&v)
                    .ok_or_else(|| format!("invalid --straggler {v:?} (expected RANK:SCALE)"))?;
                opts.stragglers.push((rank, scale));
            }
            "--metrics-out" => opts.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
            "--data-dir" => opts.data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")
                    .parse()
                    .map_err(|_| "invalid --checkpoint-every")?
            }
            "--verify-recovery" => opts.verify_recovery = true,
            "--backend" => opts.backend = value("--backend").parse()?,
            "--threads" => {
                opts.threads = value("--threads")
                    .parse()
                    .map_err(|_| "invalid --threads")?
            }
            other if !other.starts_with('-') => positional = Some(PathBuf::from(other)),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    opts.input = positional.unwrap_or_else(|| fail("serve needs a graph file"));
    serve_cmd(&opts)
}

fn run_partition(args: &[String]) -> Result<String, String> {
    let mut input: Option<PathBuf> = None;
    let mut format = None;
    let mut parts = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--parts" => parts = value("--parts").parse().map_err(|_| "invalid --parts")?,
            "--format" => format = Some(Format::parse(&value("--format"))?),
            other if !other.starts_with('-') => input = Some(PathBuf::from(other)),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let input = input.unwrap_or_else(|| fail("partition needs a graph file"));
    if parts == 0 {
        fail("partition needs --parts K");
    }
    partition_report(&input, format, parts)
}

fn run_convert(args: &[String]) -> Result<String, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut from = None;
    let mut to = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
                .clone()
        };
        match a.as_str() {
            "--from" => from = Some(Format::parse(&value("--from"))?),
            "--to" => to = Some(Format::parse(&value("--to"))?),
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if paths.len() != 2 {
        fail("convert needs <in> and <out>");
    }
    convert(&paths[0], from, &paths[1], to)
}
