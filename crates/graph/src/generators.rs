//! Random and deterministic graph generators.
//!
//! The papers evaluate on undirected *scale-free* graphs generated with Pajek
//! and extract community-structured batches of new vertices with Louvain. The
//! generators here reproduce those statistical families from scratch:
//! Barabási–Albert preferential attachment (scale-free), planted-partition
//! (explicit community structure), Erdős–Rényi and Watts–Strogatz for
//! contrast, and small deterministic fixtures for tests.
//!
//! All generators take an explicit seed and are deterministic for a given
//! (seed, parameters) pair, which the test suite relies on.

use crate::graph::{Graph, VertexId, Weight};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Draws a weight in `1..=max_weight` (uniform). `max_weight == 1` yields an
/// unweighted graph, matching the papers' experiments.
fn draw_weight<R: Rng>(r: &mut R, max_weight: Weight) -> Weight {
    if max_weight <= 1 {
        1
    } else {
        r.gen_range(1..=max_weight)
    }
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m` existing vertices chosen with probability
/// proportional to degree. Produces the scale-free degree distribution the
/// papers assume (`max cut-edges per boundary vertex ≈ O(log n)`).
///
/// ```
/// let g = aa_graph::generators::barabasi_albert(500, 2, 1, 42);
/// assert_eq!(g.vertex_count(), 500);
/// assert_eq!(g.edge_count(), 3 + 497 * 2); // seed clique + m per newcomer
/// ```
///
/// # Panics
/// Panics if `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, max_weight: Weight, seed: u64) -> Graph {
    assert!(m >= 1, "barabasi_albert: m must be >= 1");
    assert!(n > m, "barabasi_albert: need n > m");
    let mut r = rng(seed);
    let mut g = Graph::with_vertices(n);
    // Repeated-endpoints list: vertex v appears deg(v) times; sampling from it
    // is sampling proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed clique on the first m+1 vertices.
    for u in 0..=(m as VertexId) {
        for v in (u + 1)..=(m as VertexId) {
            g.add_edge(u, v, draw_weight(&mut r, max_weight));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for v in (m + 1)..n {
        let v = v as VertexId;
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[r.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            g.add_edge(v, t, draw_weight(&mut r, max_weight));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniformly random edges.
pub fn erdos_renyi_gnm(n: usize, m: usize, max_weight: Weight, seed: u64) -> Graph {
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges, "erdos_renyi_gnm: m exceeds n*(n-1)/2");
    let mut r = rng(seed);
    let mut g = Graph::with_vertices(n);
    while g.edge_count() < m {
        let u = r.gen_range(0..n) as VertexId;
        let v = r.gen_range(0..n) as VertexId;
        if u != v {
            g.add_edge(u, v, draw_weight(&mut r, max_weight));
        }
    }
    g
}

/// Watts–Strogatz small-world: ring lattice with `k` nearest neighbours per
/// side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, max_weight: Weight, seed: u64) -> Graph {
    assert!(
        k >= 1 && 2 * k < n,
        "watts_strogatz: need 1 <= k and 2k < n"
    );
    assert!((0.0..=1.0).contains(&beta));
    let mut r = rng(seed);
    let mut g = Graph::with_vertices(n);
    for u in 0..n {
        for d in 1..=k {
            let v = (u + d) % n;
            let (mut a, mut b) = (u as VertexId, v as VertexId);
            if r.gen_bool(beta) {
                // Rewire the far endpoint to a uniform random vertex.
                let mut nv = r.gen_range(0..n) as VertexId;
                let mut attempts = 0;
                while (nv == a || g.has_edge(a, nv)) && attempts < 32 {
                    nv = r.gen_range(0..n) as VertexId;
                    attempts += 1;
                }
                b = nv;
            }
            if a != b {
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                g.add_edge(a, b, draw_weight(&mut r, max_weight));
            }
        }
    }
    g
}

/// Planted-partition ("community") graph: `communities` groups of
/// `community_size` vertices; each intra-community pair is connected with
/// probability `p_in`, each inter-community pair with probability `p_out`.
/// With `p_in >> p_out` this produces the strong community structure the
/// CutEdge-PS experiments depend on.
pub fn planted_partition(
    communities: usize,
    community_size: usize,
    p_in: f64,
    p_out: f64,
    max_weight: Weight,
    seed: u64,
) -> Graph {
    assert!(communities >= 1 && community_size >= 1);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n = communities * community_size;
    let mut r = rng(seed);
    let mut g = Graph::with_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / community_size == v / community_size;
            let p = if same { p_in } else { p_out };
            if r.gen_bool(p) {
                g.add_edge(
                    u as VertexId,
                    v as VertexId,
                    draw_weight(&mut r, max_weight),
                );
            }
        }
    }
    g
}

/// Ground-truth community of each vertex for [`planted_partition`] output.
pub fn planted_partition_labels(communities: usize, community_size: usize) -> Vec<usize> {
    (0..communities * community_size)
        .map(|v| v / community_size)
        .collect()
}

/// A path graph `0 - 1 - … - (n-1)` with unit weights.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_vertices(n);
    for u in 1..n {
        g.add_edge((u - 1) as VertexId, u as VertexId, 1);
    }
    g
}

/// A cycle graph with unit weights.
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(0, (n - 1) as VertexId, 1);
    }
    g
}

/// A star graph: vertex 0 connected to all others with unit weights.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_vertices(n);
    for v in 1..n {
        g.add_edge(0, v as VertexId, 1);
    }
    g
}

/// The complete graph `K_n` with unit weights.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u as VertexId, v as VertexId, 1);
        }
    }
    g
}

/// A `rows x cols` grid with unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_vertices(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), 1);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), 1);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::connected_components;

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(200, 3, 1, 42);
        assert_eq!(g.vertex_count(), 200);
        // Seed clique K4 has 6 edges; each of the remaining 196 vertices adds 3.
        assert_eq!(g.edge_count(), 6 + 196 * 3);
        g.check_invariants().unwrap();
        assert_eq!(connected_components(&g).1, 1, "BA graphs are connected");
    }

    #[test]
    fn barabasi_albert_deterministic() {
        let a = barabasi_albert(100, 2, 4, 7);
        let b = barabasi_albert(100, 2, 4, 7);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn barabasi_albert_is_scale_free_ish() {
        // Degree skew: max degree far exceeds the average.
        let g = barabasi_albert(1000, 2, 1, 1);
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected heavy-tailed degrees: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 200, 3, 9);
        assert_eq!(g.vertex_count(), 50);
        assert_eq!(g.edge_count(), 200);
        g.check_invariants().unwrap();
    }

    #[test]
    fn watts_strogatz_no_rewire_is_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1, 5);
        assert_eq!(g.edge_count(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn watts_strogatz_rewired_still_valid() {
        let g = watts_strogatz(100, 3, 0.3, 2, 11);
        g.check_invariants().unwrap();
        assert!(g.edge_count() <= 300);
        assert!(g.edge_count() > 250, "only a few rewires may collide");
    }

    #[test]
    fn planted_partition_structure() {
        let g = planted_partition(4, 25, 0.5, 0.01, 1, 3);
        g.check_invariants().unwrap();
        let labels = planted_partition_labels(4, 25);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > 4 * inter,
            "intra {intra} should dwarf inter {inter}"
        );
    }

    #[test]
    fn deterministic_fixtures() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(grid(3, 4).edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(cycle(2).edge_count(), 1, "cycle(2) degenerates to an edge");
    }
}
