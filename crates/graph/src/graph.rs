//! A dynamic undirected weighted graph with stable vertex identifiers.
//!
//! Vertex ids are dense `u32` indices that never move: adding a vertex appends
//! a slot, deleting one leaves a tombstone. Stability matters because the
//! distributed engine stores one distance-vector *column* per vertex id;
//! reusing or compacting ids would silently corrupt distance state mid-run.

use std::fmt;

/// Identifier of a vertex. Dense, stable across additions and deletions.
pub type VertexId = u32;

/// Edge weight. The papers use non-negative integer weights; `u32` keeps the
/// distance matrices at four bytes per entry.
pub type Weight = u32;

/// "Unreachable" distance sentinel.
pub const INF: Weight = u32::MAX;

/// An undirected weighted graph supporting dynamic vertex/edge updates.
///
/// Parallel edges are rejected; self-loops are rejected (they never affect
/// shortest paths). Deleted vertices keep their id slot as a tombstone so the
/// ids of surviving vertices are unaffected.
///
/// ```
/// use aa_graph::Graph;
///
/// let mut g = Graph::with_vertices(3);
/// g.add_edge(0, 1, 5);
/// let v = g.add_vertex();
/// g.add_edge(1, v, 2);
/// assert_eq!(g.vertex_count(), 4);
/// g.remove_vertex(0);
/// assert_eq!(g.capacity(), 4, "id slots are stable");
/// assert_eq!(g.degree(1), 1);
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(VertexId, Weight)>>,
    alive: Vec<bool>,
    num_edges: usize,
    num_alive: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated vertices, ids `0..n`.
    pub fn with_vertices(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            num_edges: 0,
            num_alive: n,
        }
    }

    /// Number of vertex id slots ever allocated (including tombstones).
    /// Distance matrices are sized by this value.
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Number of live vertices.
    pub fn vertex_count(&self) -> usize {
        self.num_alive
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// Whether `v` is a live vertex.
    pub fn is_alive(&self, v: VertexId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    /// Adds a new isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = self.adj.len() as VertexId;
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.num_alive += 1;
        id
    }

    /// Iterator over live vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as VertexId)
    }

    /// Adds the undirected edge `(u, v)` with weight `w`.
    ///
    /// Returns `true` if the edge was inserted, `false` if it already existed
    /// (in which case the weight is left unchanged) or is a self-loop.
    ///
    /// # Panics
    /// Panics if either endpoint is not a live vertex or `w == INF`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> bool {
        assert!(self.is_alive(u), "add_edge: vertex {u} is not alive");
        assert!(self.is_alive(v), "add_edge: vertex {v} is not alive");
        assert!(w != INF, "add_edge: weight must be finite");
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
        self.num_edges += 1;
        true
    }

    /// Removes the undirected edge `(u, v)`. Returns the removed weight.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Option<Weight> {
        let pos = self
            .adj
            .get(u as usize)?
            .iter()
            .position(|&(x, _)| x == v)?;
        let (_, w) = self.adj[u as usize].swap_remove(pos);
        let pos_v = self.adj[v as usize]
            .iter()
            .position(|&(x, _)| x == u)
            .expect("graph invariant: undirected edge present in both lists");
        self.adj[v as usize].swap_remove(pos_v);
        self.num_edges -= 1;
        Some(w)
    }

    /// Deletes vertex `v`, removing all incident edges. The id slot becomes a
    /// tombstone; other ids are unaffected. Returns the removed neighbors.
    pub fn remove_vertex(&mut self, v: VertexId) -> Vec<(VertexId, Weight)> {
        assert!(self.is_alive(v), "remove_vertex: vertex {v} is not alive");
        let neighbors = std::mem::take(&mut self.adj[v as usize]);
        for &(u, _) in &neighbors {
            let pos = self.adj[u as usize]
                .iter()
                .position(|&(x, _)| x == v)
                .expect("graph invariant: undirected edge present in both lists");
            self.adj[u as usize].swap_remove(pos);
        }
        self.num_edges -= neighbors.len();
        self.alive[v as usize] = false;
        self.num_alive -= 1;
        neighbors
    }

    /// Neighbors of `v` with edge weights, in unspecified order.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (u, v) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[u as usize].iter().any(|&(x, _)| x == v)
    }

    /// Weight of edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.adj[u as usize]
            .iter()
            .find(|&&(x, _)| x == v)
            .map(|&(_, w)| w)
    }

    /// Sets the weight of the existing edge `(u, v)`; returns the old weight.
    pub fn set_edge_weight(&mut self, u: VertexId, v: VertexId, w: Weight) -> Option<Weight> {
        assert!(w != INF, "set_edge_weight: weight must be finite");
        let old = {
            let e = self.adj[u as usize].iter_mut().find(|(x, _)| *x == v)?;
            std::mem::replace(&mut e.1, w)
        };
        let e = self.adj[v as usize]
            .iter_mut()
            .find(|(x, _)| *x == u)
            .expect("graph invariant: undirected edge present in both lists");
        e.1 = w;
        Some(old)
    }

    /// Iterator over all undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            list.iter()
                .filter(move |&&(v, _)| (u as VertexId) < v)
                .map(move |&(v, w)| (u as VertexId, v, w))
        })
    }

    /// Total weight of all edges.
    pub fn total_edge_weight(&self) -> u64 {
        self.edges().map(|(_, _, w)| w as u64).sum()
    }

    /// Checks internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (u, list) in self.adj.iter().enumerate() {
            if !self.alive[u] && !list.is_empty() {
                return Err(format!("tombstone vertex {u} has edges"));
            }
            for &(v, w) in list {
                if !self.is_alive(v) {
                    return Err(format!("edge ({u},{v}) points at dead vertex"));
                }
                match self.edge_weight(v, u as VertexId) {
                    Some(wb) if wb == w => {}
                    Some(wb) => return Err(format!("asymmetric weight on ({u},{v}): {w} vs {wb}")),
                    None => return Err(format!("edge ({u},{v}) missing reverse direction")),
                }
                count += 1;
            }
        }
        if count != 2 * self.num_edges {
            return Err(format!(
                "edge count mismatch: counted {count} half-edges, expected {}",
                2 * self.num_edges
            ));
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph {{ vertices: {}, edges: {}, slots: {} }}",
            self.num_alive,
            self.num_edges,
            self.adj.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.capacity(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn add_vertices_and_edges() {
        let mut g = Graph::with_vertices(3);
        assert!(g.add_edge(0, 1, 5));
        assert!(g.add_edge(1, 2, 7));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edge_weight(2, 1), Some(7));
        assert!(g.has_edge(1, 0));
        g.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_and_self_loop_rejected() {
        let mut g = Graph::with_vertices(2);
        assert!(g.add_edge(0, 1, 1));
        assert!(!g.add_edge(1, 0, 9), "duplicate must be rejected");
        assert_eq!(
            g.edge_weight(0, 1),
            Some(1),
            "weight unchanged on duplicate"
        );
        assert!(!g.add_edge(0, 0, 1), "self-loop must be rejected");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_vertex_returns_fresh_stable_id() {
        let mut g = Graph::with_vertices(2);
        let v = g.add_vertex();
        assert_eq!(v, 2);
        assert!(g.is_alive(v));
        assert_eq!(g.vertex_count(), 3);
        g.add_edge(v, 0, 4);
        assert_eq!(g.neighbors(v), &[(0, 4)]);
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 3);
        assert_eq!(g.remove_edge(1, 0), Some(2));
        assert_eq!(g.remove_edge(1, 0), None);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 1));
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_vertex_leaves_tombstone() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        let removed = g.remove_vertex(1);
        assert_eq!(removed.len(), 3);
        assert!(!g.is_alive(1));
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.capacity(), 4, "id slots preserved");
        // Remaining ids unaffected.
        assert!(g.is_alive(0) && g.is_alive(2) && g.is_alive(3));
        g.check_invariants().unwrap();
    }

    #[test]
    fn set_edge_weight_updates_both_directions() {
        let mut g = Graph::with_vertices(2);
        g.add_edge(0, 1, 10);
        assert_eq!(g.set_edge_weight(0, 1, 3), Some(10));
        assert_eq!(g.edge_weight(1, 0), Some(3));
        assert_eq!(g.set_edge_weight(0, 0, 3), None);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 1, 2);
        g.add_edge(3, 0, 3);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1, 1), (0, 3, 3), (1, 2, 2)]);
        assert_eq!(g.total_edge_weight(), 6);
    }

    #[test]
    fn vertices_iterator_skips_tombstones() {
        let mut g = Graph::with_vertices(3);
        g.remove_vertex(1);
        let vs: Vec<_> = g.vertices().collect();
        assert_eq!(vs, vec![0, 2]);
    }
}
