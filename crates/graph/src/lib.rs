#![forbid(unsafe_code)]
//! Graph substrate for the anytime-anywhere closeness-centrality reproduction.
//!
//! The papers' experiments run on undirected, weighted, *dynamic* scale-free
//! graphs: vertices and edges arrive (and depart) while the analysis is in
//! flight. This crate provides everything below the distributed algorithm:
//!
//! * [`Graph`] — a dynamic undirected weighted graph with stable vertex ids,
//!   O(1) vertex addition and tombstoned vertex deletion;
//! * [`generators`] — scale-free (Barabási–Albert), Erdős–Rényi,
//!   Watts–Strogatz and planted-partition community generators, plus
//!   deterministic fixtures used by tests; [`rmat`] adds the R-MAT/Kronecker
//!   recursion used by HPC graph benchmarks;
//! * [`community`] — a from-scratch Louvain modularity optimizer, used to
//!   extract community-structured vertex batches exactly as the paper's
//!   experimental setup does with Pajek's Louvain tool;
//! * [`algo`] — sequential reference algorithms (Dijkstra, BFS, connected
//!   components, Floyd–Warshall) and the exact closeness-centrality oracle the
//!   distributed results are validated against;
//! * [`centrality`] — sequential references for the other standard SNA
//!   measures the papers name (degree, betweenness via Brandes, eigenvector,
//!   PageRank, k-core) plus a Δ-stepping SSSP reference;
//! * [`io`] — edge-list, Pajek `.net` and METIS `.graph` readers/writers (the
//!   paper generated its inputs with Pajek and partitioned with METIS);
//! * [`metrics`] — degree distributions, clustering coefficients, modularity.

pub mod algo;
pub mod centrality;
pub mod cliques;
pub mod community;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod rmat;

pub use graph::{Graph, VertexId, Weight, INF};
