//! Additional sequential centrality references.
//!
//! The papers position closeness centrality among the standard SNA measures
//! (degree, betweenness, eigenvector). These sequential implementations
//! serve as oracles for the distributed measures in `aa-core` and as
//! comparison baselines in examples.

use crate::graph::{Graph, VertexId, Weight, INF};
use std::collections::VecDeque;

/// Degree centrality: `deg(v) / (n - 1)` over live vertices.
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    let n = g.vertex_count();
    let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
    (0..g.capacity() as VertexId)
        .map(|v| {
            if g.is_alive(v) {
                g.degree(v) as f64 / denom
            } else {
                0.0
            }
        })
        .collect()
}

/// Betweenness centrality via Brandes' algorithm (unweighted: BFS DAGs).
/// Undirected convention: each pair counted once (final values halved).
pub fn betweenness_unweighted(g: &Graph) -> Vec<f64> {
    let cap = g.capacity();
    let mut bc = vec![0.0f64; cap];
    for s in g.vertices() {
        // BFS from s building the shortest-path DAG.
        let mut dist = vec![INF; cap];
        let mut sigma = vec![0.0f64; cap]; // number of shortest paths
        let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); cap];
        let mut order: Vec<VertexId> = Vec::new();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, _) in g.neighbors(u) {
                if dist[v as usize] == INF {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    preds[v as usize].push(u);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        let mut delta = vec![0.0f64; cap];
        for &w in order.iter().rev() {
            for &u in &preds[w as usize] {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    // Undirected graphs double-count each (s, t) pair.
    for b in bc.iter_mut() {
        *b /= 2.0;
    }
    bc
}

/// Eigenvector centrality by power iteration. Returns the dominant
/// eigenvector normalized to unit Euclidean length, or `None` if the
/// iteration fails to make progress (e.g. an empty graph).
pub fn eigenvector_centrality(g: &Graph, max_iters: usize, tol: f64) -> Option<Vec<f64>> {
    let cap = g.capacity();
    let n = g.vertex_count();
    if n == 0 {
        return None;
    }
    let mut x = vec![0.0f64; cap];
    for v in g.vertices() {
        x[v as usize] = 1.0 / (n as f64).sqrt();
    }
    for _ in 0..max_iters {
        let mut next = vec![0.0f64; cap];
        for v in g.vertices() {
            // Shifted iteration on (I + A): same dominant eigenvector, but
            // converges on bipartite graphs (stars, even cycles) where plain
            // power iteration oscillates between ±λ eigenpairs.
            next[v as usize] = x[v as usize];
            for &(u, w) in g.neighbors(v) {
                next[v as usize] += w as f64 * x[u as usize];
            }
        }
        let norm = next.iter().map(|a| a * a).sum::<f64>().sqrt();
        // aa-lint: allow(AA03, exact-zero guard against dividing by a zero norm; any nonzero norm is fine)
        if norm == 0.0 {
            return Some(x); // no edges: the uniform vector is as good as any
        }
        for a in next.iter_mut() {
            *a /= norm;
        }
        let diff: f64 = next
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        x = next;
        if diff < tol {
            return Some(x);
        }
    }
    Some(x)
}

/// PageRank with damping `d`, uniform teleport over live vertices. Dangling
/// mass is redistributed uniformly. Iterates to `tol` in L1 or `max_iters`.
pub fn pagerank(g: &Graph, d: f64, max_iters: usize, tol: f64) -> Vec<f64> {
    let cap = g.capacity();
    let n = g.vertex_count();
    if n == 0 {
        return vec![0.0; cap];
    }
    let alive: Vec<VertexId> = g.vertices().collect();
    let mut pr = vec![0.0f64; cap];
    for &v in &alive {
        pr[v as usize] = 1.0 / n as f64;
    }
    for _ in 0..max_iters {
        let mut next = vec![0.0f64; cap];
        let mut dangling = 0.0f64;
        for &v in &alive {
            let deg = g.degree(v);
            if deg == 0 {
                dangling += pr[v as usize];
                continue;
            }
            // Weighted split over incident edges.
            let total_w: u64 = g.neighbors(v).iter().map(|&(_, w)| w as u64).sum();
            for &(u, w) in g.neighbors(v) {
                next[u as usize] += pr[v as usize] * (w as f64 / total_w as f64);
            }
        }
        let teleport = (1.0 - d) / n as f64 + d * dangling / n as f64;
        let mut delta = 0.0;
        for &v in &alive {
            let value = teleport + d * next[v as usize];
            delta += (value - pr[v as usize]).abs();
            pr[v as usize] = value;
        }
        if delta < tol {
            break;
        }
    }
    pr
}

/// k-core decomposition: the core number of every live vertex (largest `k`
/// such that the vertex belongs to a subgraph of minimum degree `k`).
/// Tombstones get 0. Classic peeling algorithm, O(m).
pub fn k_core(g: &Graph) -> Vec<usize> {
    let cap = g.capacity();
    let mut degree: Vec<usize> = (0..cap as VertexId)
        .map(|v| if g.is_alive(v) { g.degree(v) } else { 0 })
        .collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue by current degree.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in g.vertices() {
        buckets[degree[v as usize]].push(v);
    }
    let mut core = vec![0usize; cap];
    let mut removed = vec![false; cap];
    let mut k = 0usize;
    for d in 0..=max_deg {
        k = k.max(d);
        let mut stack = std::mem::take(&mut buckets[d]);
        while let Some(v) = stack.pop() {
            if removed[v as usize] || degree[v as usize] > d {
                // Degree grew stale; it will be revisited from its true bucket.
                continue;
            }
            removed[v as usize] = true;
            core[v as usize] = k;
            for &(u, _) in g.neighbors(v) {
                if !removed[u as usize] && degree[u as usize] > d {
                    degree[u as usize] -= 1;
                    if degree[u as usize] == d {
                        stack.push(u);
                    } else {
                        buckets[degree[u as usize]].push(u);
                    }
                }
            }
        }
    }
    core
}

/// Weighted single-source Δ-stepping (Meyer & Sanders): bucketed label
/// correcting, the classic parallel-friendly SSSP. Sequential reference used
/// to validate the engine's Δ-stepping initial-approximation option.
pub fn delta_stepping(g: &Graph, source: VertexId, delta: Weight) -> Vec<Weight> {
    assert!(delta >= 1, "delta must be at least 1");
    let cap = g.capacity();
    let mut dist = vec![INF; cap];
    if !g.is_alive(source) {
        return dist;
    }
    dist[source as usize] = 0;
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![source]];
    let mut bi = 0usize;
    while bi < buckets.len() {
        // Settle the current bucket to a fixed point (light edges may
        // reinsert into it).
        let mut settled: Vec<VertexId> = Vec::new();
        while let Some(v) = buckets[bi].pop() {
            let dv = dist[v as usize];
            if dv == INF || (dv / delta) as usize != bi {
                continue; // stale entry
            }
            settled.push(v);
            for &(u, w) in g.neighbors(v) {
                let nd = dv.saturating_add(w);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    let b = (nd / delta) as usize;
                    if buckets.len() <= b {
                        buckets.resize(b + 1, Vec::new());
                    }
                    buckets[b].push(u);
                }
            }
        }
        // Advance past any holes.
        bi += 1;
        while bi < buckets.len() && buckets[bi].is_empty() {
            bi += 1;
        }
    }
    dist
}

/// Sampled approximate closeness (Eppstein-Wang style): estimates
/// `sum_u d(v, u)` from `k` uniformly sampled pivot sources as
/// `n/k * sum_pivots d(v, p)` and inverts it. The papers cite this line of
/// work (Okamoto et al.) for scaling closeness beyond exact APSP; the
/// estimator converges as `O(sqrt(log n / k))` relative error on the distance
/// sums. Unreachable pivot-vertex pairs contribute nothing. Returns 0.0 for
/// vertices no pivot reaches.
pub fn approx_closeness(g: &Graph, k: usize, seed: u64) -> Vec<f64> {
    use rand::prelude::*;
    let cap = g.capacity();
    let alive: Vec<VertexId> = g.vertices().collect();
    let n = alive.len();
    if n == 0 || k == 0 {
        return vec![0.0; cap];
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut pivots = alive.clone();
    pivots.shuffle(&mut rng);
    pivots.truncate(k.min(n));
    let mut sums = vec![0.0f64; cap];
    let mut reached = vec![0usize; cap];
    for &p in &pivots {
        let dist = crate::algo::dijkstra(g, p);
        for &v in &alive {
            let d = dist[v as usize];
            if d != INF && v != p {
                sums[v as usize] += d as f64;
                reached[v as usize] += 1;
            }
        }
    }
    let scale = n as f64 / pivots.len() as f64;
    (0..cap)
        .map(|v| {
            // aa-lint: allow(AA03, an unreached vertex has an exactly-zero distance sum by construction)
            if reached[v] == 0 || sums[v] == 0.0 {
                0.0
            } else {
                1.0 / (sums[v] * scale)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::generators;

    #[test]
    fn degree_centrality_of_star() {
        let g = generators::star(5);
        let dc = degree_centrality(&g);
        assert!((dc[0] - 1.0).abs() < 1e-12);
        assert!((dc[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn betweenness_of_path_center() {
        // Path 0-1-2-3-4: vertex 2 lies on 0-3, 0-4, 1-3, 1-4, plus 0..1 etc.
        let g = generators::path(5);
        let bc = betweenness_unweighted(&g);
        assert!((bc[0] - 0.0).abs() < 1e-12);
        assert!(
            (bc[2] - 4.0).abs() < 1e-12,
            "center: pairs (0,3),(0,4),(1,3),(1,4)"
        );
        assert!((bc[1] - 3.0).abs() < 1e-12, "pairs (0,2),(0,3),(0,4)");
    }

    #[test]
    fn betweenness_of_star_center_is_all_pairs() {
        let g = generators::star(6);
        let bc = betweenness_unweighted(&g);
        // All C(5,2) = 10 leaf pairs route through the hub.
        assert!((bc[0] - 10.0).abs() < 1e-12);
        for leaf in bc.iter().skip(1) {
            assert!(leaf.abs() < 1e-12);
        }
    }

    #[test]
    fn betweenness_splits_equal_paths() {
        let g = generators::cycle(4); // two equal paths between opposite corners
        let bc = betweenness_unweighted(&g);
        // Each vertex carries half of the single opposite pair.
        for (v, &b) in bc.iter().enumerate() {
            assert!((b - 0.5).abs() < 1e-12, "vertex {v}: {b}");
        }
    }

    #[test]
    fn eigenvector_centrality_hub_dominates() {
        let g = generators::star(8);
        let x = eigenvector_centrality(&g, 200, 1e-12).unwrap();
        for leaf in 1..8 {
            assert!(x[0] > x[leaf], "hub must dominate");
        }
        let norm: f64 = x.iter().map(|a| a * a).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvector_on_empty_and_edgeless() {
        assert!(eigenvector_centrality(&Graph::new(), 10, 1e-9).is_none());
        let g = Graph::with_vertices(3);
        let x = eigenvector_centrality(&g, 10, 1e-9).unwrap();
        assert!(x.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        let g = generators::barabasi_albert(200, 2, 1, 3);
        let pr = pagerank(&g, 0.85, 100, 1e-10);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass conserved: {total}");
        let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        let mean = total / g.vertex_count() as f64;
        assert!(pr[hub as usize] > 3.0 * mean, "hubs accumulate rank");
    }

    #[test]
    fn pagerank_handles_dangling_mass() {
        let mut g = generators::path(3);
        let isolated = g.add_vertex();
        let pr = pagerank(&g, 0.85, 100, 1e-12);
        assert!(
            pr[isolated as usize] > 0.0,
            "teleport reaches isolated vertices"
        );
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn k_core_of_clique_plus_tail() {
        let mut g = generators::complete(4); // 3-core
        let t = g.add_vertex();
        g.add_edge(t, 0, 1); // degree-1 tail
        let core = k_core(&g);
        for (v, &k) in core.iter().enumerate().take(4) {
            assert_eq!(k, 3, "clique member {v}");
        }
        assert_eq!(core[t as usize], 1);
    }

    #[test]
    fn k_core_of_tree_is_one() {
        let g = generators::star(10);
        let core = k_core(&g);
        for v in g.vertices() {
            assert_eq!(core[v as usize], 1);
        }
    }

    #[test]
    fn k_core_skips_tombstones() {
        let mut g = generators::complete(5);
        g.remove_vertex(2);
        let core = k_core(&g);
        assert_eq!(core[2], 0);
        for v in g.vertices() {
            assert_eq!(core[v as usize], 3);
        }
    }

    #[test]
    fn approx_closeness_with_all_pivots_is_exact() {
        let g = generators::barabasi_albert(80, 2, 1, 41);
        let approx = approx_closeness(&g, 80, 1);
        let exact = algo::exact_closeness(&g);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 1e-12, "{a} vs {e}");
        }
    }

    #[test]
    fn approx_closeness_ranks_top_vertices_well() {
        let g = generators::barabasi_albert(300, 2, 1, 43);
        let approx = approx_closeness(&g, 60, 2);
        let exact = algo::exact_closeness(&g);
        let top = |scores: &[f64]| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..scores.len()).collect();
            idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            idx.truncate(10);
            idx
        };
        let overlap = top(&approx)
            .iter()
            .filter(|v| top(&exact).contains(v))
            .count();
        assert!(overlap >= 6, "top-10 overlap only {overlap}");
    }

    #[test]
    fn approx_closeness_edge_cases() {
        assert!(approx_closeness(&Graph::new(), 5, 1).is_empty());
        let g = Graph::with_vertices(3); // no edges
        let a = approx_closeness(&g, 3, 1);
        assert_eq!(a, vec![0.0; 3]);
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        let g = generators::erdos_renyi_gnm(120, 400, 9, 31);
        for delta in [1u32, 3, 8, 100] {
            for s in [0u32, 60, 119] {
                assert_eq!(
                    delta_stepping(&g, s, delta),
                    algo::dijkstra(&g, s),
                    "delta={delta} source={s}"
                );
            }
        }
    }

    #[test]
    fn delta_stepping_on_disconnected() {
        let mut g = generators::path(6);
        g.remove_edge(2, 3);
        let d = delta_stepping(&g, 0, 2);
        assert_eq!(d[2], 2);
        assert_eq!(d[5], INF);
    }
}
