//! Maximal clique enumeration — the sequential oracle.
//!
//! The anytime-anywhere framework family includes a maximal-clique-
//! enumeration instantiation (the papers cite it alongside the closeness
//! work). This module provides the sequential reference: Bron–Kerbosch with
//! pivoting, plus the vertex-ordered variant whose per-vertex subproblems the
//! distributed implementation in `aa-core` mirrors.

use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// Enumerates all maximal cliques of `g` (Bron–Kerbosch with pivoting).
/// Each clique is returned sorted ascending; the list is sorted for
/// deterministic comparisons. Candidate sets are `BTreeSet`s so every
/// iteration — pivot selection included — walks vertices in id order: the
/// recursion tree, not just the final output, replays identically (the
/// sim-as-oracle property AA08 enforces). Intended for validation on small/medium graphs.
pub fn maximal_cliques(g: &Graph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    let p: BTreeSet<VertexId> = g.vertices().collect();
    let mut r = Vec::new();
    bron_kerbosch(g, &mut r, p, BTreeSet::new(), &mut out);
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort();
    out
}

fn neighbors_set(g: &Graph, v: VertexId) -> BTreeSet<VertexId> {
    g.neighbors(v).iter().map(|&(u, _)| u).collect()
}

fn bron_kerbosch(
    g: &Graph,
    r: &mut Vec<VertexId>,
    p: BTreeSet<VertexId>,
    x: BTreeSet<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
) {
    if p.is_empty() && x.is_empty() {
        if !r.is_empty() {
            out.push(r.clone());
        }
        return;
    }
    // Pivot: the vertex of P ∪ X with the most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| {
            let nu = neighbors_set(g, u);
            let count = p.intersection(&nu).count();
            (count, std::cmp::Reverse(u)) // deterministic tie-break
        })
        // aa-lint: allow(AA01, guarded by the is_empty early-return at the top of the recursion)
        .expect("P ∪ X non-empty");
    let pivot_nbrs = neighbors_set(g, pivot);
    let candidates: Vec<VertexId> = {
        let mut c: Vec<VertexId> = p.difference(&pivot_nbrs).copied().collect();
        c.sort_unstable();
        c
    };
    let mut p = p;
    let mut x = x;
    for v in candidates {
        let nv = neighbors_set(g, v);
        r.push(v);
        bron_kerbosch(
            g,
            r,
            p.intersection(&nv).copied().collect(),
            x.intersection(&nv).copied().collect(),
            out,
        );
        r.pop();
        p.remove(&v);
        x.insert(v);
    }
}

/// The cliques for which `v` is the minimum-id member: exactly the maximal
/// cliques of the graph induced on `{v} ∪ {u ∈ N(v) : u > v}` that contain
/// `v` and are maximal in the full graph. Partitioning enumeration by this
/// rule covers every maximal clique exactly once — the decomposition the
/// distributed enumerator ships to the owner of `v`.
pub fn cliques_rooted_at(g: &Graph, v: VertexId) -> Vec<Vec<VertexId>> {
    let nv: BTreeSet<VertexId> = g
        .neighbors(v)
        .iter()
        .map(|&(u, _)| u)
        .filter(|&u| u > v)
        .collect();
    // X starts with the smaller neighbours: any clique extendable by one of
    // them is *not* rooted at v.
    let x: BTreeSet<VertexId> = g
        .neighbors(v)
        .iter()
        .map(|&(u, _)| u)
        .filter(|&u| u < v)
        .collect();
    let mut out = Vec::new();
    let mut r = vec![v];
    bron_kerbosch(g, &mut r, nv, x, &mut out);
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_plus_tail() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 3, 1);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn complete_graph_is_one_clique() {
        let g = generators::complete(6);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn path_cliques_are_edges() {
        let g = generators::path(5);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques.len(), 4);
        assert!(cliques.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn isolated_vertices_are_trivial_cliques() {
        let g = Graph::with_vertices(3);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn tombstones_excluded() {
        let mut g = generators::complete(4);
        g.remove_vertex(1);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![vec![0, 2, 3]]);
    }

    #[test]
    fn rooted_decomposition_covers_exactly_once() {
        let g = generators::erdos_renyi_gnm(40, 160, 1, 11);
        let all = maximal_cliques(&g);
        let mut rooted: Vec<Vec<VertexId>> = Vec::new();
        for v in g.vertices() {
            rooted.extend(cliques_rooted_at(&g, v));
        }
        rooted.sort();
        assert_eq!(rooted, all, "rooted union must equal the full enumeration");
    }

    #[test]
    fn rooted_at_min_vertex_of_each_clique() {
        let g = generators::planted_partition(3, 8, 0.8, 0.05, 1, 13);
        for v in g.vertices() {
            for clique in cliques_rooted_at(&g, v) {
                assert_eq!(clique[0], v, "{clique:?} must be rooted at {v}");
            }
        }
    }

    #[test]
    fn known_count_on_moon_moser_like_graph() {
        // K_{3,3,3} complement-ish check is heavy; instead verify the clique
        // count of a cycle with chords. C5 has 5 maximal cliques (edges).
        let g = generators::cycle(5);
        assert_eq!(maximal_cliques(&g).len(), 5);
    }
}
