//! Louvain community detection, from scratch.
//!
//! The papers' CutEdge-PS experiments add batches of vertices "extracted from
//! a larger graph using Pajek's Louvain community extraction method". This
//! module reimplements Louvain (Blondel et al. 2008): repeated local moving of
//! vertices to the neighbouring community with the best modularity gain,
//! followed by graph aggregation, until modularity stops improving.

use crate::graph::{Graph, VertexId};
use std::collections::HashMap;

/// Result of community detection: a community label per vertex id slot
/// (tombstones get `usize::MAX`) and the final modularity.
#[derive(Debug, Clone)]
pub struct Communities {
    /// Community id (dense, `0..count`) per vertex slot.
    pub label: Vec<usize>,
    /// Number of communities.
    pub count: usize,
    /// Modularity of the returned partition.
    pub modularity: f64,
}

impl Communities {
    /// Vertices of each community, indexed by community id.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.label.iter().enumerate() {
            if c != usize::MAX {
                out[c].push(v as VertexId);
            }
        }
        out
    }
}

/// Modularity of a labelled partition of `g` (weighted):
/// `Q = Σ_c (in_c / 2m - (tot_c / 2m)^2)`.
pub fn modularity(g: &Graph, label: &[usize]) -> f64 {
    let two_m = 2.0 * g.total_edge_weight() as f64;
    // aa-lint: allow(AA03, 2m is exactly zero only for an edgeless graph; guard against dividing by it)
    if two_m == 0.0 {
        return 0.0;
    }
    let ncomm = label
        .iter()
        .filter(|&&c| c != usize::MAX)
        .max()
        .map_or(0, |&c| c + 1);
    let mut internal = vec![0.0f64; ncomm]; // 2 * weight inside community
    let mut total = vec![0.0f64; ncomm]; // sum of degrees (weighted)
    for v in g.vertices() {
        let c = label[v as usize];
        for &(u, w) in g.neighbors(v) {
            total[c] += w as f64;
            if label[u as usize] == c {
                internal[c] += w as f64;
            }
        }
    }
    (0..ncomm)
        .map(|c| internal[c] / two_m - (total[c] / two_m).powi(2))
        .sum()
}

/// Internal working graph for the aggregation phase: dense weighted adjacency
/// maps with self-loop weights (contracted intra-community edges).
struct WorkGraph {
    adj: Vec<HashMap<usize, f64>>, // neighbor -> weight (no self entries)
    self_loop: Vec<f64>,           // weight of self loops (counted once)
    total_weight: f64,             // m (sum of edge weights incl. self loops)
}

impl WorkGraph {
    fn from_graph(g: &Graph) -> (Self, Vec<usize>) {
        // Map live vertices to dense indices.
        let mut dense = vec![usize::MAX; g.capacity()];
        let mut idx = 0usize;
        for v in g.vertices() {
            dense[v as usize] = idx;
            idx += 1;
        }
        let mut adj = vec![HashMap::new(); idx];
        let mut total = 0.0;
        for (u, v, w) in g.edges() {
            let (du, dv) = (dense[u as usize], dense[v as usize]);
            *adj[du].entry(dv).or_insert(0.0) += w as f64;
            *adj[dv].entry(du).or_insert(0.0) += w as f64;
            total += w as f64;
        }
        (
            WorkGraph {
                self_loop: vec![0.0; idx],
                adj,
                total_weight: total,
            },
            dense,
        )
    }

    fn n(&self) -> usize {
        self.adj.len()
    }

    fn weighted_degree(&self, v: usize) -> f64 {
        self.adj[v].values().sum::<f64>() + 2.0 * self.self_loop[v]
    }

    /// One pass of local moving. Returns (labels, improved).
    fn local_moving(&self) -> (Vec<usize>, bool) {
        let n = self.n();
        let two_m = 2.0 * self.total_weight;
        let mut comm: Vec<usize> = (0..n).collect();
        let mut comm_tot: Vec<f64> = (0..n).map(|v| self.weighted_degree(v)).collect();
        let mut improved = false;
        // aa-lint: allow(AA03, 2m is exactly zero only for an edgeless graph; guard against dividing by it)
        if two_m == 0.0 {
            return (comm, false);
        }
        let mut moved = true;
        let mut rounds = 0;
        while moved && rounds < 32 {
            moved = false;
            rounds += 1;
            for v in 0..n {
                let cur = comm[v];
                let k_v = self.weighted_degree(v);
                // Weight from v to each neighbouring community.
                let mut to_comm: HashMap<usize, f64> = HashMap::new();
                for (&u, &w) in &self.adj[v] {
                    *to_comm.entry(comm[u]).or_insert(0.0) += w;
                }
                let w_cur = to_comm.get(&cur).copied().unwrap_or(0.0);
                comm_tot[cur] -= k_v;
                // Deterministic scan order: hash-map iteration order must not
                // influence tie-breaking.
                let mut to_comm: Vec<(usize, f64)> = to_comm.into_iter().collect();
                to_comm.sort_unstable_by_key(|&(c, _)| c);
                // Gain of moving v into community c (relative, constant terms
                // dropped): w_{v->c} - k_v * tot_c / 2m.
                let mut best = (cur, w_cur - k_v * comm_tot[cur] / two_m);
                for &(c, w_vc) in &to_comm {
                    if c == cur {
                        continue;
                    }
                    let gain = w_vc - k_v * comm_tot[c] / two_m;
                    if gain > best.1 + 1e-12 {
                        best = (c, gain);
                    }
                }
                comm_tot[best.0] += k_v;
                if best.0 != cur {
                    comm[v] = best.0;
                    moved = true;
                    improved = true;
                }
            }
        }
        (comm, improved)
    }

    /// Contracts communities into super-vertices.
    fn aggregate(&self, comm: &[usize]) -> (WorkGraph, Vec<usize>) {
        // Renumber communities densely.
        let mut renum: HashMap<usize, usize> = HashMap::new();
        let mut dense_comm = vec![0usize; comm.len()];
        for (v, &c) in comm.iter().enumerate() {
            let next = renum.len();
            let id = *renum.entry(c).or_insert(next);
            dense_comm[v] = id;
        }
        let nc = renum.len();
        let mut adj = vec![HashMap::new(); nc];
        let mut self_loop = vec![0.0; nc];
        for v in 0..self.n() {
            let cv = dense_comm[v];
            self_loop[cv] += self.self_loop[v];
            for (&u, &w) in &self.adj[v] {
                if u < v {
                    continue; // each undirected edge once
                }
                let cu = dense_comm[u];
                if cu == cv {
                    self_loop[cv] += w;
                } else {
                    *adj[cv].entry(cu).or_insert(0.0) += w;
                    *adj[cu].entry(cv).or_insert(0.0) += w;
                }
            }
        }
        (
            WorkGraph {
                adj,
                self_loop,
                total_weight: self.total_weight,
            },
            dense_comm,
        )
    }
}

/// Runs Louvain on `g`. Deterministic (fixed vertex scan order).
pub fn louvain(g: &Graph) -> Communities {
    let (mut work, dense) = WorkGraph::from_graph(g);
    // membership[i] = community (in current work graph) of dense vertex i
    let mut membership: Vec<usize> = (0..work.n()).collect();
    loop {
        let (comm, improved) = work.local_moving();
        if !improved {
            break;
        }
        let (next, dense_comm) = work.aggregate(&comm);
        for m in membership.iter_mut() {
            *m = dense_comm[comm[*m]];
        }
        let stalled = next.n() == work.n();
        work = next;
        if stalled {
            break;
        }
    }
    // Map back to vertex-id slots and renumber densely.
    let mut renum: HashMap<usize, usize> = HashMap::new();
    let mut label = vec![usize::MAX; g.capacity()];
    let mut di = 0usize;
    for v in 0..g.capacity() {
        if dense[v] != usize::MAX {
            let c = membership[di];
            let next = renum.len();
            label[v] = *renum.entry(c).or_insert(next);
            di += 1;
        }
    }
    let count = renum.len();
    let q = modularity(g, &label);
    Communities {
        label,
        count,
        modularity: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn two_cliques_found() {
        // Two K5s joined by one edge: Louvain must find exactly the cliques.
        let mut g = Graph::with_vertices(10);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                g.add_edge(u, v, 1);
                g.add_edge(u + 5, v + 5, 1);
            }
        }
        g.add_edge(4, 5, 1);
        let c = louvain(&g);
        assert_eq!(c.count, 2);
        for v in 1..5 {
            assert_eq!(c.label[v], c.label[0]);
        }
        for v in 6..10 {
            assert_eq!(c.label[v], c.label[5]);
        }
        assert_ne!(c.label[0], c.label[5]);
        assert!(c.modularity > 0.3, "Q = {}", c.modularity);
    }

    #[test]
    fn planted_partition_recovered() {
        let g = generators::planted_partition(4, 20, 0.6, 0.01, 1, 77);
        let truth = generators::planted_partition_labels(4, 20);
        let c = louvain(&g);
        assert!(
            c.count >= 3 && c.count <= 6,
            "found {} communities",
            c.count
        );
        // Check strong agreement: most intra-truth pairs share a Louvain label.
        let mut agree = 0usize;
        let mut total = 0usize;
        for u in 0..80 {
            for v in (u + 1)..80 {
                if truth[u] == truth[v] {
                    total += 1;
                    if c.label[u] == c.label[v] {
                        agree += 1;
                    }
                }
            }
        }
        assert!(
            agree as f64 > 0.8 * total as f64,
            "only {agree}/{total} intra pairs recovered"
        );
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = generators::complete(6);
        let label = vec![0usize; 6];
        assert!(modularity(&g, &label).abs() < 1e-12);
    }

    #[test]
    fn modularity_of_singletons_is_negative() {
        let g = generators::complete(6);
        let label: Vec<usize> = (0..6).collect();
        assert!(modularity(&g, &label) < 0.0);
    }

    #[test]
    fn empty_graph_handled() {
        let g = Graph::with_vertices(3);
        let c = louvain(&g);
        assert_eq!(c.count, 3, "isolated vertices stay singleton");
        assert_eq!(c.modularity, 0.0);
    }

    #[test]
    fn members_partition_vertices() {
        let g = generators::barabasi_albert(60, 2, 1, 5);
        let c = louvain(&g);
        let members = c.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 60);
        assert!(members.iter().all(|m| !m.is_empty()));
    }

    #[test]
    fn tombstones_excluded() {
        let mut g = generators::complete(5);
        g.remove_vertex(2);
        let c = louvain(&g);
        assert_eq!(c.label[2], usize::MAX);
        assert_eq!(c.members().iter().map(|m| m.len()).sum::<usize>(), 4);
    }
}
