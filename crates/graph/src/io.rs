//! Graph readers/writers: whitespace edge lists and Pajek `.net`.
//!
//! The paper generated its scale-free inputs with the Pajek tool, so the
//! Pajek format is supported for interoperability; edge lists cover everything
//! else (SNAP-style datasets, ad-hoc dumps).

use crate::graph::{Graph, VertexId, Weight};
use std::io::{BufRead, Write};

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input with a line number and message.
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse<T: std::str::FromStr>(tok: &str, line: usize, what: &str) -> Result<T, IoError> {
    tok.parse().map_err(|_| IoError::Parse {
        line,
        msg: format!("invalid {what}: {tok:?}"),
    })
}

/// Unwraps the next whitespace token of a line, turning "token missing" into
/// a line-numbered parse error instead of a panic.
fn next_tok<'a, I: Iterator<Item = &'a str>>(
    toks: &mut I,
    line: usize,
    what: &str,
) -> Result<&'a str, IoError> {
    toks.next().ok_or_else(|| IoError::Parse {
        line,
        msg: format!("missing {what}"),
    })
}

/// Reads a whitespace edge list: one `u v [w]` triple per line, `#`-comments
/// allowed, 0-based ids, default weight 1. Vertices are created as needed.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, IoError> {
    let mut g = Graph::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut toks = content.split_whitespace();
        let u: VertexId = parse(
            next_tok(&mut toks, lineno, "source id")?,
            lineno,
            "source id",
        )?;
        let v: VertexId = parse(
            next_tok(&mut toks, lineno, "target id")?,
            lineno,
            "target id",
        )?;
        let w: Weight = match toks.next() {
            Some(t) => parse(t, lineno, "weight")?,
            None => 1,
        };
        while g.capacity() <= u.max(v) as usize {
            g.add_vertex();
        }
        g.add_edge(u, v, w);
    }
    Ok(g)
}

/// Writes a whitespace edge list (`u v w` per line, 0-based ids).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    for (u, v, w) in g.edges() {
        writeln!(writer, "{u} {v} {w}")?;
    }
    Ok(())
}

/// Reads a Pajek `.net` file (`*Vertices n` then `*Edges` / `*Arcs` sections
/// with 1-based ids and optional weights). Arcs are treated as undirected
/// edges, matching the papers' undirected experiments.
pub fn read_pajek<R: BufRead>(reader: R) -> Result<Graph, IoError> {
    let mut g = Graph::new();
    let mut in_edges = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let content = line.trim();
        if content.is_empty() || content.starts_with('%') {
            continue;
        }
        let lower = content.to_ascii_lowercase();
        if lower.starts_with("*vertices") {
            let n: usize = parse(
                lower.split_whitespace().nth(1).ok_or(IoError::Parse {
                    line: lineno,
                    msg: "missing vertex count".into(),
                })?,
                lineno,
                "vertex count",
            )?;
            g = Graph::with_vertices(n);
            in_edges = false;
            continue;
        }
        if lower.starts_with("*edges") || lower.starts_with("*arcs") {
            in_edges = true;
            continue;
        }
        if lower.starts_with('*') || !in_edges {
            continue; // vertex labels / unknown sections
        }
        let mut toks = content.split_whitespace();
        let u: u32 = parse(
            next_tok(&mut toks, lineno, "source id")?,
            lineno,
            "source id",
        )?;
        let v: u32 = parse(
            next_tok(&mut toks, lineno, "target id")?,
            lineno,
            "target id",
        )?;
        if u == 0 || v == 0 {
            return Err(IoError::Parse {
                line: lineno,
                msg: "pajek ids are 1-based".into(),
            });
        }
        let w: Weight = match toks.next() {
            Some(t) => parse::<f64>(t, lineno, "weight")?.round().max(1.0) as Weight,
            None => 1,
        };
        g.add_edge(u - 1, v - 1, w);
    }
    Ok(g)
}

/// Writes a Pajek `.net` file with 1-based ids.
pub fn write_pajek<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "*Vertices {}", g.capacity())?;
    writeln!(writer, "*Edges")?;
    for (u, v, w) in g.edges() {
        writeln!(writer, "{} {} {}", u + 1, v + 1, w)?;
    }
    Ok(())
}

/// Reads a METIS `.graph` file: header `n m [fmt]`, then one line per vertex
/// listing its 1-based neighbours (`fmt` ending in 1 ⇒ `neighbour weight`
/// pairs). `%`-comment lines are skipped. Vertex-weight formats (`fmt` 10x)
/// are not supported.
pub fn read_metis<R: BufRead>(reader: R) -> Result<Graph, IoError> {
    let mut g = Graph::new();
    let mut expected_edges = 0usize;
    let mut has_edge_weights = false;
    let mut vertex = 0u32;
    let mut header_seen = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let content = line.trim();
        if content.starts_with('%') {
            continue;
        }
        if !header_seen {
            if content.is_empty() {
                continue;
            }
            header_seen = true;
            let mut toks = content.split_whitespace();
            let n: usize = parse(
                next_tok(&mut toks, lineno, "vertex count")?,
                lineno,
                "vertex count",
            )?;
            expected_edges = parse(
                next_tok(&mut toks, lineno, "edge count")?,
                lineno,
                "edge count",
            )?;
            if let Some(fmt) = toks.next() {
                if fmt.len() >= 2 && &fmt[..fmt.len() - 1] != "0" && fmt.starts_with('1') {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: format!("unsupported METIS fmt {fmt:?} (vertex weights)"),
                    });
                }
                has_edge_weights = fmt.ends_with('1');
            }
            g = Graph::with_vertices(n);
            continue;
        }
        if vertex as usize >= g.capacity() {
            if content.is_empty() {
                continue; // trailing blank lines
            }
            return Err(IoError::Parse {
                line: lineno,
                msg: "more adjacency lines than vertices".into(),
            });
        }
        let mut toks = content.split_whitespace();
        while let Some(t) = toks.next() {
            let nbr: u32 = parse(t, lineno, "neighbour id")?;
            if nbr == 0 || nbr as usize > g.capacity() {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("neighbour {nbr} out of range (ids are 1-based)"),
                });
            }
            let w: Weight = if has_edge_weights {
                parse(
                    toks.next().ok_or(IoError::Parse {
                        line: lineno,
                        msg: "missing edge weight".into(),
                    })?,
                    lineno,
                    "edge weight",
                )?
            } else {
                1
            };
            // Each undirected edge appears in both adjacency lines; insert once.
            if nbr - 1 > vertex {
                g.add_edge(vertex, nbr - 1, w);
            }
        }
        vertex += 1;
    }
    if g.edge_count() != expected_edges {
        return Err(IoError::Parse {
            line: 0,
            msg: format!(
                "header promised {expected_edges} edges, found {}",
                g.edge_count()
            ),
        });
    }
    Ok(g)
}

/// Writes a METIS `.graph` file (fmt `001`: edge weights, 1-based ids).
/// Tombstoned slots are emitted as isolated vertices to keep ids aligned.
pub fn write_metis<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{} {} 001", g.capacity(), g.edge_count())?;
    for v in 0..g.capacity() as VertexId {
        let mut first = true;
        if g.is_alive(v) {
            for &(u, w) in g.neighbors(v) {
                if !first {
                    write!(writer, " ")?;
                }
                write!(writer, "{} {}", u + 1, w)?;
                first = false;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::io::Cursor;

    #[test]
    fn edge_list_roundtrip() {
        let g = generators::barabasi_albert(50, 2, 7, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(Cursor::new(buf)).unwrap();
        let mut eg: Vec<_> = g.edges().collect();
        let mut eh: Vec<_> = h.edges().collect();
        eg.sort_unstable();
        eh.sort_unstable();
        assert_eq!(eg, eh);
    }

    #[test]
    fn edge_list_comments_and_default_weight() {
        let input = "# header\n0 1\n1 2 5 # trailing\n\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 2), Some(5));
    }

    #[test]
    fn edge_list_bad_token_reports_line() {
        let err = read_edge_list(Cursor::new("0 1\n0 x\n")).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn pajek_roundtrip() {
        let g = generators::erdos_renyi_gnm(30, 60, 4, 9);
        let mut buf = Vec::new();
        write_pajek(&g, &mut buf).unwrap();
        let h = read_pajek(Cursor::new(buf)).unwrap();
        assert_eq!(h.capacity(), 30);
        let mut eg: Vec<_> = g.edges().collect();
        let mut eh: Vec<_> = h.edges().collect();
        eg.sort_unstable();
        eh.sort_unstable();
        assert_eq!(eg, eh);
    }

    #[test]
    fn pajek_rejects_zero_based_ids() {
        let input = "*Vertices 2\n*Edges\n0 1\n";
        assert!(read_pajek(Cursor::new(input)).is_err());
    }

    #[test]
    fn pajek_arcs_become_undirected() {
        let input = "*Vertices 3\n*Arcs\n1 2 2.0\n2 3 1\n";
        let g = read_pajek(Cursor::new(input)).unwrap();
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_weight(0, 1), Some(2));
    }

    #[test]
    fn metis_roundtrip() {
        let g = generators::watts_strogatz(40, 2, 0.2, 5, 7);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let h = read_metis(Cursor::new(buf)).unwrap();
        let mut eg: Vec<_> = g.edges().collect();
        let mut eh: Vec<_> = h.edges().collect();
        eg.sort_unstable();
        eh.sort_unstable();
        assert_eq!(eg, eh);
    }

    #[test]
    fn metis_unweighted_format() {
        let input = "% a comment\n3 2\n2 3\n1\n1\n";
        let g = read_metis(Cursor::new(input)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(0, 2), Some(1));
    }

    #[test]
    fn metis_edge_count_mismatch_rejected() {
        let input = "3 5\n2\n1\n\n";
        assert!(read_metis(Cursor::new(input)).is_err());
    }

    #[test]
    fn metis_zero_based_neighbor_rejected() {
        let input = "2 1\n0\n\n";
        let err = read_metis(Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn metis_roundtrip_with_tombstones() {
        let mut g = generators::complete(5);
        g.remove_vertex(2);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let h = read_metis(Cursor::new(buf)).unwrap();
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(h.degree(2), 0, "tombstone becomes an isolated slot");
    }
}
