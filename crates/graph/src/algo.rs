//! Sequential reference algorithms.
//!
//! These are the oracles the distributed anytime-anywhere engine is validated
//! against: single-source Dijkstra, full APSP via repeated Dijkstra or
//! Floyd–Warshall, BFS, connected components, and exact closeness centrality.

use crate::graph::{Graph, VertexId, Weight, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest path distances from `source` via Dijkstra with a
/// binary heap. Indices are vertex id slots; tombstoned vertices get `INF`.
///
/// ```
/// use aa_graph::{algo, generators};
/// let g = generators::path(4); // 0-1-2-3
/// assert_eq!(algo::dijkstra(&g, 0), vec![0, 1, 2, 3]);
/// ```
pub fn dijkstra(g: &Graph, source: VertexId) -> Vec<Weight> {
    let mut dist = vec![INF; g.capacity()];
    if !g.is_alive(source) {
        return dist;
    }
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Dijkstra restricted to a subset of allowed vertices (used for local
/// sub-graph computations in tests). Vertices outside `allowed` are treated as
/// absent.
pub fn dijkstra_restricted(g: &Graph, source: VertexId, allowed: &[bool]) -> Vec<Weight> {
    let mut dist = vec![INF; g.capacity()];
    if !g.is_alive(source) || !allowed[source as usize] {
        return dist;
    }
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            if !allowed[v as usize] {
                continue;
            }
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// All-pairs shortest paths by running Dijkstra from every live vertex.
/// Row `u` is the distance vector of vertex `u`. O(n · (m log n)).
pub fn apsp_dijkstra(g: &Graph) -> Vec<Vec<Weight>> {
    (0..g.capacity() as VertexId)
        .map(|v| {
            if g.is_alive(v) {
                dijkstra(g, v)
            } else {
                vec![INF; g.capacity()]
            }
        })
        .collect()
}

/// All-pairs shortest paths via Floyd–Warshall. O(n³); a small-n cross-check
/// oracle for `apsp_dijkstra`.
pub fn apsp_floyd_warshall(g: &Graph) -> Vec<Vec<Weight>> {
    let n = g.capacity();
    let mut d = vec![vec![INF; n]; n];
    for v in g.vertices() {
        d[v as usize][v as usize] = 0;
    }
    for (u, v, w) in g.edges() {
        let (u, v) = (u as usize, v as usize);
        if w < d[u][v] {
            d[u][v] = w;
            d[v][u] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i][k];
            if dik == INF || i == k {
                continue; // k == i relaxes through d[i][i] = 0: a no-op
            }
            let (before_i, from_i) = d.split_at_mut(i);
            // aa-lint: allow(AA01, from_i is the suffix starting at i < n, so it has at least one row)
            let (row_i, after_i) = from_i.split_first_mut().expect("i < n");
            let row_k: &[u32] = if k < i {
                &before_i[k]
            } else {
                &after_i[k - i - 1]
            };
            for (dij, &dkj) in row_i.iter_mut().zip(row_k) {
                let through = dik.saturating_add(dkj);
                if through < *dij {
                    *dij = through;
                }
            }
        }
    }
    d
}

/// Unweighted BFS distances (hop counts) from `source`.
pub fn bfs(g: &Graph, source: VertexId) -> Vec<Weight> {
    let mut dist = vec![INF; g.capacity()];
    if !g.is_alive(source) {
        return dist;
    }
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if dist[v as usize] == INF {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components. Returns `(component_of, component_count)`;
/// tombstoned slots get `usize::MAX`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![usize::MAX; g.capacity()];
    let mut count = 0;
    for s in g.vertices() {
        if comp[s as usize] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s as usize] = count;
        while let Some(u) = stack.pop() {
            for &(v, _) in g.neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Closeness centrality of one vertex from its distance vector, using the
/// papers' definition `C(v) = 1 / Σ_u d(v, u)` over *reachable* `u ≠ v`.
/// Returns 0.0 for isolated vertices.
pub fn closeness_from_distances(dist: &[Weight], v: VertexId) -> f64 {
    let sum: u64 = dist
        .iter()
        .enumerate()
        .filter(|&(u, &d)| u != v as usize && d != INF)
        .map(|(_, &d)| d as u64)
        .sum();
    if sum == 0 {
        0.0
    } else {
        1.0 / sum as f64
    }
}

/// Harmonic closeness `H(v) = Σ_{u≠v} 1/d(v, u)`; robust to disconnection.
pub fn harmonic_from_distances(dist: &[Weight], v: VertexId) -> f64 {
    dist.iter()
        .enumerate()
        .filter(|&(u, &d)| u != v as usize && d != INF && d > 0)
        .map(|(_, &d)| 1.0 / d as f64)
        .sum()
}

/// Exact closeness centrality of all vertices (sequential oracle).
pub fn exact_closeness(g: &Graph) -> Vec<f64> {
    (0..g.capacity() as VertexId)
        .map(|v| {
            if g.is_alive(v) {
                closeness_from_distances(&dijkstra(g, v), v)
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dijkstra_on_path() {
        let g = generators::path(5);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = dijkstra(&g, 2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn dijkstra_weighted_prefers_cheap_detour() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 1, 1);
        let d = dijkstra(&g, 0);
        assert_eq!(d[1], 3, "detour 0-2-3-1 beats direct 0-1");
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let mut g = Graph::with_vertices(4);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn dijkstra_from_dead_vertex() {
        let mut g = generators::path(3);
        g.remove_vertex(1);
        let d = dijkstra(&g, 1);
        assert!(d.iter().all(|&x| x == INF));
    }

    #[test]
    fn dijkstra_restricted_blocks_paths() {
        let g = generators::path(5);
        let mut allowed = vec![true; 5];
        allowed[2] = false;
        let d = dijkstra_restricted(&g, 0, &allowed);
        assert_eq!(d[1], 1);
        assert_eq!(d[3], INF, "path blocked by disallowed vertex 2");
    }

    #[test]
    fn apsp_oracles_agree() {
        let g = generators::barabasi_albert(40, 2, 5, 17);
        let a = apsp_dijkstra(&g);
        let b = apsp_floyd_warshall(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn apsp_agree_after_vertex_removal() {
        let mut g = generators::erdos_renyi_gnm(30, 80, 3, 21);
        g.remove_vertex(7);
        g.remove_vertex(12);
        assert_eq!(apsp_dijkstra(&g), apsp_floyd_warshall(&g));
    }

    #[test]
    fn bfs_is_dijkstra_on_unit_weights() {
        let g = generators::barabasi_albert(60, 2, 1, 23);
        for s in [0u32, 5, 59] {
            assert_eq!(bfs(&g, s), dijkstra(&g, s));
        }
    }

    #[test]
    fn components_counted() {
        let mut g = Graph::with_vertices(6);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(3, 4, 1);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
    }

    #[test]
    fn closeness_star_center_highest() {
        let g = generators::star(10);
        let c = exact_closeness(&g);
        let center = c[0];
        for (v, &leaf) in c.iter().enumerate().skip(1) {
            assert!(center > leaf, "star center must dominate leaf {v}");
        }
        // Center: 9 neighbours at distance 1 -> C = 1/9.
        assert!((center - 1.0 / 9.0).abs() < 1e-12);
        // Leaf: 1 at distance 1, 8 at distance 2 -> C = 1/17.
        assert!((c[1] - 1.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_handles_disconnection() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(0, 1, 2);
        let d = dijkstra(&g, 0);
        let h = harmonic_from_distances(&d, 0);
        assert!((h - 0.5).abs() < 1e-12);
        assert_eq!(closeness_from_distances(&d, 0), 0.5);
    }

    #[test]
    fn closeness_isolated_vertex_is_zero() {
        let g = Graph::with_vertices(3);
        let c = exact_closeness(&g);
        assert_eq!(c, vec![0.0; 3]);
    }
}
