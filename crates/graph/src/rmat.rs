//! R-MAT / Kronecker-style recursive-matrix graph generator (Chakrabarti,
//! Zhan & Faloutsos), the standard HPC benchmark family (Graph500 uses the
//! same recursion). Produces skewed, community-ish graphs that stress the
//! partitioner differently than Barabási–Albert.

use crate::graph::{Graph, VertexId, Weight};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// R-MAT parameters: quadrant probabilities (must sum to 1) and noise.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (homophily).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Per-level multiplicative noise applied to the probabilities (0 = none).
    pub noise: f64,
}

impl Default for RmatParams {
    /// The widely used Graph500-ish parameterization.
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertex slots and (up to) `edges`
/// distinct undirected edges; self-loops and duplicates are re-drawn a
/// bounded number of times, so very dense requests may fall slightly short.
pub fn rmat(scale: u32, edges: usize, params: RmatParams, max_weight: Weight, seed: u64) -> Graph {
    assert!((1..31).contains(&scale), "scale out of range");
    let sum = params.a + params.b + params.c;
    assert!(
        sum < 1.0 + 1e-9 && sum > 0.0,
        "quadrant probabilities must leave room for d = 1 - a - b - c"
    );
    let n = 1usize << scale;
    let mut g = Graph::with_vertices(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut attempts = 0usize;
    let max_attempts = edges * 16;
    while g.edge_count() < edges && attempts < max_attempts {
        attempts += 1;
        let (u, v) = draw_edge(scale, &params, &mut rng);
        if u != v {
            let w = if max_weight <= 1 {
                1
            } else {
                rng.gen_range(1..=max_weight)
            };
            g.add_edge(u, v, w);
        }
    }
    g
}

fn draw_edge(scale: u32, p: &RmatParams, rng: &mut ChaCha8Rng) -> (VertexId, VertexId) {
    let (mut u, mut v) = (0u32, 0u32);
    for _ in 0..scale {
        // Jitter the quadrant probabilities per level.
        let mut jitter = |x: f64| x * (1.0 - p.noise + 2.0 * p.noise * rng.gen::<f64>());
        let (a, b, c) = (jitter(p.a), jitter(p.b), jitter(p.c));
        let d = jitter(1.0 - p.a - p.b - p.c);
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        u <<= 1;
        v <<= 1;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn rmat_basic_shape() {
        let g = rmat(8, 1000, RmatParams::default(), 1, 5);
        assert_eq!(g.capacity(), 256);
        assert!(
            g.edge_count() > 800,
            "only {} edges materialized",
            g.edge_count()
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(7, 400, RmatParams::default(), 3, 9);
        let b = rmat(7, 400, RmatParams::default(), 3, 9);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        let g = rmat(10, 4000, RmatParams::default(), 1, 13);
        let stats = metrics::degree_stats(&g);
        assert!(
            stats.max as f64 > 6.0 * stats.mean,
            "R-MAT must be skewed: max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn uniform_quadrants_are_roughly_erdos_renyi() {
        let params = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
        };
        let g = rmat(9, 2000, params, 1, 17);
        let stats = metrics::degree_stats(&g);
        assert!(
            (stats.max as f64) < 5.0 * stats.mean,
            "uniform recursion should not be heavily skewed: max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    #[should_panic(expected = "quadrant probabilities")]
    fn invalid_probabilities_rejected() {
        rmat(
            5,
            10,
            RmatParams {
                a: 0.8,
                b: 0.2,
                c: 0.2,
                noise: 0.0,
            },
            1,
            1,
        );
    }
}
