//! Structural graph metrics: degree statistics, clustering coefficients.
//!
//! Used to sanity-check that generated inputs have the properties the papers
//! assume (scale-free degree distributions, community structure) and by the
//! benchmark harness to report workload characteristics.

use crate::graph::{Graph, VertexId};

/// Degree distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Histogram: `histogram[d]` = number of vertices with degree `d`.
    pub histogram: Vec<usize>,
}

/// Computes degree statistics over live vertices.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    if degrees.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            histogram: Vec::new(),
        };
    }
    // aa-lint: allow(AA01, the empty-graph early-return above guarantees degrees is non-empty; covers max on the next line)
    let min = *degrees.iter().min().unwrap();
    let max = *degrees.iter().max().unwrap();
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    let mut histogram = vec![0usize; max + 1];
    for d in degrees {
        histogram[d] += 1;
    }
    DegreeStats {
        min,
        max,
        mean,
        histogram,
    }
}

/// Local clustering coefficient of vertex `v`: fraction of neighbour pairs
/// that are themselves connected.
pub fn local_clustering(g: &Graph, v: VertexId) -> f64 {
    let nbrs: Vec<VertexId> = g.neighbors(v).iter().map(|&(u, _)| u).collect();
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(nbrs[i], nbrs[j]) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Average local clustering coefficient over live vertices.
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.vertex_count();
    if n == 0 {
        return 0.0;
    }
    g.vertices().map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
}

/// Fits a power-law exponent to the degree distribution by the standard
/// maximum-likelihood estimator `alpha = 1 + n / Σ ln(d_i / (d_min - 0.5))`
/// over vertices with degree ≥ `d_min`. Returns `None` if too few samples.
pub fn power_law_alpha(g: &Graph, d_min: usize) -> Option<f64> {
    let samples: Vec<f64> = g
        .vertices()
        .map(|v| g.degree(v) as f64)
        .filter(|&d| d >= d_min as f64)
        .collect();
    if samples.len() < 10 {
        return None;
    }
    let denom: f64 = samples
        .iter()
        .map(|&d| (d / (d_min as f64 - 0.5)).ln())
        .sum();
    Some(1.0 + samples.len() as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_on_star() {
        let g = generators::star(6);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.histogram[1], 5);
        assert_eq!(s.histogram[5], 1);
    }

    #[test]
    fn degree_stats_empty() {
        let s = degree_stats(&crate::Graph::new());
        assert_eq!(s.max, 0);
        assert!(s.histogram.is_empty());
    }

    #[test]
    fn clustering_of_clique_is_one() {
        let g = generators::complete(5);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = generators::star(8);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0, "degree-1 vertex");
    }

    #[test]
    fn ba_alpha_in_plausible_range() {
        let g = generators::barabasi_albert(2000, 3, 1, 13);
        let alpha = power_law_alpha(&g, 3).unwrap();
        // BA graphs have alpha ≈ 3; MLE on finite samples lands near it.
        assert!(
            (2.0..4.5).contains(&alpha),
            "alpha {alpha} outside plausible scale-free range"
        );
    }

    #[test]
    fn alpha_needs_enough_samples() {
        let g = generators::path(5);
        assert!(power_law_alpha(&g, 10).is_none());
    }
}
