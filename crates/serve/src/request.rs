//! Request and response types for the resident server.
//!
//! Reads and writes share one backpressure vocabulary: every submission
//! resolves to `Accepted` / `Throttled{retry_after}` / `Shed` (the
//! aa-ingest contract, extended to the query path), and every admitted read
//! later resolves to exactly one [`ReadOutcome`] — served against a
//! published [`SnapshotFrame`](aa_core::SnapshotFrame), or shed with a
//! reason. Nothing ever hangs: resolution happens at a turn boundary, and
//! deadline expiry sheds a request the server can no longer serve in time.

use aa_core::SnapshotMeta;
use aa_graph::VertexId;
use aa_ingest::Admission;
use aa_query::TopKAnswer;

/// What a read wants from the published snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// The `k` highest-closeness vertices, descending.
    TopK(usize),
    /// Closeness and harmonic closeness of one vertex.
    Vertex(VertexId),
}

/// The payload of a served read.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadValue {
    /// The anytime top-k answer for [`ReadKind::TopK`]: ranked members plus
    /// a [`Confidence`](aa_query::Confidence) stating whether they are the
    /// proven-exact top-k or a bound-backed anytime superset description.
    /// Boxed so the rare large payload doesn't inflate every [`ReadOutcome`].
    TopK(Box<TopKAnswer>),
    /// Estimates for one vertex.
    Vertex {
        /// Closeness estimate (0.0 for dead/unreached slots).
        closeness: f64,
        /// Harmonic closeness estimate.
        harmonic: f64,
        /// Whether this row is frozen on a currently-down rank.
        stale: bool,
    },
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The read queue was at hard capacity.
    Capacity,
    /// The deadline passed (or provably could not be met at admission).
    Deadline,
    /// The per-turn write token budget was exhausted (tightened further in
    /// degraded mode).
    WriteBudget,
}

impl ShedReason {
    /// Metric label.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::Capacity => "capacity",
            ShedReason::Deadline => "deadline",
            ShedReason::WriteBudget => "write-budget",
        }
    }
}

/// Admission ticket returned by `submit_read`: the request id plus the
/// backpressure decision. A `Shed` ticket means the read was **not** queued
/// and will never produce a [`ReadOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadTicket {
    /// Server-assigned request id, echoed in the outcome.
    pub id: u64,
    /// Backpressure decision at submission time.
    pub admission: Admission,
}

/// Final resolution of an admitted read.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadOutcome {
    /// Served from a published snapshot frame.
    Served {
        /// Request id from the [`ReadTicket`].
        id: u64,
        /// Virtual µs between submission and service.
        latency_us: f64,
        /// True when the server was in degraded mode at service time; the
        /// `meta` stamp then carries the (finite) staleness bounds.
        degraded: bool,
        /// Consistency stamp of the frame the value was computed from.
        meta: SnapshotMeta,
        /// The requested value.
        value: ReadValue,
    },
    /// Shed after admission (deadline expiry while queued).
    Shed {
        /// Request id from the [`ReadTicket`].
        id: u64,
        /// Why it was shed.
        reason: ShedReason,
    },
}

impl ReadOutcome {
    /// The request id this outcome resolves.
    pub fn id(&self) -> u64 {
        match self {
            ReadOutcome::Served { id, .. } | ReadOutcome::Shed { id, .. } => *id,
        }
    }
}

/// Resolution of one submitted write.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOutcome {
    /// The op reached the ingest queue; its admission decision applies
    /// (`Accepted` and `Throttled` ops are buffered, `Shed` ops dropped at
    /// hard capacity).
    Ingest(Admission),
    /// Durable server: the op reached the ingest queue **and** was recorded
    /// in the write-ahead log under `seq`. It becomes crash-durable at the
    /// next turn's group commit — once a [`TurnReport`] reports
    /// `durable_seq >= seq`, the op survives `kill -9`; until then a crash
    /// may drop it (and a failed commit aborts it without applying it).
    ///
    /// [`TurnReport`]: crate::TurnReport
    Logged {
        /// WAL sequence number assigned to the op.
        seq: u64,
        /// The ingest queue's admission decision.
        admission: Admission,
    },
    /// Shed by the server before reaching the queue (token budget).
    Shed(ShedReason),
    /// Invalid op, rejected with an error; nothing was buffered.
    Rejected(String),
}

impl WriteOutcome {
    /// True when the op was buffered and will be applied (for a durable
    /// server, pending the next successful group commit).
    pub fn is_admitted(&self) -> bool {
        match self {
            WriteOutcome::Ingest(a) | WriteOutcome::Logged { admission: a, .. } => a.is_admitted(),
            WriteOutcome::Shed(_) | WriteOutcome::Rejected(_) => false,
        }
    }

    /// The WAL sequence number, when the op was logged by a durable server.
    pub fn logged_seq(&self) -> Option<u64> {
        match self {
            WriteOutcome::Logged { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

/// A client operation a load generator can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Submit a read.
    Read(ReadKind),
    /// Submit a write.
    Write(aa_ingest::UpdateOp),
}
