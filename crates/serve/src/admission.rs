//! Per-class token budgets and the serve-side admission configuration.

use aa_ingest::IngestConfig;

/// A per-turn token bucket: `refill` tokens are added at each turn
/// boundary, capped at `burst`; serving one request takes one token.
/// Integer arithmetic keeps replenishment deterministic.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    refill: u32,
    burst: u32,
    tokens: u32,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(refill: u32, burst: u32) -> Self {
        TokenBucket {
            refill,
            burst,
            tokens: burst,
        }
    }

    /// Adds `amount` tokens, capped at the burst size.
    pub fn refill_by(&mut self, amount: u32) {
        self.tokens = (self.tokens.saturating_add(amount)).min(self.burst);
    }

    /// Adds the configured per-turn refill, capped at the burst size.
    pub fn refill(&mut self) {
        self.refill_by(self.refill);
    }

    /// Takes one token if available.
    pub fn take(&mut self) -> bool {
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> u32 {
        self.tokens
    }

    /// The configured per-turn refill.
    pub fn refill_rate(&self) -> u32 {
        self.refill
    }
}

/// Server configuration: queue bounds, per-class token budgets, deadlines,
/// and the degraded-mode state machine's hysteresis.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Hard capacity of the read queue; reads beyond it are shed.
    pub read_queue_cap: usize,
    /// Read-queue throttling threshold (admitted-but-`Throttled` above it).
    pub read_queue_hwm: usize,
    /// Read tokens added per turn (reads served per turn, steady state).
    pub read_tokens_per_turn: u32,
    /// Read token burst cap.
    pub read_burst: u32,
    /// Write tokens added per turn.
    pub write_tokens_per_turn: u32,
    /// Write token burst cap.
    pub write_burst: u32,
    /// Default read deadline, relative to submission (virtual µs).
    pub default_deadline_us: f64,
    /// In degraded mode the write refill is divided by this factor, so
    /// recovery work is not starved by update traffic. Must be at least 1.
    pub degraded_write_divisor: u32,
    /// Consecutive overloaded turns before entering degraded mode.
    pub overload_turns: usize,
    /// Consecutive clear turns before leaving degraded mode.
    pub recovery_turns: usize,
    /// RC steps attempted per turn while unconverged.
    pub steps_per_turn: usize,
    /// Ingest pipeline configuration (write queue bounds, drain policy).
    pub ingest: IngestConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_queue_cap: 1024,
            read_queue_hwm: 768,
            read_tokens_per_turn: 64,
            read_burst: 128,
            write_tokens_per_turn: 64,
            write_burst: 128,
            default_deadline_us: 5_000_000.0,
            degraded_write_divisor: 4,
            overload_turns: 3,
            recovery_turns: 3,
            steps_per_turn: 1,
            ingest: IngestConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Validates bounds and hysteresis parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.read_queue_cap == 0 {
            return Err("read queue capacity must be positive".to_string());
        }
        if self.read_queue_hwm > self.read_queue_cap {
            return Err(format!(
                "read high watermark {} exceeds queue capacity {}",
                self.read_queue_hwm, self.read_queue_cap
            ));
        }
        if self.degraded_write_divisor == 0 {
            return Err("degraded write divisor must be at least 1".to_string());
        }
        if self.steps_per_turn == 0 {
            return Err("steps per turn must be at least 1".to_string());
        }
        if self.overload_turns == 0 || self.recovery_turns == 0 {
            return Err("mode hysteresis needs at least one turn".to_string());
        }
        if self.default_deadline_us.is_nan() || self.default_deadline_us <= 0.0 {
            return Err("default deadline must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_refills_to_burst_and_drains_by_one() {
        let mut b = TokenBucket::new(2, 3);
        assert_eq!(b.available(), 3);
        assert!(b.take());
        assert!(b.take());
        assert!(b.take());
        assert!(!b.take());
        b.refill();
        assert_eq!(b.available(), 2);
        b.refill();
        b.refill();
        assert_eq!(b.available(), 3, "burst caps the refill");
    }

    #[test]
    fn config_validation_catches_bad_bounds() {
        let ok = ServeConfig::default();
        assert!(ok.validate().is_ok());
        assert!(ServeConfig {
            read_queue_cap: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            read_queue_hwm: 2048,
            read_queue_cap: 1024,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            degraded_write_divisor: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            default_deadline_us: 0.0,
            ..ok
        }
        .validate()
        .is_err());
    }
}
