#![forbid(unsafe_code)]
//! `aa-serve` — an overload-safe resident query/update server over the
//! anytime engine.
//!
//! The paper's *anytime* property promises centrality estimates with
//! bounded error at any point mid-computation; this crate is where that
//! promise meets concurrent load. A [`Server`] owns an
//! [`AnytimeEngine`](aa_core::AnytimeEngine) plus an
//! [`IngestPipeline`](aa_ingest::IngestPipeline) and advances in
//! deterministic turns, giving three guarantees:
//!
//! * **Snapshot isolation** — every read is answered from a published
//!   [`SnapshotFrame`](aa_core::SnapshotFrame): an `Arc`-shared, epoch-
//!   stamped snapshot rebuilt only when engine state changes (double-
//!   buffered publication, allocation-stable on reuse). A reader can never
//!   observe a torn mid-`rc_step` state or a frame claiming freshness
//!   while rows are in flight.
//! * **Admission control** — reads and writes share the aa-ingest
//!   `Accepted / Throttled{retry_after} / Shed` backpressure contract,
//!   with per-class token budgets, queue watermarks, and deadline-aware
//!   shedding. Every admitted request resolves at a turn boundary;
//!   nothing hangs.
//! * **Graceful degradation** — under overload or with ranks down the
//!   server enters an explicit degraded mode: reads keep being served
//!   from stale-but-bounded frames (finite max-overestimate bound, epoch
//!   consistency preserved), the write budget tightens, and recovery is
//!   visible to clients only as widened staleness bounds.
//!
//! [`LoadGen`] provides the deterministic mixed-workload generator used by
//! the `figures serve` bench and the `aa serve` CLI subcommand.

mod admission;
mod request;
mod server;
mod workload;

pub use admission::{ServeConfig, TokenBucket};
pub use request::{
    ClientOp, ReadKind, ReadOutcome, ReadTicket, ReadValue, ShedReason, WriteOutcome,
};
pub use server::{ServeMode, ServeStats, Server, TurnReport};
pub use workload::{LoadGen, WorkloadConfig};
