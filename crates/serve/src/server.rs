//! The resident server: one process owning the engine, serving reads from
//! published snapshot frames while the ingest pipeline folds writes in.
//!
//! # Turn loop
//!
//! The server advances in deterministic *turns* ([`Server::turn`]); a turn
//!
//! 1. refills the per-class token budgets (the write refill is divided by
//!    [`ServeConfig::degraded_write_divisor`] in degraded mode),
//! 2. lets the ingest pipeline drain if its policy is due,
//! 3. runs up to [`ServeConfig::steps_per_turn`] recombination steps while
//!    unconverged,
//! 4. updates the degraded-mode state machine,
//! 5. publishes a snapshot frame (allocation-stable when nothing changed)
//!    and folds it — together with the engine's drained bound-delta feed —
//!    into the resident [`TopKTracker`], keeping sound anytime top-k
//!    bounds current across supersteps,
//! 6. sheds queued reads whose deadline passed, then serves the front of
//!    the read queue from the published frame under the read token budget;
//!    [`ReadKind::TopK`] reads are answered by the tracker with an explicit
//!    exact/anytime confidence.
//!
//! Every admitted request resolves at a turn boundary — served or shed —
//! so nothing ever hangs, and every served response carries the frame's
//! [`SnapshotMeta`](aa_core::SnapshotMeta) stamp (epoch, freshness,
//! quiescent-row fraction, finite max-overestimate bound).
//!
//! # Degraded mode
//!
//! The server enters degraded mode immediately when a rank is down, or
//! after [`ServeConfig::overload_turns`] consecutive turns with the ingest
//! queue or read queue above its high watermark; it leaves after
//! [`ServeConfig::recovery_turns`] consecutive clear turns. Degraded mode
//! never stops serving: reads are answered from the latest published frame
//! (stale but epoch-consistent, with finite bounds) and the write budget is
//! tightened so recovery and refinement work is not starved.

//! # Durability
//!
//! With [`Server::attach_durability`] the server becomes crash-consistent:
//! `submit_write` records every enqueued op in a write-ahead log and
//! returns [`WriteOutcome::Logged`]; the turn loop group-commits the WAL
//! (one fsync per turn) **before** flushing the pipeline, so the set of
//! applied ops never runs ahead of the durable set. A failed commit aborts
//! the exact uncommitted ops ([`IngestPipeline::abort_pending`]) — possible
//! only because the durable turn barrier-flushes after every successful
//! commit, keeping the pipeline buffer equal to the uncommitted tail.
//! Checkpoints are taken every `checkpoint_every_turns` turns and on
//! [`Server::shutdown`].

use crate::admission::{ServeConfig, TokenBucket};
use crate::request::{ReadKind, ReadOutcome, ReadTicket, ReadValue, ShedReason, WriteOutcome};
use aa_core::{AnytimeEngine, SnapshotFrame};
use aa_durable::{DurableLog, Storage};
use aa_ingest::{Admission, FlushReport, IngestPipeline, IngestStats, UpdateOp};
use aa_obs::MetricsRegistry;
use aa_query::{Confidence, TopKAnswer, TopKConfig, TopKTracker};
use std::collections::VecDeque;
use std::sync::Arc;

/// Serving state: normal, or degraded (overloaded / ranks down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Full service.
    Normal,
    /// Stale-but-bounded service under overload or recovery.
    Degraded,
}

impl ServeMode {
    /// Metric/report label.
    pub fn label(&self) -> &'static str {
        match self {
            ServeMode::Normal => "normal",
            ServeMode::Degraded => "degraded",
        }
    }
}

/// Lifetime counters, one per admission/resolution outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Turns executed.
    pub turns: u64,
    /// Turns spent in degraded mode.
    pub degraded_turns: u64,
    /// Times the server entered degraded mode.
    pub degraded_entries: u64,
    /// Reads submitted.
    pub reads_submitted: u64,
    /// Reads served from a published frame.
    pub reads_served: u64,
    /// Reads admitted above the read-queue high watermark.
    pub reads_throttled: u64,
    /// Reads shed at read-queue hard capacity.
    pub reads_shed_capacity: u64,
    /// Reads shed because the deadline passed (or provably could not be
    /// met at admission).
    pub reads_shed_deadline: u64,
    /// Writes submitted.
    pub writes_submitted: u64,
    /// Writes accepted below the ingest high watermark.
    pub writes_accepted: u64,
    /// Writes admitted above the ingest high watermark.
    pub writes_throttled: u64,
    /// Writes shed at ingest hard capacity.
    pub writes_shed_queue: u64,
    /// Writes shed by the per-turn token budget.
    pub writes_shed_budget: u64,
    /// Writes rejected as invalid.
    pub writes_rejected: u64,
    /// Writes recorded in the WAL (durable server only).
    pub writes_logged: u64,
    /// Logged writes aborted by a failed WAL commit (never applied).
    pub writes_aborted: u64,
    /// WAL group commits that failed.
    pub wal_commit_errors: u64,
    /// Durable checkpoints taken by the turn loop or shutdown.
    pub checkpoints_taken: u64,
}

impl ServeStats {
    /// Reads resolved (served or shed after admission).
    pub fn reads_resolved(&self) -> u64 {
        self.reads_served + self.reads_shed_deadline + self.reads_shed_capacity
    }

    /// Fraction of submitted reads shed (any reason).
    pub fn read_shed_rate(&self) -> f64 {
        if self.reads_submitted == 0 {
            0.0
        } else {
            (self.reads_shed_capacity + self.reads_shed_deadline) as f64
                / self.reads_submitted as f64
        }
    }
}

/// What one turn did.
#[derive(Debug, Clone)]
pub struct TurnReport {
    /// Reads resolved this turn (served or deadline-shed), in order.
    pub served: Vec<ReadOutcome>,
    /// The ingest flush this turn performed, if its policy was due.
    pub flushed: Option<FlushReport>,
    /// Mode after the turn's state-machine update.
    pub mode: ServeMode,
    /// Recombination steps run this turn.
    pub rc_steps: usize,
    /// Highest WAL sequence made durable by this turn's group commit
    /// (durable server only). Every [`WriteOutcome::Logged`] op with
    /// `seq <= durable_seq` is now crash-safe.
    pub durable_seq: Option<u64>,
    /// Set when this turn's WAL commit failed: the uncommitted ops were
    /// aborted (never applied) and the writer rotated to a fresh segment.
    pub commit_error: Option<String>,
    /// Covered sequence of the checkpoint this turn took, if its cadence
    /// was due.
    pub checkpointed: Option<u64>,
}

/// Durable attachments: the storage root plus the WAL/checkpoint log.
struct Durability {
    storage: Box<dyn Storage>,
    log: DurableLog,
    turns_since_checkpoint: usize,
}

/// A queued (admitted, not yet resolved) read.
#[derive(Debug, Clone, Copy)]
struct QueuedRead {
    id: u64,
    kind: ReadKind,
    submitted_us: f64,
    deadline_us: f64,
}

/// The resident query/update server. See the module docs.
pub struct Server {
    engine: AnytimeEngine,
    pipeline: IngestPipeline,
    config: ServeConfig,
    read_q: VecDeque<QueuedRead>,
    read_tokens: TokenBucket,
    write_tokens: TokenBucket,
    mode: ServeMode,
    pressured_turns: usize,
    clear_turns: usize,
    next_id: u64,
    /// EWMA of per-turn virtual duration, for deadline feasibility
    /// estimates; zero until the first turn completes.
    ewma_turn_us: f64,
    latencies: Vec<f64>,
    stats: ServeStats,
    metrics: MetricsRegistry,
    durability: Option<Durability>,
    topk: TopKTracker,
}

impl Server {
    /// Builds a server around an engine, initializing it if the caller has
    /// not. Validates the configuration.
    pub fn new(mut engine: AnytimeEngine, config: ServeConfig) -> Result<Self, String> {
        config.validate()?;
        let pipeline = IngestPipeline::new(config.ingest)?;
        if !engine.is_initialized() {
            engine.initialize();
        }
        // Seed the top-k tracker from the initial frame so every TopK read
        // — even one served before the first turn's observation — has sound
        // bounds behind it. The feed stays enabled for the server's life.
        engine.enable_bound_feed();
        let mut topk = TopKTracker::new(TopKConfig::default());
        let frame = engine.publish_snapshot();
        let deltas = engine.drain_bound_deltas();
        topk.observe(&frame, engine.graph(), &deltas);
        drop(frame);
        let mut metrics = MetricsRegistry::new();
        metrics.set_help(
            "aa_serve_requests_total",
            "Requests by class and admission/resolution outcome",
        );
        metrics.set_help(
            "aa_serve_read_latency_us",
            "Submit-to-serve read latency in LogP virtual microseconds",
        );
        metrics.declare_histogram(
            "aa_serve_read_latency_us",
            &[10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8],
        );
        metrics.set_help(
            "aa_serve_read_queue_depth",
            "Admitted reads awaiting service",
        );
        metrics.set_help("aa_serve_mode", "Serving mode (0 = normal, 1 = degraded)");
        metrics.set_help(
            "aa_serve_degraded_turns_total",
            "Turns spent in degraded mode",
        );
        metrics.set_help(
            "aa_serve_degraded_entries_total",
            "Transitions into degraded mode",
        );
        metrics.set_help(
            "aa_serve_read_latency_p50_us",
            "Median served read latency (virtual µs)",
        );
        metrics.set_help(
            "aa_serve_read_latency_p99_us",
            "99th-percentile served read latency (virtual µs)",
        );
        Ok(Server {
            read_tokens: TokenBucket::new(config.read_tokens_per_turn, config.read_burst),
            write_tokens: TokenBucket::new(config.write_tokens_per_turn, config.write_burst),
            engine,
            pipeline,
            config,
            read_q: VecDeque::new(),
            mode: ServeMode::Normal,
            pressured_turns: 0,
            clear_turns: 0,
            next_id: 0,
            ewma_turn_us: 0.0,
            latencies: Vec::new(),
            stats: ServeStats::default(),
            metrics,
            durability: None,
            topk,
        })
    }

    /// Attaches a write-ahead log and its storage, making the server
    /// crash-consistent from this point on: enqueued writes resolve to
    /// [`WriteOutcome::Logged`] and become durable at the next turn's group
    /// commit. The caller runs recovery first and opens the log at the
    /// recovered sequence (see `aa_durable::recover`).
    pub fn attach_durability(&mut self, storage: Box<dyn Storage>, log: DurableLog) {
        self.durability = Some(Durability {
            storage,
            log,
            turns_since_checkpoint: 0,
        });
    }

    /// True when a WAL is attached.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Highest WAL sequence known durable (`None` without a WAL).
    pub fn durable_committed_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.log.committed_seq())
    }

    /// Submits a read with the default deadline.
    pub fn submit_read(&mut self, kind: ReadKind) -> ReadTicket {
        self.submit_read_with_deadline(kind, self.config.default_deadline_us)
    }

    /// Submits a read that must be served within `deadline_us` virtual µs
    /// of now. Admission control may shed it immediately (queue at hard
    /// capacity, or the deadline is provably unmeetable given the queue
    /// depth and the measured turn duration); a shed read is never queued.
    pub fn submit_read_with_deadline(&mut self, kind: ReadKind, deadline_us: f64) -> ReadTicket {
        let now = self.engine.makespan_us();
        let id = self.next_id;
        self.next_id += 1;
        self.stats.reads_submitted += 1;
        if self.read_q.len() >= self.config.read_queue_cap {
            self.stats.reads_shed_capacity += 1;
            self.count_read("shed-capacity");
            return ReadTicket {
                id,
                admission: Admission::Shed,
            };
        }
        let deadline = now + deadline_us.max(0.0);
        if let Some(est) = self.estimated_service_us(now) {
            if est > deadline {
                self.stats.reads_shed_deadline += 1;
                self.count_read("shed-deadline");
                return ReadTicket {
                    id,
                    admission: Admission::Shed,
                };
            }
        }
        self.read_q.push_back(QueuedRead {
            id,
            kind,
            submitted_us: now,
            deadline_us: deadline,
        });
        let depth = self.read_q.len();
        self.metrics
            .set_gauge("aa_serve_read_queue_depth", &[], depth as f64);
        if depth > self.config.read_queue_hwm {
            self.stats.reads_throttled += 1;
            self.count_read("throttled");
            ReadTicket {
                id,
                admission: Admission::Throttled {
                    retry_after: (depth - self.config.read_queue_hwm) as u64,
                },
            }
        } else {
            self.count_read("accepted");
            ReadTicket {
                id,
                admission: Admission::Accepted,
            }
        }
    }

    /// Submits a write. The op first passes the per-turn write token budget
    /// (shed on exhaustion — tightened in degraded mode), then the ingest
    /// pipeline's own admission queue. On a durable server every enqueued
    /// op is also recorded in the WAL and resolves to
    /// [`WriteOutcome::Logged`]; it is crash-safe once a later turn reports
    /// `durable_seq >= seq`.
    pub fn submit_write(&mut self, op: UpdateOp) -> WriteOutcome {
        self.stats.writes_submitted += 1;
        if !self.write_tokens.take() {
            self.stats.writes_shed_budget += 1;
            self.count_write("shed-budget");
            return WriteOutcome::Shed(ShedReason::WriteBudget);
        }
        let to_log = self.durability.is_some().then(|| op.clone());
        match self.pipeline.push(&self.engine, op) {
            Ok(outcome) => {
                match outcome.admission {
                    Admission::Accepted => {
                        self.stats.writes_accepted += 1;
                        self.count_write("accepted");
                    }
                    Admission::Throttled { .. } => {
                        self.stats.writes_throttled += 1;
                        self.count_write("throttled");
                    }
                    Admission::Shed => {
                        self.stats.writes_shed_queue += 1;
                        self.count_write("shed-queue");
                    }
                }
                if outcome.enqueued {
                    if let (Some(d), Some(op)) = (&mut self.durability, to_log) {
                        let seq = d.log.append(&op);
                        self.stats.writes_logged += 1;
                        self.count_write("logged");
                        return WriteOutcome::Logged {
                            seq,
                            admission: outcome.admission,
                        };
                    }
                }
                WriteOutcome::Ingest(outcome.admission)
            }
            Err(e) => {
                self.stats.writes_rejected += 1;
                self.count_write("rejected");
                WriteOutcome::Rejected(e)
            }
        }
    }

    /// Runs one turn; see the module docs for the sequence.
    pub fn turn(&mut self) -> Result<TurnReport, String> {
        let t0 = self.engine.makespan_us();
        self.stats.turns += 1;
        self.read_tokens.refill();
        let write_refill = match self.mode {
            ServeMode::Normal => self.config.write_tokens_per_turn,
            ServeMode::Degraded => {
                self.config.write_tokens_per_turn / self.config.degraded_write_divisor
            }
        };
        self.write_tokens.refill_by(write_refill);

        // Durable: group-commit the WAL before anything is applied, so the
        // applied set never runs ahead of the durable set. On commit failure
        // the pipeline buffer is exactly the uncommitted ops (each prior
        // successful commit was followed by a barrier flush), so aborting it
        // drops precisely the un-acked work.
        let mut durable_seq = None;
        let mut commit_error = None;
        if let Some(d) = &mut self.durability {
            match d.log.commit(d.storage.as_mut()) {
                Ok(seq) => durable_seq = Some(seq),
                Err(e) => {
                    let dropped = self.pipeline.abort_pending();
                    self.stats.writes_aborted += dropped as u64;
                    self.stats.wal_commit_errors += 1;
                    commit_error =
                        Some(format!("wal commit failed ({dropped} op(s) aborted): {e}"));
                }
            }
        }
        let flushed = if self.durability.is_some() {
            // Barrier flush: apply every committed op this turn, keeping the
            // buffer/WAL-pending correspondence exact.
            self.pipeline.flush(&mut self.engine)?
        } else {
            self.pipeline.maybe_flush(&mut self.engine)?
        };

        let mut rc_steps = 0usize;
        if !self.engine.is_converged() {
            for _ in 0..self.config.steps_per_turn {
                rc_steps += 1;
                if self.engine.rc_step() {
                    break;
                }
            }
        }

        self.update_mode();
        if self.mode == ServeMode::Degraded {
            self.stats.degraded_turns += 1;
            self.metrics
                .inc_counter("aa_serve_degraded_turns_total", &[], 1);
        }

        let frame = self.engine.publish_snapshot();
        let deltas = self.engine.drain_bound_deltas();
        self.topk.observe(&frame, self.engine.graph(), &deltas);
        let served = self.serve_reads(&frame);

        // Checkpoint cadence: the engine now holds exactly the committed
        // prefix (commit → barrier flush above), so the image is coverable
        // by `committed_seq` even when this turn's commit failed.
        let mut checkpointed = None;
        if let Some(d) = &mut self.durability {
            d.turns_since_checkpoint += 1;
            let every = d.log.config().checkpoint_every_turns;
            if every > 0 && d.turns_since_checkpoint >= every {
                // Reset either way: a failed write is already counted in the
                // log's metrics, and backing off to the next full cadence
                // beats hammering a sick disk every turn.
                d.turns_since_checkpoint = 0;
                if let Ok(seq) = d.log.checkpoint(d.storage.as_mut(), &self.engine) {
                    self.stats.checkpoints_taken += 1;
                    checkpointed = Some(seq);
                }
            }
        }

        let dt = (self.engine.makespan_us() - t0).max(0.0);
        self.ewma_turn_us = if self.ewma_turn_us > 0.0 {
            0.75 * self.ewma_turn_us + 0.25 * dt
        } else {
            dt
        };
        self.metrics
            .set_gauge("aa_serve_read_queue_depth", &[], self.read_q.len() as f64);
        self.metrics.set_gauge(
            "aa_serve_mode",
            &[],
            match self.mode {
                ServeMode::Normal => 0.0,
                ServeMode::Degraded => 1.0,
            },
        );
        Ok(TurnReport {
            served,
            flushed,
            mode: self.mode,
            rc_steps,
            durable_seq,
            commit_error,
            checkpointed,
        })
    }

    /// Runs turns until the read queue and ingest buffer are empty and the
    /// engine has converged, or `max_turns` is hit. Pending writes are
    /// barrier-flushed so they cannot stall behind an un-triggered drain
    /// policy. Returns every read outcome resolved along the way.
    pub fn drain(&mut self, max_turns: usize) -> Result<Vec<ReadOutcome>, String> {
        let mut out = Vec::new();
        for _ in 0..max_turns {
            if self.read_q.is_empty()
                && self.pipeline.pending_ops() == 0
                && self.engine.is_converged()
            {
                break;
            }
            // Durable: never flush ahead of the WAL commit — the turn
            // itself commits then barrier-flushes.
            if self.durability.is_none() && self.pipeline.pending_ops() > 0 {
                self.pipeline.flush(&mut self.engine)?;
            }
            out.extend(self.turn()?.served);
        }
        Ok(out)
    }

    /// Graceful shutdown: drains reads and pending writes (committing and
    /// applying them turn by turn), then takes a final checkpoint so restart
    /// needs no WAL replay. Returns the drained read outcomes and the final
    /// checkpoint's covered sequence (`None` without a WAL). A failed final
    /// checkpoint is an error — the WAL still holds everything, so nothing
    /// acknowledged is lost, but the caller should surface it.
    pub fn shutdown(
        &mut self,
        max_turns: usize,
    ) -> Result<(Vec<ReadOutcome>, Option<u64>), String> {
        let served = self.drain(max_turns)?;
        let Some(d) = &mut self.durability else {
            return Ok((served, None));
        };
        // Stragglers logged after the last drain turn: commit, then apply.
        if d.log.pending_records() > 0 {
            match d.log.commit(d.storage.as_mut()) {
                Ok(_) => {
                    self.pipeline.flush(&mut self.engine)?;
                }
                Err(e) => {
                    let dropped = self.pipeline.abort_pending();
                    self.stats.writes_aborted += dropped as u64;
                    self.stats.wal_commit_errors += 1;
                    return Err(format!(
                        "shutdown commit failed ({dropped} op(s) aborted): {e}"
                    ));
                }
            }
        }
        let seq = d
            .log
            .checkpoint(d.storage.as_mut(), &self.engine)
            .map_err(|e| format!("final checkpoint failed (WAL remains authoritative): {e}"))?;
        self.stats.checkpoints_taken += 1;
        Ok((served, Some(seq)))
    }

    /// Publishes (or reuses) the current snapshot frame.
    pub fn frame(&mut self) -> Arc<SnapshotFrame> {
        self.engine.publish_snapshot()
    }

    /// Current serving mode.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// Lifetime serve counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Lifetime ingest counters.
    pub fn ingest_stats(&self) -> IngestStats {
        self.pipeline.stats()
    }

    /// Admitted reads awaiting service.
    pub fn read_queue_depth(&self) -> usize {
        self.read_q.len()
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The owned engine.
    pub fn engine(&self) -> &AnytimeEngine {
        &self.engine
    }

    /// The resident top-k tracker (read-only; the turn loop keeps it
    /// observed).
    pub fn topk_tracker(&self) -> &TopKTracker {
        &self.topk
    }

    /// Mutable engine access (chaos injection in tests and the CLI; the
    /// server re-observes engine state at the next turn boundary).
    pub fn engine_mut(&mut self) -> &mut AnytimeEngine {
        &mut self.engine
    }

    /// Served-read latency quantiles `(p50, p99)` in virtual µs, when at
    /// least one read has been served.
    pub fn latency_quantiles(&self) -> Option<(f64, f64)> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some((quantile(&sorted, 0.50), quantile(&sorted, 0.99)))
    }

    /// Merged metrics: engine + ingest + durability + serve registries,
    /// with the read latency quantile gauges computed from every served
    /// read so far.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut r = self.engine.metrics_registry();
        r.merge(&self.pipeline.metrics_registry());
        r.merge(&self.topk.metrics_registry());
        if let Some(d) = &self.durability {
            r.merge(d.log.metrics_registry());
        }
        let mut s = self.metrics.clone();
        if let Some((p50, p99)) = self.latency_quantiles() {
            s.set_gauge("aa_serve_read_latency_p50_us", &[], p50);
            s.set_gauge("aa_serve_read_latency_p99_us", &[], p99);
        }
        r.merge(&s);
        r
    }

    /// Estimated virtual time at which a read submitted now would be
    /// served, given the queue ahead of it and the measured turn duration.
    /// `None` until a turn has run (no duration measurement yet).
    fn estimated_service_us(&self, now: f64) -> Option<f64> {
        if self.ewma_turn_us > 0.0 {
            let per_turn = self.config.read_tokens_per_turn.max(1) as usize;
            let turns_ahead = self.read_q.len() / per_turn + 1;
            Some(now + turns_ahead as f64 * self.ewma_turn_us)
        } else {
            None
        }
    }

    fn update_mode(&mut self) {
        let down = !self.engine.cluster().down_ranks().is_empty();
        let ingest_over = self.pipeline.pending_ops() > self.pipeline.config().high_watermark;
        let read_over = self.read_q.len() > self.config.read_queue_hwm;
        let pressured = down || ingest_over || read_over;
        match self.mode {
            ServeMode::Normal => {
                if pressured {
                    self.pressured_turns += 1;
                }
                if down || self.pressured_turns >= self.config.overload_turns {
                    self.mode = ServeMode::Degraded;
                    self.clear_turns = 0;
                    self.stats.degraded_entries += 1;
                    self.metrics
                        .inc_counter("aa_serve_degraded_entries_total", &[], 1);
                }
                if !pressured {
                    self.pressured_turns = 0;
                }
            }
            ServeMode::Degraded => {
                if pressured {
                    self.clear_turns = 0;
                } else {
                    self.clear_turns += 1;
                    if self.clear_turns >= self.config.recovery_turns {
                        self.mode = ServeMode::Normal;
                        self.pressured_turns = 0;
                    }
                }
            }
        }
    }

    /// Sheds expired reads, then serves the queue front under the token
    /// budget, all from the one published frame.
    fn serve_reads(&mut self, frame: &SnapshotFrame) -> Vec<ReadOutcome> {
        let now = self.engine.makespan_us();
        let mut out = Vec::new();
        let mut still_queued = VecDeque::with_capacity(self.read_q.len());
        while let Some(req) = self.read_q.pop_front() {
            if req.deadline_us < now {
                self.stats.reads_shed_deadline += 1;
                self.count_read("shed-deadline");
                out.push(ReadOutcome::Shed {
                    id: req.id,
                    reason: ShedReason::Deadline,
                });
            } else {
                still_queued.push_back(req);
            }
        }
        self.read_q = still_queued;
        let degraded = self.mode == ServeMode::Degraded;
        while !self.read_q.is_empty() && self.read_tokens.take() {
            if let Some(req) = self.read_q.pop_front() {
                let latency_us = (now - req.submitted_us).max(0.0);
                self.stats.reads_served += 1;
                self.count_read("served");
                self.metrics
                    .observe("aa_serve_read_latency_us", &[], latency_us);
                self.latencies.push(latency_us);
                out.push(ReadOutcome::Served {
                    id: req.id,
                    latency_us,
                    degraded,
                    meta: frame.meta,
                    value: answer(frame, &self.topk, req.kind),
                });
            }
        }
        out
    }

    fn count_read(&mut self, outcome: &str) {
        self.metrics.inc_counter(
            "aa_serve_requests_total",
            &[("class", "read"), ("outcome", outcome)],
            1,
        );
    }

    fn count_write(&mut self, outcome: &str) {
        self.metrics.inc_counter(
            "aa_serve_requests_total",
            &[("class", "write"), ("outcome", outcome)],
            1,
        );
    }
}

/// Computes a read's value from a published frame. Top-k reads go through
/// the tracker's bound state; the snapshot fallback only fires if the
/// tracker has never observed a frame (it is seeded at construction, so in
/// practice every answer carries real bounds).
fn answer(frame: &SnapshotFrame, topk: &TopKTracker, kind: ReadKind) -> ReadValue {
    let snap = &frame.snapshot;
    match kind {
        ReadKind::TopK(k) => ReadValue::TopK(Box::new(topk.answer(k).unwrap_or_else(|| {
            let members = snap.top_k(k);
            let unresolved = snap
                .closeness
                .iter()
                .filter(|&&c| c > 0.0)
                .count()
                .saturating_sub(members.len());
            let confidence = if frame.meta.fresh {
                Confidence::Exact
            } else {
                // Claim nothing: every other candidate is unresolved and
                // the gap is the widest possible closeness.
                Confidence::Anytime {
                    kth_bound_gap: 1.0,
                    unresolved_candidates: unresolved,
                }
            };
            TopKAnswer {
                k,
                members,
                confidence,
                meta: frame.meta,
            }
        }))),
        ReadKind::Vertex(v) => {
            let slot = v as usize;
            ReadValue::Vertex {
                closeness: snap.closeness.get(slot).copied().unwrap_or(0.0),
                harmonic: snap.harmonic.get(slot).copied().unwrap_or(0.0),
                stale: snap.stale.get(slot).copied().unwrap_or(false),
            }
        }
    }
}

/// Nearest-rank quantile over an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_core::EngineConfig;
    use aa_durable::{recover, DurabilityConfig, SimStorage, StorageFaultPlan, StorageFaults};
    use aa_graph::generators;

    fn sim_engine(n: usize, procs: usize) -> AnytimeEngine {
        let g = generators::barabasi_albert(n, 2, 1, 7);
        AnytimeEngine::new(
            g,
            EngineConfig {
                num_procs: procs,
                ..Default::default()
            },
        )
    }

    fn server(n: usize, procs: usize, config: ServeConfig) -> Server {
        Server::new(sim_engine(n, procs), config).unwrap()
    }

    /// A server with a WAL over `sim`, checkpointing every 4 turns.
    fn durable_server(n: usize, procs: usize, config: ServeConfig, sim: &SimStorage) -> Server {
        let mut s = Server::new(sim_engine(n, procs), config).unwrap();
        let mut storage: Box<dyn Storage> = Box::new(sim.clone());
        let log = DurableLog::open(
            storage.as_mut(),
            1,
            DurabilityConfig {
                checkpoint_every_turns: 4,
                ..Default::default()
            },
        )
        .unwrap();
        s.attach_durability(storage, log);
        s
    }

    #[test]
    fn reads_resolve_within_a_drain_and_match_engine_state() {
        let mut s = server(60, 3, ServeConfig::default());
        s.drain(64).unwrap(); // converge first so the frame is fresh
        let t = s.submit_read(ReadKind::TopK(5));
        assert_eq!(t.admission, Admission::Accepted);
        let out = s.drain(64).unwrap();
        assert_eq!(out.len(), 1);
        match &out[0] {
            ReadOutcome::Served { meta, value, .. } => {
                assert!(meta.fresh);
                assert_eq!(meta.outstanding_rows, 0);
                match value {
                    ReadValue::TopK(ans) => {
                        assert!(ans.is_exact(), "fresh frame must yield an exact answer");
                        assert_eq!(ans.members.len(), 5);
                        assert_eq!(ans.members, s.frame().snapshot.top_k(5));
                    }
                    other => panic!("wrong value: {other:?}"),
                }
            }
            other => panic!("read was not served: {other:?}"),
        }
        assert_eq!(s.stats().reads_served, 1);
    }

    #[test]
    fn topk_reads_carry_anytime_confidence_under_churn_and_settle_exact() {
        let cfg = ServeConfig {
            steps_per_turn: 1,
            ..Default::default()
        };
        let mut s = server(120, 4, cfg);
        s.drain(400).unwrap();
        // A deletion voids the converged state: the next frame is stale
        // (one rc_step cannot re-converge the reseeded rows), and the
        // tracker must answer with an honest anytime confidence. k is
        // chosen above the tracker's pivot budget so the member scores
        // cannot all be structurally exact — exactness can then only come
        // from a fresh frame or fully reconverged rows.
        let k = s.topk_tracker().config().max_pivots + 4;
        let (u, v, _) = s.engine().graph().edges().next().unwrap();
        assert!(s.engine_mut().delete_edge(u, v));
        s.submit_read(ReadKind::TopK(k));
        let rep = s.turn().unwrap();
        let served: Vec<_> = rep
            .served
            .iter()
            .filter_map(|o| match o {
                ReadOutcome::Served { meta, value, .. } => Some((meta, value)),
                _ => None,
            })
            .collect();
        assert_eq!(served.len(), 1);
        let (meta, value) = &served[0];
        assert!(!meta.fresh, "frame right after a deletion cannot be fresh");
        match value {
            ReadValue::TopK(ans) => {
                assert_eq!(ans.k, k);
                assert!(
                    !ans.is_exact(),
                    "stale frame with k beyond the pivot budget must not \
                     claim an exact ranking"
                );
                assert_eq!(ans.meta.epoch, meta.epoch);
            }
            other => panic!("wrong value: {other:?}"),
        }
        // Once the server re-converges the same read settles to exact.
        s.drain(200).unwrap();
        s.submit_read(ReadKind::TopK(k));
        let out = s.drain(64).unwrap();
        match &out[0] {
            ReadOutcome::Served { value, meta, .. } => {
                assert!(meta.fresh);
                match value {
                    ReadValue::TopK(ans) => assert!(ans.is_exact()),
                    other => panic!("wrong value: {other:?}"),
                }
            }
            other => panic!("read was not served: {other:?}"),
        }
        let r = s.metrics_registry();
        assert!(r.counter_value("aa_topk_observes_total", &[]) > 0);
        assert!(r.counter_value("aa_topk_rebuilds_total", &[]) >= 2);
    }

    #[test]
    fn read_queue_capacity_sheds_and_hwm_throttles() {
        let cfg = ServeConfig {
            read_queue_cap: 4,
            read_queue_hwm: 2,
            ..Default::default()
        };
        let mut s = server(60, 3, cfg);
        let mut admissions = Vec::new();
        for _ in 0..6 {
            admissions.push(s.submit_read(ReadKind::TopK(1)).admission);
        }
        assert_eq!(admissions[0], Admission::Accepted);
        assert_eq!(admissions[1], Admission::Accepted);
        assert!(matches!(admissions[2], Admission::Throttled { .. }));
        assert!(matches!(admissions[3], Admission::Throttled { .. }));
        assert_eq!(admissions[4], Admission::Shed);
        assert_eq!(admissions[5], Admission::Shed);
        assert_eq!(s.stats().reads_shed_capacity, 2);
        // The four queued reads all resolve.
        let out = s.drain(64).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn write_budget_sheds_when_exhausted() {
        let cfg = ServeConfig {
            write_tokens_per_turn: 2,
            write_burst: 2,
            ..Default::default()
        };
        let mut s = server(60, 3, cfg);
        let ids: Vec<u32> = s.engine().graph().vertices().collect();
        let mut shed = 0;
        for i in 0..4u32 {
            let op = UpdateOp::AddEdge(ids[i as usize], ids[(i + 20) as usize], 1);
            if matches!(
                s.submit_write(op),
                WriteOutcome::Shed(ShedReason::WriteBudget)
            ) {
                shed += 1;
            }
        }
        assert_eq!(shed, 2, "two tokens, four writes");
        s.turn().unwrap();
        // Refill makes room again.
        let op = UpdateOp::AddEdge(ids[40], ids[41], 1);
        assert!(s.submit_write(op).is_admitted());
    }

    #[test]
    fn degraded_mode_enters_on_down_rank_and_recovers_with_hysteresis() {
        let mut s = server(80, 4, ServeConfig::default());
        assert_eq!(s.mode(), ServeMode::Normal);
        // Crash fires inside an upcoming rc_step (while unconverged);
        // detection + recovery happen via the supervisor.
        s.engine_mut().schedule_crash(1, 1);
        let mut saw_degraded = false;
        for _ in 0..40 {
            s.submit_read(ReadKind::TopK(3));
            let rep = s.turn().unwrap();
            if rep.mode == ServeMode::Degraded {
                saw_degraded = true;
            }
            if saw_degraded && rep.mode == ServeMode::Normal {
                break;
            }
        }
        assert!(
            saw_degraded,
            "crash must push the server into degraded mode"
        );
        assert_eq!(
            s.mode(),
            ServeMode::Normal,
            "recovery must bring the server back to normal"
        );
        assert!(s.stats().degraded_entries >= 1);
        assert!(s.stats().degraded_turns >= 1);
    }

    #[test]
    fn unmeetable_deadline_is_shed_at_admission() {
        let mut s = server(60, 3, ServeConfig::default());
        s.submit_read(ReadKind::TopK(1));
        s.turn().unwrap(); // measure a turn duration
        let t = s.submit_read_with_deadline(ReadKind::TopK(1), 0.001);
        assert_eq!(t.admission, Admission::Shed);
        assert!(s.stats().reads_shed_deadline >= 1);
    }

    #[test]
    fn metrics_merge_engine_ingest_and_serve_families() {
        let mut s = server(60, 3, ServeConfig::default());
        s.submit_read(ReadKind::TopK(3));
        let ids: Vec<u32> = s.engine().graph().vertices().collect();
        s.submit_write(UpdateOp::AddEdge(ids[0], ids[30], 2));
        s.drain(64).unwrap();
        let r = s.metrics_registry();
        assert!(r.counter_value("aa_rc_steps_total", &[]) > 0);
        assert!(
            r.counter_value(
                "aa_serve_requests_total",
                &[("class", "read"), ("outcome", "served")]
            ) >= 1
        );
        assert!(r.counter_value("aa_snapshot_publications_total", &[("kind", "fresh")]) >= 1);
        assert!(r.gauge_value("aa_serve_read_latency_p50_us", &[]).is_some());
        assert_eq!(r.gauge_value("aa_serve_mode", &[]), Some(0.0));
    }

    #[test]
    fn durable_writes_ack_at_commit_and_survive_kill() {
        let sim = SimStorage::new();
        let mut s = durable_server(60, 3, ServeConfig::default(), &sim);
        let ids: Vec<u32> = s.engine().graph().vertices().collect();
        let mut seqs = Vec::new();
        for i in 0..3usize {
            match s.submit_write(UpdateOp::AddEdge(ids[i], ids[i + 25], 1)) {
                WriteOutcome::Logged { seq, admission } => {
                    assert!(admission.is_admitted());
                    seqs.push(seq);
                }
                other => panic!("expected Logged, got {other:?}"),
            }
        }
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(
            s.durable_committed_seq(),
            Some(0),
            "nothing durable before the turn's group commit"
        );
        let rep = s.turn().unwrap();
        assert_eq!(rep.durable_seq, Some(3));
        assert!(rep.commit_error.is_none());
        assert_eq!(s.stats().writes_logged, 3);

        // Converge, kill -9, recover into a fresh engine: every acked op
        // survives and the recovered ranking matches exactly.
        s.drain(200).unwrap();
        sim.kill();
        let mut st = sim.clone();
        let rec = recover(&mut st, sim_engine(60, 3), s.config().ingest).unwrap();
        assert_eq!(rec.next_seq, 4);
        let mut recovered = rec.engine;
        recovered.run_to_convergence(100_000);
        let want = s.engine_mut().snapshot().closeness.clone();
        let got = recovered.snapshot().closeness.clone();
        assert_eq!(want.len(), got.len());
        for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
            assert!((a - b).abs() < 1e-12, "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn durable_commit_failure_aborts_unacked_ops_and_service_continues() {
        let plan = StorageFaultPlan::new(
            5,
            StorageFaults {
                p_fail_fsync: 1.0,
                ..StorageFaults::none()
            },
        );
        let sim = SimStorage::with_faults(plan);
        let cfg = ServeConfig {
            write_tokens_per_turn: 64,
            write_burst: 64,
            ..Default::default()
        };
        let mut s = durable_server(60, 3, cfg, &sim);
        let ids: Vec<u32> = s.engine().graph().vertices().collect();
        // Existing edges resolve as never-enqueued noops; keep going until
        // two ops are actually logged.
        let mut i = 0;
        let mut logged = 0;
        while logged < 2 {
            let op = UpdateOp::AddEdge(ids[i], ids[i + 29], 1);
            if matches!(s.submit_write(op), WriteOutcome::Logged { .. }) {
                logged += 1;
            }
            i += 1;
        }
        let rep = s.turn().unwrap();
        assert!(rep.commit_error.is_some(), "fsync always fails");
        assert_eq!(rep.durable_seq, None);
        assert_eq!(s.stats().writes_aborted, 2);
        assert_eq!(s.stats().wal_commit_errors, 1);
        assert_eq!(s.durable_committed_seq(), Some(0));
        assert_eq!(s.ingest_stats().aborted, 2);
        assert_eq!(
            s.ingest_stats().raw_in,
            0,
            "aborted ops must never reach the engine"
        );
        // Burned sequence numbers; reads still serve.
        loop {
            let op = UpdateOp::AddEdge(ids[i], ids[i + 29], 1);
            i += 1;
            match s.submit_write(op) {
                WriteOutcome::Logged { seq, .. } => {
                    assert_eq!(seq, 3, "failed commit burns its sequence numbers");
                    break;
                }
                WriteOutcome::Ingest(_) => continue, // noop, try the next pair
                other => panic!("expected Logged, got {other:?}"),
            }
        }
        let t = s.submit_read(ReadKind::TopK(3));
        assert!(t.admission.is_admitted());
        let out = s.turn().unwrap();
        assert!(out
            .served
            .iter()
            .any(|o| matches!(o, ReadOutcome::Served { .. })));
    }

    #[test]
    fn shutdown_takes_final_checkpoint_so_recovery_skips_replay() {
        let sim = SimStorage::new();
        let cfg = ServeConfig {
            write_tokens_per_turn: 64,
            write_burst: 64,
            ..Default::default()
        };
        let mut s = durable_server(60, 3, cfg, &sim);
        let ids: Vec<u32> = s.engine().graph().vertices().collect();
        let mut i = 0;
        let mut logged = 0;
        while logged < 5 {
            let op = UpdateOp::AddEdge(ids[i], ids[i + 20], 1);
            if matches!(s.submit_write(op), WriteOutcome::Logged { .. }) {
                logged += 1;
            }
            i += 1;
        }
        let (_, ckpt) = s.shutdown(200).unwrap();
        assert_eq!(ckpt, Some(5), "final checkpoint covers every acked op");
        assert!(s.stats().checkpoints_taken >= 1);
        sim.kill();
        let mut st = sim.clone();
        let rec = recover(&mut st, sim_engine(60, 3), s.config().ingest).unwrap();
        assert_eq!(rec.report.checkpoint_seq, 5);
        assert_eq!(rec.report.records_replayed, 0, "checkpoint covers the WAL");
        assert_eq!(rec.next_seq, 6);
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 0.99), 4.0);
        assert_eq!(quantile(&v, 0.25), 1.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
